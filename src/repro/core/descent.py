"""Descent strategies for the anytime refinement of a Bayes tree frontier.

Paper §2.2: "For tree traversal we evaluated three basic descent strategies:
breadth first (bft), depth first (dft) and global best descent (glo), which
orders nodes globally with respect to a priority measure ... For the priority
measure we tested a geometric measure, i.e. the distance from the query object
to the MBR, and a probabilistic measure, i.e. the weighted probability density
for the query object w.r.t. the Gaussian component of each entry."

A strategy looks at the *refinable* frontier items (those whose entry is a
directory entry, i.e. has a child node that could be read next) and picks the
one to expand in the next time step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, TYPE_CHECKING

import numpy as np

__all__ = [
    "DescentStrategy",
    "BreadthFirstDescent",
    "DepthFirstDescent",
    "GlobalBestDescent",
    "make_descent_strategy",
    "DESCENT_STRATEGIES",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .frontier import FrontierItem


class DescentStrategy(ABC):
    """Picks which frontier entry to refine next for a given query."""

    name: str = "abstract"

    @abstractmethod
    def choose(self, candidates: Sequence["FrontierItem"], query: np.ndarray) -> "FrontierItem":
        """Return the frontier item to refine next.

        ``candidates`` is never empty and contains only refinable items.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class BreadthFirstDescent(DescentStrategy):
    """Refine the tree level by level (bft in the paper).

    Among the refinable frontier entries the one closest to the root is
    expanded first; ties are broken by insertion order, which makes the
    traversal exactly breadth first.
    """

    name = "bft"

    def choose(self, candidates: Sequence["FrontierItem"], query: np.ndarray) -> "FrontierItem":
        return min(candidates, key=lambda item: (-item.level, item.order))


class DepthFirstDescent(DescentStrategy):
    """Refine the most recently produced entry first (dft in the paper).

    This follows a single path towards the leaves before backtracking, i.e. a
    classic depth-first traversal driven by the frontier.
    """

    name = "dft"

    def choose(self, candidates: Sequence["FrontierItem"], query: np.ndarray) -> "FrontierItem":
        return max(candidates, key=lambda item: item.order)


class GlobalBestDescent(DescentStrategy):
    """Order refinable entries globally by a priority measure (glo in the paper).

    ``measure="probabilistic"`` expands the entry with the largest *weighted
    probability density* for the query (the paper's best-performing measure);
    ``measure="geometric"`` expands the entry whose MBR is closest to the
    query object.
    """

    def __init__(self, measure: str = "probabilistic") -> None:
        if measure not in ("probabilistic", "geometric"):
            raise ValueError("measure must be 'probabilistic' or 'geometric'")
        self.measure = measure
        self.name = "glo" if measure == "probabilistic" else "glo-geometric"

    def choose(self, candidates: Sequence["FrontierItem"], query: np.ndarray) -> "FrontierItem":
        if self.measure == "probabilistic":
            # Highest weighted density first: the entry currently contributing
            # the most to the query's density is the most promising to refine.
            # Ranking happens on the log contributions — linear-space densities
            # all underflow to 0.0 in high dimensions, which used to collapse
            # this choice into an arbitrary first-candidate pick.
            scores = np.fromiter(
                (item.log_contribution for item in candidates),
                dtype=float,
                count=len(candidates),
            )
            return candidates[int(np.argmax(scores))]
        distances = np.fromiter(
            (item.entry.mbr.min_distance(query) for item in candidates),
            dtype=float,
            count=len(candidates),
        )
        return candidates[int(np.argmin(distances))]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlobalBestDescent(measure={self.measure!r})"


DESCENT_STRATEGIES = ("bft", "dft", "glo", "glo-geometric")


def make_descent_strategy(name: str) -> DescentStrategy:
    """Factory mapping the paper's strategy names to strategy objects."""
    if name == "bft":
        return BreadthFirstDescent()
    if name == "dft":
        return DepthFirstDescent()
    if name == "glo":
        return GlobalBestDescent(measure="probabilistic")
    if name == "glo-geometric":
        return GlobalBestDescent(measure="geometric")
    raise ValueError(f"unknown descent strategy {name!r}; expected one of {DESCENT_STRATEGIES}")
