"""Frontiers and probability density queries (paper Definitions 3 and §2.2).

A *frontier* is a set of entries such that every kernel estimator stored in
the tree is represented exactly once — either directly (a leaf entry in the
frontier) or through exactly one ancestor directory entry.  Every frontier
defines a Gaussian mixture model, and the probability density query

``pdq(x, E) = sum_{e in E} (n_e / n) * g(x, mu_e, sigma_e)``

evaluates that model at the query object.

Refining the frontier replaces one directory entry by the entries of its child
node (one additional node read); the density is updated incrementally by
subtracting the refined entry's contribution and adding its children's — the
constant-time update the paper highlights at the end of §2.2.

The implementation keeps the entire query side in **log space** and evaluates
whole entry batches at once: every frontier owns a :class:`FrontierArrays`
buffer packing the entries' means, variances and mixture weights into
contiguous numpy arrays, each refinement evaluates all children of the read
node with one batched ``log_gaussian_pdf`` call, and the mixture density is a
log-sum-exp over the cached per-entry log contributions.  Linear-space
densities underflow to exact zero in high dimensions; the log-space path keeps
them exact (see DESIGN.md, log-space engine).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..index.entry import DirectoryEntry
from ..index.node import AnyEntry
from ..stats.gaussian import log_gaussian_pdf_batch, logsumexp, safe_exp
from ..stats.kernel import log_epanechnikov_pdf_batch
from .descent import DescentStrategy

__all__ = [
    "FrontierItem",
    "Frontier",
    "FrontierArrays",
    "component_log_densities",
    "entry_component_params",
    "pdq",
    "pdq_scalar",
    "log_pdq",
]

#: Component kinds stored in :class:`FrontierArrays`.  Gaussian rows keep the
#: per-dimension *variance* in the scale column, Epanechnikov rows keep the
#: kernel *bandwidth* (their density is not a Gaussian and is dispatched to
#: the batched Epanechnikov evaluator instead).
GAUSSIAN_KIND = 0
EPANECHNIKOV_KIND = 1


def entry_component_params(
    entry: AnyEntry,
    variance_inflation: Optional[np.ndarray] = None,
    leaf_bandwidth: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """``(mean, scale, kind)`` of the entry's mixture component.

    Directory entries are the moment match of the kernel mixture they
    summarise (cluster-feature variance plus the squared kernel bandwidth,
    see :meth:`DirectoryEntry.to_gaussian`); Gaussian leaf entries are exact
    Gaussians with variance ``h**2``; Epanechnikov leaves keep their bandwidth
    and are flagged with :data:`EPANECHNIKOV_KIND`.

    ``leaf_bandwidth`` is the tree-shared, epoch-tagged kernel bandwidth.
    Tree-managed leaf entries no longer carry per-entry bandwidth copies
    (updating a copy per entry made every streamed insert O(n)); the shared
    vector is resolved here, at evaluation time.  An explicit per-entry
    ``entry.bandwidth`` still wins when set.
    """
    if isinstance(entry, DirectoryEntry):
        feature = entry.cluster_feature
        variance = feature.variance()
        if variance_inflation is not None:
            variance = variance + variance_inflation
        return feature.mean(), variance, GAUSSIAN_KIND
    bandwidth = entry.resolve_bandwidth(leaf_bandwidth)
    if entry.kernel == "epanechnikov":
        return entry.point, bandwidth, EPANECHNIKOV_KIND
    return entry.point, bandwidth ** 2, GAUSSIAN_KIND


def component_log_densities(
    x: np.ndarray, means: np.ndarray, scales: np.ndarray, kinds: np.ndarray
) -> np.ndarray:
    """Unweighted log densities of mixed-kind components, batched.

    ``x`` is one query ``(d,)`` or a batch ``(m, d)``; the result has shape
    ``(n,)`` respectively ``(m, n)``.  Pure-Gaussian batches (the paper's
    default kernel) take a single vectorised call; mixed batches dispatch the
    Epanechnikov rows separately.
    """
    kinds = np.asarray(kinds)
    if not np.any(kinds == EPANECHNIKOV_KIND):
        return log_gaussian_pdf_batch(x, means, scales)
    gaussian_mask = kinds == GAUSSIAN_KIND
    x = np.asarray(x, dtype=float)
    single = x.ndim == 1
    queries = x[None, :] if single else x
    out = np.empty((queries.shape[0], len(kinds)))
    if np.any(gaussian_mask):
        out[:, gaussian_mask] = log_gaussian_pdf_batch(
            queries, means[gaussian_mask], scales[gaussian_mask]
        )
    epanechnikov_mask = ~gaussian_mask
    out[:, epanechnikov_mask] = log_epanechnikov_pdf_batch(
        queries, means[epanechnikov_mask], scales[epanechnikov_mask]
    )
    return out[0] if single else out


class FrontierArrays:
    """Contiguous structure-of-arrays buffer behind a :class:`Frontier`.

    Holds one row per frontier entry — mean, scale (variance or bandwidth),
    kind, log mixture weight and cached log contribution — in amortised-growth
    numpy arrays.  Rows are appended in batches (one batch per node read) and
    removed in O(1) by swapping with the last row, so the buffer stays packed
    across arbitrarily many refinements and every whole-frontier reduction
    (log-sum-exp density, descent argmax) is a single vectorised operation.
    """

    __slots__ = ("dimension", "size", "_means", "_scales", "_kinds", "_log_weights", "_log_contribs")

    def __init__(self, dimension: int, capacity: int = 32) -> None:
        capacity = max(1, int(capacity))
        self.dimension = dimension
        self.size = 0
        self._means = np.empty((capacity, dimension))
        self._scales = np.empty((capacity, dimension))
        self._kinds = np.empty(capacity, dtype=np.int8)
        self._log_weights = np.empty(capacity)
        self._log_contribs = np.empty(capacity)

    # -- views ------------------------------------------------------------------------
    @property
    def means(self) -> np.ndarray:
        return self._means[: self.size]

    @property
    def scales(self) -> np.ndarray:
        return self._scales[: self.size]

    @property
    def kinds(self) -> np.ndarray:
        return self._kinds[: self.size]

    @property
    def log_weights(self) -> np.ndarray:
        return self._log_weights[: self.size]

    @property
    def log_contributions(self) -> np.ndarray:
        return self._log_contribs[: self.size]

    # -- mutation ---------------------------------------------------------------------
    def _ensure_capacity(self, extra: int) -> None:
        needed = self.size + extra
        capacity = self._log_contribs.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity)
        for name in ("_means", "_scales"):
            old = getattr(self, name)
            grown = np.empty((new_capacity, self.dimension), dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)
        for name in ("_kinds", "_log_weights", "_log_contribs"):
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)

    def append_batch(
        self,
        means: np.ndarray,
        scales: np.ndarray,
        kinds: np.ndarray,
        log_weights: np.ndarray,
        log_densities: np.ndarray,
    ) -> int:
        """Append rows for one batch of entries; returns the first new slot."""
        count = len(log_weights)
        self._ensure_capacity(count)
        start = self.size
        self._means[start : start + count] = means
        self._scales[start : start + count] = scales
        self._kinds[start : start + count] = kinds
        self._log_weights[start : start + count] = log_weights
        self._log_contribs[start : start + count] = log_weights + log_densities
        self.size += count
        return start

    def swap_remove(self, slot: int) -> Optional[int]:
        """Remove row ``slot`` by swapping the last row into its place.

        Returns the previous index of the row that moved into ``slot`` (so the
        owner can update its bookkeeping), or ``None`` when the removed row was
        already the last one.
        """
        last = self.size - 1
        if not (0 <= slot <= last):
            raise IndexError(f"slot {slot} out of range for size {self.size}")
        moved: Optional[int] = None
        if slot != last:
            self._means[slot] = self._means[last]
            self._scales[slot] = self._scales[last]
            self._kinds[slot] = self._kinds[last]
            self._log_weights[slot] = self._log_weights[last]
            self._log_contribs[slot] = self._log_contribs[last]
            moved = last
        self.size = last
        return moved

    # -- reductions --------------------------------------------------------------------
    def log_density(self) -> float:
        """Log mixture density: log-sum-exp over the cached log contributions.

        Inlined log-sum-exp: this runs once per node read for every live
        frontier, so it avoids the generic :func:`logsumexp` wrapper (errstate
        context, keepdims bookkeeping) on arrays that are typically tiny.
        """
        contribs = self.log_contributions
        if contribs.size == 0:
            return -math.inf
        amax = contribs.max()
        if not np.isfinite(amax):
            # All -inf (query outside every support) stays -inf; +inf saturates.
            return float(amax)
        # This IS log-sum-exp, hand-inlined for the once-per-node-read hot
        # path; the exp is max-shifted so it cannot underflow the result.
        return float(np.log(np.exp(contribs - amax).sum()) + amax)  # reprolint: disable=RL001 -- inlined logsumexp


@dataclass(slots=True)
class FrontierItem:
    """One frontier entry together with its cached density contribution.

    Attributes
    ----------
    entry:
        The tree entry (directory entry or leaf/kernel entry).
    level:
        Level of the node the entry points to (leaf entries have level -1,
        directory entries the level of their child node).
    order:
        Monotonically increasing counter recording when the item joined the
        frontier; breadth-first and depth-first descent use it for tie
        breaking.
    log_contribution:
        Cached log of the weighted density ``(n_e / n) * g(x, ...)`` of the
        entry for the frontier's query object; the canonical quantity on the
        log-space query path (never underflows).
    slot:
        Row index of the entry inside the frontier's :class:`FrontierArrays`.
    """

    entry: AnyEntry
    level: int
    order: int
    log_contribution: float
    slot: int = -1

    @property
    def contribution(self) -> float:
        """Linear-space contribution (may underflow to 0.0 in high dimensions)."""
        return safe_exp(self.log_contribution)

    @property
    def is_refinable(self) -> bool:
        """Directory entries can be replaced by their children; kernels cannot.

        Duck-typed on ``entry.is_directory`` (not ``isinstance``) so the
        flat-forest entry proxies of :mod:`repro.core.flat` refine through
        the identical machinery.
        """
        return self.entry.is_directory


def _entry_density(
    entry: AnyEntry,
    x: np.ndarray,
    variance_inflation: Optional[np.ndarray] = None,
    leaf_bandwidth: Optional[np.ndarray] = None,
) -> float:
    """Unweighted density of an entry's model component at ``x`` (scalar path).

    Directory entries are evaluated as the moment match of the kernel mixture
    they summarise (cluster-feature variance plus the squared kernel
    bandwidth, see :meth:`DirectoryEntry.to_gaussian`); leaf entries evaluate
    their kernel directly.  Retained as the reference implementation the
    vectorised engine is tested against.
    """
    if isinstance(entry, DirectoryEntry):
        return entry.density(x, variance_inflation=variance_inflation)
    return entry.density(x, bandwidth=leaf_bandwidth)


def pdq_scalar(
    x: np.ndarray,
    entries: Sequence[AnyEntry],
    total_objects: Optional[float] = None,
    variance_inflation: Optional[np.ndarray] = None,
    leaf_bandwidth: Optional[np.ndarray] = None,
) -> float:
    """Linear-space scalar probability density query (reference implementation).

    One ``math.exp`` per entry; kept verbatim from the pre-vectorisation
    engine so property tests can pin the vectorised :func:`pdq` against it.
    """
    entries = list(entries)
    if not entries:
        return 0.0
    x = np.asarray(x, dtype=float)
    if total_objects is None:
        total_objects = float(sum(entry.n_objects for entry in entries))
    if total_objects <= 0:
        return 0.0
    return float(
        sum(
            entry.n_objects
            / total_objects
            * _entry_density(entry, x, variance_inflation, leaf_bandwidth)
            for entry in entries
        )
    )


def _entry_batch_params(
    entries: Sequence[AnyEntry],
    variance_inflation: Optional[np.ndarray],
    leaf_bandwidth: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack ``(means, scales, kinds, n_objects)`` arrays for a batch of entries."""
    first_mean, _, _ = entry_component_params(entries[0], variance_inflation, leaf_bandwidth)
    dimension = first_mean.shape[0]
    count = len(entries)
    means = np.empty((count, dimension))
    scales = np.empty((count, dimension))
    kinds = np.empty(count, dtype=np.int8)
    n_objects = np.empty(count)
    for i, entry in enumerate(entries):
        mean, scale, kind = entry_component_params(entry, variance_inflation, leaf_bandwidth)
        means[i] = mean
        scales[i] = scale
        kinds[i] = kind
        n_objects[i] = entry.n_objects
    return means, scales, kinds, n_objects


def log_pdq(
    x: np.ndarray,
    entries: Sequence[AnyEntry],
    total_objects: Optional[float] = None,
    variance_inflation: Optional[np.ndarray] = None,
    leaf_bandwidth: Optional[np.ndarray] = None,
) -> float:
    """Log-space probability density query over an arbitrary entry set.

    Evaluates all entries with one batched log density call and mixes them via
    log-sum-exp; returns ``-inf`` for an empty entry set (density zero).
    """
    entries = list(entries)
    if not entries:
        return -math.inf
    x = np.asarray(x, dtype=float)
    means, scales, kinds, n_objects = _entry_batch_params(
        entries, variance_inflation, leaf_bandwidth
    )
    if total_objects is None:
        total_objects = float(n_objects.sum())
    if total_objects <= 0:
        return -math.inf
    with np.errstate(divide="ignore"):
        log_weights = np.log(n_objects) - math.log(total_objects)
    return float(logsumexp(log_weights + component_log_densities(x, means, scales, kinds)))


def pdq(
    x: np.ndarray,
    entries: Sequence[AnyEntry],
    total_objects: Optional[float] = None,
    variance_inflation: Optional[np.ndarray] = None,
    leaf_bandwidth: Optional[np.ndarray] = None,
) -> float:
    """Probability density query over an arbitrary entry set (paper Def. 3).

    Vectorised log-space implementation; agrees with :func:`pdq_scalar` to
    floating-point round-off and is the hot path of level-model and baseline
    density evaluations.
    """
    return safe_exp(log_pdq(x, entries, total_objects, variance_inflation, leaf_bandwidth))


class Frontier:
    """The evolving mixed-granularity model for one query object and one tree.

    The frontier starts with the entries of the root node (the coarsest
    complete model) and is refined one node at a time.  All density values are
    maintained incrementally in log space: each node read evaluates the read
    node's children with one batched call against the query and the mixture
    density is a log-sum-exp over the packed per-entry log contributions, so a
    refinement step costs O(fanout) vectorised density evaluations — the work
    of reading a single node.
    """

    def __init__(
        self,
        root_entries: Sequence[AnyEntry],
        root_level: int,
        query: np.ndarray,
        variance_inflation: Optional[np.ndarray] = None,
        leaf_bandwidth: Optional[np.ndarray] = None,
        root_params: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None,
        root_log_densities: Optional[np.ndarray] = None,
    ) -> None:
        """``leaf_bandwidth`` is the owning tree's shared kernel bandwidth,
        resolved for leaf entries at evaluation time (tree-managed entries do
        not carry per-entry copies).  ``root_params`` /
        ``root_log_densities`` optionally carry the packed component
        parameters of the root entries (shared across queries, see
        :meth:`BayesTree.root_batch_params`) and this query's precomputed
        unweighted log densities for them."""
        self.query = np.asarray(query, dtype=float)
        self.variance_inflation = (
            None if variance_inflation is None else np.asarray(variance_inflation, dtype=float)
        )
        self.leaf_bandwidth = (
            None if leaf_bandwidth is None else np.asarray(leaf_bandwidth, dtype=float)
        )
        self.total_objects = float(sum(entry.n_objects for entry in root_entries))
        self._log_total = math.log(self.total_objects) if self.total_objects > 0 else None
        self._counter = 0
        self._items: List[FrontierItem] = []
        self._slot_items: List[FrontierItem] = []
        self.nodes_read = 0
        self.arrays = FrontierArrays(
            dimension=self.query.shape[0], capacity=max(32, 2 * len(root_entries))
        )
        root_entries = list(root_entries)
        levels = [
            root_level - 1 if entry.is_directory else -1 for entry in root_entries
        ]
        self._append_entries(
            root_entries, levels, log_densities=root_log_densities, params=root_params
        )
        self._log_density = self.arrays.log_density()

    # -- construction helpers ---------------------------------------------------------
    def _append_entries(
        self,
        entries: Sequence[AnyEntry],
        levels: Sequence[int],
        log_densities: Optional[np.ndarray] = None,
        params: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> None:
        """Append a batch of entries, evaluating their densities in one call.

        ``log_densities`` and ``params`` may carry precomputed unweighted log
        densities / packed component parameters for the batch (the batch
        classification driver shares one packing and one evaluation across all
        queries that read the same node).
        """
        if not entries:
            return
        if params is None:
            params = _entry_batch_params(entries, self.variance_inflation, self.leaf_bandwidth)
        means, scales, kinds, n_objects = params
        if self._log_total is None:
            log_weights = np.full(len(entries), -np.inf)
        else:
            with np.errstate(divide="ignore"):
                log_weights = np.log(n_objects) - self._log_total
        if log_densities is None:
            log_densities = component_log_densities(self.query, means, scales, kinds)
        else:
            log_densities = np.asarray(log_densities, dtype=float)
        start = self.arrays.append_batch(means, scales, kinds, log_weights, log_densities)
        # One C-level conversion of the new contributions; per-element float()
        # in the loop below dominated the refinement hot path.
        contribs = self.arrays.log_contributions[start:].tolist()
        counter = self._counter
        items_append = self._items.append
        slots_append = self._slot_items.append
        for i, (entry, level) in enumerate(zip(entries, levels)):
            item = FrontierItem(entry, level, counter, contribs[i], start + i)
            counter += 1
            items_append(item)
            slots_append(item)
        self._counter = counter

    def _remove_item(self, item: FrontierItem) -> None:
        self._items.remove(item)
        moved_from = self.arrays.swap_remove(item.slot)
        last_item = self._slot_items.pop()
        if moved_from is not None:
            self._slot_items[item.slot] = last_item
            last_item.slot = item.slot

    # -- inspection --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[FrontierItem]:
        return iter(self._items)

    @property
    def items(self) -> List[FrontierItem]:
        return list(self._items)

    @property
    def log_density(self) -> float:
        """Current log probability density of the query under the frontier model."""
        return self._log_density

    @property
    def density(self) -> float:
        """Linear-space density (may underflow to 0.0; prefer :attr:`log_density`)."""
        return safe_exp(self._log_density)

    def refinable_items(self) -> List[FrontierItem]:
        """Frontier items that still have an unread child node."""
        return [item for item in self._items if item.is_refinable]

    @property
    def is_fully_refined(self) -> bool:
        """True once every kernel estimator is represented individually."""
        return not any(item.is_refinable for item in self._items)

    def density_from_scratch(self) -> float:
        """Recompute the density non-incrementally (used for verification).

        Deliberately goes through the scalar linear-space reference path so it
        is an independent check of the incremental log-space engine.
        """
        return pdq_scalar(
            self.query,
            [item.entry for item in self._items],
            total_objects=self.total_objects,
            variance_inflation=self.variance_inflation,
            leaf_bandwidth=self.leaf_bandwidth,
        )

    def represented_objects(self) -> float:
        """Total number of observations represented by the frontier (invariant)."""
        return float(sum(item.entry.n_objects for item in self._items))

    # -- refinement --------------------------------------------------------------------
    def refine(self, strategy: DescentStrategy) -> Optional[FrontierItem]:
        """Read one more node, chosen by ``strategy``; returns the refined item.

        Returns ``None`` when the frontier is already fully refined (the model
        equals the full kernel density estimate).
        """
        candidates = self.refinable_items()
        if not candidates:
            return None
        item = strategy.choose(candidates, self.query)
        return self.refine_item(item)

    def refine_item(
        self,
        item: FrontierItem,
        child_log_densities: Optional[np.ndarray] = None,
        child_params: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> FrontierItem:
        """Replace ``item`` by the entries of its child node (paper §2.2).

        The density is updated incrementally:
        ``p_{t+1}(x) = p_t(x) - contribution(e_s) + sum_children contribution``.
        The children are evaluated with a single batched log density call;
        ``child_log_densities`` / ``child_params`` let the batch driver pass a
        precomputed row of a shared evaluation and the shared packed component
        parameters instead.  Summing the cached contributions via log-sum-exp
        keeps exactly the O(frontier) cost of the paper's update while
        avoiding both the catastrophic cancellation of the subtract-then-add
        form and linear-space underflow.
        """
        if not item.is_refinable:
            raise ValueError("cannot refine a leaf (kernel) entry")
        if item not in self._items:
            raise ValueError("item is not part of this frontier")
        entry: DirectoryEntry = item.entry  # type: ignore[assignment]
        child_node = entry.child
        self._remove_item(item)
        children = list(child_node.entries)
        levels = [
            child_node.level - 1 if child_entry.is_directory else -1
            for child_entry in children
        ]
        if child_params is None:
            # Compiled flat nodes carry their packed component parameters as
            # zero-copy column slices; consuming them here replaces the
            # per-entry packing loop with an array slice (the XPath-style
            # "children are a range" payoff).  Object-graph nodes leave the
            # attribute None and take the packing path unchanged.
            child_params = child_node.packed_params
        self._append_entries(
            children, levels, log_densities=child_log_densities, params=child_params
        )
        self._log_density = self.arrays.log_density()
        self.nodes_read += 1
        return item

    def refine_fully(self, strategy: DescentStrategy, max_nodes: Optional[int] = None) -> int:
        """Refine until no directory entries remain (or ``max_nodes`` reads)."""
        reads = 0
        while not self.is_fully_refined:
            if max_nodes is not None and reads >= max_nodes:
                break
            if self.refine(strategy) is None:
                break
            reads += 1
        return reads
