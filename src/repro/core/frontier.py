"""Frontiers and probability density queries (paper Definitions 3 and §2.2).

A *frontier* is a set of entries such that every kernel estimator stored in
the tree is represented exactly once — either directly (a leaf entry in the
frontier) or through exactly one ancestor directory entry.  Every frontier
defines a Gaussian mixture model, and the probability density query

``pdq(x, E) = sum_{e in E} (n_e / n) * g(x, mu_e, sigma_e)``

evaluates that model at the query object.

Refining the frontier replaces one directory entry by the entries of its child
node (one additional node read); the density is updated incrementally by
subtracting the refined entry's contribution and adding its children's — the
constant-time update the paper highlights at the end of §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..index.entry import DirectoryEntry, LeafEntry
from ..index.node import AnyEntry
from .descent import DescentStrategy

__all__ = ["FrontierItem", "Frontier", "pdq"]


@dataclass
class FrontierItem:
    """One frontier entry together with its cached density contribution.

    Attributes
    ----------
    entry:
        The tree entry (directory entry or leaf/kernel entry).
    level:
        Level of the node the entry points to (leaf entries have level -1,
        directory entries the level of their child node).
    order:
        Monotonically increasing counter recording when the item joined the
        frontier; breadth-first and depth-first descent use it for tie
        breaking.
    contribution:
        Cached weighted density ``(n_e / n) * g(x, ...)`` of the entry for the
        frontier's query object.
    """

    entry: AnyEntry
    level: int
    order: int
    contribution: float

    @property
    def is_refinable(self) -> bool:
        """Directory entries can be replaced by their children; kernels cannot."""
        return isinstance(self.entry, DirectoryEntry)


def _entry_density(
    entry: AnyEntry, x: np.ndarray, variance_inflation: Optional[np.ndarray] = None
) -> float:
    """Unweighted density of an entry's model component at ``x``.

    Directory entries are evaluated as the moment match of the kernel mixture
    they summarise (cluster-feature variance plus the squared kernel
    bandwidth, see :meth:`DirectoryEntry.to_gaussian`); leaf entries evaluate
    their kernel directly.
    """
    if isinstance(entry, DirectoryEntry):
        return entry.density(x, variance_inflation=variance_inflation)
    return entry.density(x)


def pdq(
    x: np.ndarray,
    entries: Sequence[AnyEntry],
    total_objects: Optional[float] = None,
    variance_inflation: Optional[np.ndarray] = None,
) -> float:
    """Probability density query over an arbitrary entry set (paper Def. 3)."""
    entries = list(entries)
    if not entries:
        return 0.0
    x = np.asarray(x, dtype=float)
    if total_objects is None:
        total_objects = float(sum(entry.n_objects for entry in entries))
    if total_objects <= 0:
        return 0.0
    return float(
        sum(
            entry.n_objects / total_objects * _entry_density(entry, x, variance_inflation)
            for entry in entries
        )
    )


class Frontier:
    """The evolving mixed-granularity model for one query object and one tree.

    The frontier starts with the entries of the root node (the coarsest
    complete model) and is refined one node at a time.  All density values are
    maintained incrementally, so a refinement step costs O(fanout) density
    evaluations — the work of reading a single node.
    """

    def __init__(
        self,
        root_entries: Sequence[AnyEntry],
        root_level: int,
        query: np.ndarray,
        variance_inflation: Optional[np.ndarray] = None,
    ) -> None:
        self.query = np.asarray(query, dtype=float)
        self.variance_inflation = (
            None if variance_inflation is None else np.asarray(variance_inflation, dtype=float)
        )
        self.total_objects = float(sum(entry.n_objects for entry in root_entries))
        self._counter = 0
        self._items: List[FrontierItem] = []
        self.nodes_read = 0
        for entry in root_entries:
            self._add_entry(entry, level=root_level - 1 if isinstance(entry, DirectoryEntry) else -1)
        self._density = float(sum(item.contribution for item in self._items))

    # -- construction helpers ---------------------------------------------------------
    def _add_entry(self, entry: AnyEntry, level: int) -> FrontierItem:
        weight = entry.n_objects / self.total_objects if self.total_objects > 0 else 0.0
        contribution = weight * _entry_density(entry, self.query, self.variance_inflation)
        item = FrontierItem(entry=entry, level=level, order=self._counter, contribution=contribution)
        self._counter += 1
        self._items.append(item)
        return item

    # -- inspection --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[FrontierItem]:
        return iter(self._items)

    @property
    def items(self) -> List[FrontierItem]:
        return list(self._items)

    @property
    def density(self) -> float:
        """Current probability density of the query under the frontier model."""
        return self._density

    def refinable_items(self) -> List[FrontierItem]:
        """Frontier items that still have an unread child node."""
        return [item for item in self._items if item.is_refinable]

    @property
    def is_fully_refined(self) -> bool:
        """True once every kernel estimator is represented individually."""
        return not any(item.is_refinable for item in self._items)

    def density_from_scratch(self) -> float:
        """Recompute the density non-incrementally (used for verification)."""
        return float(sum(item.contribution for item in self._items))

    def represented_objects(self) -> float:
        """Total number of observations represented by the frontier (invariant)."""
        return float(sum(item.entry.n_objects for item in self._items))

    # -- refinement --------------------------------------------------------------------
    def refine(self, strategy: DescentStrategy) -> Optional[FrontierItem]:
        """Read one more node, chosen by ``strategy``; returns the refined item.

        Returns ``None`` when the frontier is already fully refined (the model
        equals the full kernel density estimate).
        """
        candidates = self.refinable_items()
        if not candidates:
            return None
        item = strategy.choose(candidates, self.query)
        return self.refine_item(item)

    def refine_item(self, item: FrontierItem) -> FrontierItem:
        """Replace ``item`` by the entries of its child node (paper §2.2).

        The density is updated incrementally:
        ``p_{t+1}(x) = p_t(x) - contribution(e_s) + sum_children contribution``.
        """
        if not item.is_refinable:
            raise ValueError("cannot refine a leaf (kernel) entry")
        if item not in self._items:
            raise ValueError("item is not part of this frontier")
        entry: DirectoryEntry = item.entry  # type: ignore[assignment]
        child_node = entry.child
        self._items.remove(item)
        for child_entry in child_node.entries:
            child_level = (
                child_node.level - 1 if isinstance(child_entry, DirectoryEntry) else -1
            )
            self._add_entry(child_entry, level=child_level)
        # The conceptual update is incremental (subtract the refined entry's
        # contribution, add its children's, paper §2.2); summing the cached
        # contributions keeps exactly that O(frontier) cost while avoiding the
        # catastrophic cancellation the subtract-then-add form suffers from
        # when one entry dominates the mixture density.
        self._density = float(sum(existing.contribution for existing in self._items))
        self.nodes_read += 1
        return item

    def refine_fully(self, strategy: DescentStrategy, max_nodes: Optional[int] = None) -> int:
        """Refine until no directory entries remain (or ``max_nodes`` reads)."""
        reads = 0
        while not self.is_fully_refined:
            if max_nodes is not None and reads >= max_nodes:
                break
            if self.refine(strategy) is None:
                break
            reads += 1
        return reads
