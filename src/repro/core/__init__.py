"""Core of the reproduction: the Bayes tree and the anytime Bayes classifiers."""

from .bayes_tree import BayesTree
from .classifier import AnytimeBayesClassifier, AnytimeClassification
from .config import BayesTreeConfig, default_qbk_k
from .descent import (
    DESCENT_STRATEGIES,
    BreadthFirstDescent,
    DepthFirstDescent,
    DescentStrategy,
    GlobalBestDescent,
    make_descent_strategy,
)
from .flat import FlatForest, FlatTree
from .frontier import Frontier, FrontierArrays, FrontierItem, log_pdq, pdq, pdq_scalar
from .single_tree import SingleTreeAnytimeClassifier

__all__ = [
    "BayesTree",
    "FlatForest",
    "FlatTree",
    "AnytimeBayesClassifier",
    "AnytimeClassification",
    "BayesTreeConfig",
    "default_qbk_k",
    "DESCENT_STRATEGIES",
    "BreadthFirstDescent",
    "DepthFirstDescent",
    "DescentStrategy",
    "GlobalBestDescent",
    "make_descent_strategy",
    "Frontier",
    "FrontierArrays",
    "FrontierItem",
    "pdq",
    "pdq_scalar",
    "log_pdq",
    "SingleTreeAnytimeClassifier",
]
