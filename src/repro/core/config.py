"""Configuration objects for the Bayes tree and the anytime classifier."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..index.rstar import TreeParameters

__all__ = ["BayesTreeConfig", "default_qbk_k"]


@dataclass(frozen=True)
class BayesTreeConfig:
    """Parameters of a Bayes tree.

    Attributes
    ----------
    tree:
        Fanout / leaf capacity parameters (m, M, l, L) of the underlying
        R*-tree.  The paper derives the fanout from a disk page size; here it
        is an explicit parameter (see DESIGN.md, substitutions).
    kernel:
        Kernel family used at leaf level, ``"gaussian"`` (paper default) or
        ``"epanechnikov"`` (future-work option).
    bandwidth_scale:
        Multiplier applied to the Silverman rule-of-thumb bandwidth; 1.0
        reproduces the paper's data-independent setting.
    decay_rate:
        Exponent ``lambda`` of the ``2 ** (-lambda * dt)`` exponential decay
        applied to all stored statistics as the tree's logical clock advances
        (the §4.2 anytime-stream extension).  0.0 (the default) disables
        decay entirely and keeps every code path bit-identical to the
        never-forgetting tree of the paper's main sections.
    expiry_threshold:
        Decayed weight below which a stored kernel is considered
        insignificant and may be expired from the tree (bounding memory on
        infinite streams).  0.0 disables expiry; only meaningful together
        with a positive ``decay_rate``.
    """

    tree: TreeParameters = field(default_factory=TreeParameters)
    kernel: str = "gaussian"
    bandwidth_scale: float = 1.0
    decay_rate: float = 0.0
    expiry_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.kernel not in ("gaussian", "epanechnikov"):
            raise ValueError("kernel must be 'gaussian' or 'epanechnikov'")
        if self.bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        if self.decay_rate < 0:
            raise ValueError("decay_rate must be non-negative")
        if not (0.0 <= self.expiry_threshold < 1.0):
            raise ValueError("expiry_threshold must be in [0, 1)")
        if self.expiry_threshold > 0 and self.decay_rate == 0:
            raise ValueError("expiry_threshold requires a positive decay_rate")

    def to_dict(self) -> dict:
        """Plain-data view of the configuration (snapshot manifests).

        Every value is a JSON-native scalar; Python's JSON encoder emits
        floats via ``repr``, which round-trips every finite float exactly —
        a restored configuration therefore decays, expires and scales
        bandwidths bit-identically to the saved one.
        """
        return {
            "tree": asdict(self.tree),
            "kernel": self.kernel,
            "bandwidth_scale": self.bandwidth_scale,
            "decay_rate": self.decay_rate,
            "expiry_threshold": self.expiry_threshold,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BayesTreeConfig":
        """Inverse of :meth:`to_dict` (validates through the constructors)."""
        return cls(
            tree=TreeParameters(**data["tree"]),
            kernel=data["kernel"],
            bandwidth_scale=data["bandwidth_scale"],
            decay_rate=data["decay_rate"],
            expiry_threshold=data["expiry_threshold"],
        )


def default_qbk_k(n_classes: int) -> int:
    """The paper's default for the qbk improvement strategy.

    "k = min{2, blog(m)c}, where m is the number of classes, showed the best
    performance on all tested data sets" (paper §2.2), and §3.2 states that
    k = 2 was used for all four evaluation data sets — including the binary
    gender set.  We therefore use k = 2 whenever at least two classes exist
    (k = 1 for the degenerate single-class case).
    """
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    return min(2, n_classes)
