"""Configuration objects for the Bayes tree and the anytime classifier."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..index.rstar import TreeParameters

__all__ = ["BayesTreeConfig", "default_qbk_k"]


@dataclass(frozen=True)
class BayesTreeConfig:
    """Parameters of a Bayes tree.

    Attributes
    ----------
    tree:
        Fanout / leaf capacity parameters (m, M, l, L) of the underlying
        R*-tree.  The paper derives the fanout from a disk page size; here it
        is an explicit parameter (see DESIGN.md, substitutions).
    kernel:
        Kernel family used at leaf level, ``"gaussian"`` (paper default) or
        ``"epanechnikov"`` (future-work option).
    bandwidth_scale:
        Multiplier applied to the Silverman rule-of-thumb bandwidth; 1.0
        reproduces the paper's data-independent setting.
    """

    tree: TreeParameters = field(default_factory=TreeParameters)
    kernel: str = "gaussian"
    bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kernel not in ("gaussian", "epanechnikov"):
            raise ValueError("kernel must be 'gaussian' or 'epanechnikov'")
        if self.bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")


def default_qbk_k(n_classes: int) -> int:
    """The paper's default for the qbk improvement strategy.

    "k = min{2, blog(m)c}, where m is the number of classes, showed the best
    performance on all tested data sets" (paper §2.2), and §3.2 states that
    k = 2 was used for all four evaluation data sets — including the binary
    gender set.  We therefore use k = 2 whenever at least two classes exist
    (k = 1 for the degenerate single-class case).
    """
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    return min(2, n_classes)
