"""The Bayes tree: an R*-tree storing a hierarchy of Gaussian mixture models.

Paper §2.2: the observations (kernel estimators) are stored at leaf level, the
directory on top provides "a hierarchy of node entries, each of which is a
Gaussian that represents the entire subtree below it".  Every level — and more
generally every frontier — is a complete mixture model of the training data of
one class, which is what enables anytime probability density queries.

The class below wraps the index substrate with:

* training (iterative insertion, the baseline the bulk loaders are compared
  against, and incremental online learning of new objects),
* kernel bandwidth management (Silverman's rule over the class's training
  data, maintained from running sufficient statistics so a streamed insert
  updates the bandwidth in O(d) instead of re-scanning the training set),
* frontier creation for anytime probability density queries.

Incremental maintenance (see DESIGN.md, incremental maintenance): the tree
keeps per-dimension ``(n, LS, SS)`` running sums, an epoch-tagged shared
bandwidth vector (leaf entries no longer carry stamped copies), and an
amortised-append buffer of the leaf kernel centers that backs the packed
``leaf_arrays`` without wholesale invalidation on insert.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..index.cluster_feature import ClusterFeature
from ..index.decay import LOG_HALF, DecayClock, DecayedClusterFeature, decay_factor
from ..index.entry import LeafEntry
from ..index.node import AnyEntry
from ..index.node import Node
from ..index.rstar import RStarTree
from ..stats.gaussian import logsumexp
from ..stats.kernel import silverman_bandwidth_from_stats
from .config import BayesTreeConfig
from .frontier import (
    EPANECHNIKOV_KIND,
    GAUSSIAN_KIND,
    Frontier,
    _entry_batch_params,
    component_log_densities,
    pdq,
)

__all__ = ["BayesTree"]

#: Ratio of the canonical Epanechnikov to Gaussian kernel bandwidths:
#: Silverman's rule targets the Gaussian kernel, the Epanechnikov kernel
#: needs a ~2.2x wider window for the same amount of smoothing.
_EPANECHNIKOV_RESCALE = 2.214

_BatchParams = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class _LeafMeansBuffer:
    """Amortised-growth buffer of the leaf kernel centers, in insertion order.

    Appends are O(d) amortised (capacity doubles on overflow); bulk rebuilds
    (tree adoption, expiry) compact the buffer to a small headroom.  The
    ``view`` is the packed ``(n, d)`` prefix backing the tree's
    ``leaf_arrays``; ``times_view`` is the parallel vector of insertion
    timestamps from which the decayed mixture weights are derived in one
    vectorised expression (all zeros in undecayed trees).
    """

    __slots__ = ("dimension", "size", "_buffer", "_times")

    def __init__(self, dimension: int, capacity: int = 64) -> None:
        self.dimension = dimension
        self.size = 0
        self._buffer = np.empty((max(1, capacity), dimension))
        self._times = np.zeros(self._buffer.shape[0])

    @property
    def view(self) -> np.ndarray:
        return self._buffer[: self.size]

    @property
    def times_view(self) -> np.ndarray:
        return self._times[: self.size]

    def append(self, point: np.ndarray, timestamp: float = 0.0) -> None:
        if self.size == self._buffer.shape[0]:
            grown = np.empty((2 * self._buffer.shape[0], self.dimension))
            grown[: self.size] = self._buffer
            self._buffer = grown
            grown_times = np.zeros(grown.shape[0])
            grown_times[: self.size] = self._times[: self.size]
            self._times = grown_times
        self._buffer[self.size] = point
        self._times[self.size] = timestamp
        self.size += 1

    def rebuild(self, points: np.ndarray, times: Optional[np.ndarray] = None) -> None:
        """Replace the contents with ``points`` (compacts to ~12% headroom)."""
        count = points.shape[0]
        self._buffer = np.empty((max(64, count + count // 8), self.dimension))
        self._buffer[:count] = points
        self._times = np.zeros(self._buffer.shape[0])
        if times is not None:
            self._times[:count] = times
        self.size = count

    def clear(self) -> None:
        self.size = 0


class BayesTree:
    """Hierarchical mixture model over the training objects of a single class."""

    def __init__(self, dimension: int, config: Optional[BayesTreeConfig] = None) -> None:
        self.config = config or BayesTreeConfig()
        self.dimension = dimension
        #: Logical clock of this tree (decay rate + current time), shared
        #: with the index substrate so insertions stamp entries and query
        #: packings age summaries against the same "now" (paper §4.2).  With
        #: ``decay_rate=0`` the clock is inert and every path is bit-identical
        #: to the never-forgetting tree.
        self.clock = DecayClock(decay_rate=self.config.decay_rate)
        self.index = RStarTree(dimension=dimension, params=self.config.tree, clock=self.clock)
        self._bandwidth: Optional[np.ndarray] = None
        self._bandwidth_epoch = 0
        # Running sufficient statistics (n, LS, SS) of the training set; the
        # Silverman bandwidth is re-derived from them in O(d) per insert.
        # They are kept as a decayed cluster feature (aged lazily before each
        # update), accumulated around the first observation as origin:
        # variances are shift-invariant, and the naive SS/n - mean**2 form
        # suffers catastrophic cancellation for data whose mean is large
        # relative to its spread (e.g. timestamp-like features).
        self._stats_origin: Optional[np.ndarray] = None
        self._stats = DecayedClusterFeature(dimension, decay_rate=self.config.decay_rate)
        self._leaf_means = _LeafMeansBuffer(dimension)
        self._leaf_arrays_cache: Optional[Tuple[Tuple, _BatchParams]] = None
        self._root_params_cache: Optional[Tuple[Tuple, _BatchParams]] = None
        self._decay_sync_key: Optional[Tuple[int, float]] = None
        self._last_expiry_sweep = 0.0

    # -- basic properties -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.index)

    @property
    def n_objects(self) -> int:
        """Number of stored observations."""
        return len(self.index)

    @property
    def bandwidth(self) -> Optional[np.ndarray]:
        """Current kernel bandwidth vector (None before any training data)."""
        return self._bandwidth

    @property
    def bandwidth_epoch(self) -> int:
        """Monotonic tag incremented whenever the shared bandwidth is re-derived.

        Leaf entries resolve the shared bandwidth at evaluation time, so a new
        epoch implicitly retags every stored kernel without touching a single
        entry — the O(n) per-insert restamping of the historical code is gone.
        """
        return self._bandwidth_epoch

    @property
    def root(self) -> Node:
        return self.index.root

    def node_count(self) -> int:
        return self.index.node_count()

    def height(self) -> int:
        return self.index.height

    def validate(self, enforce_fanout: bool = True, require_balance: bool = True) -> None:
        """Check the structural invariants of the underlying index."""
        self.index.validate(enforce_fanout=enforce_fanout, require_balance=require_balance)

    # -- training ----------------------------------------------------------------------------
    def fit(self, points: np.ndarray, label: Optional[object] = None) -> "BayesTree":
        """Train from scratch by iterative insertion (the paper's baseline).

        Bulk-loaded trees are built by the strategies in ``repro.bulkload``
        and attached via :meth:`adopt_index` instead.  The per-point updates
        are exactly those of :meth:`insert`, so a tree grown by streamed
        ``insert`` calls is bit-identical to one fitted on the same data.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(f"points must be an (n, {self.dimension}) array")
        for point in points:
            self.insert(point, label=label)
        return self

    def advance_time(self, now: float) -> float:
        """Advance the logical clock to ``now`` (never backwards).

        Pure time passage is lazy: stored summaries are only aged when the
        next insertion touches their path or the next query packs parameters,
        so advancing the clock is O(1) amortised.  Expiry, however, is
        checked here too — a class that stops receiving data must still shed
        its stale kernels (class disappearance on an evolving stream).
        """
        advanced = self.clock.advance(now)
        self._maybe_expire()
        return advanced

    def insert(
        self,
        point: Sequence[float] | np.ndarray,
        label: Optional[object] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Incremental online learning of a single new training object.

        Amortised O(d) model maintenance on top of the index insertion: the
        running sufficient statistics and the shared Silverman bandwidth are
        updated in closed form, and the packed leaf arrays are patched by
        appending the new kernel center — nothing re-scans the training set.

        ``timestamp`` advances the logical clock before the insertion; the
        new kernel is stamped with the clock's (possibly advanced) time and
        the decayed running statistics are aged to it first.
        """
        point = np.asarray(point, dtype=float)
        if timestamp is not None:
            self.clock.advance(timestamp)
        self.index.insert(point, label=label, kernel=self.config.kernel)
        if self._stats_origin is None:
            self._stats_origin = point.copy()
        shifted = point - self._stats_origin
        self._stats.add_point(shifted, now=self.clock.now)
        self._leaf_means.append(point, self.clock.now)
        self._update_bandwidth()
        self._maybe_expire()

    def adopt_index(self, index: RStarTree) -> "BayesTree":
        """Replace the underlying index with a bulk-loaded one.

        The adopted index joins this tree's logical clock; its entries keep
        their stamps (timestamp 0.0 for clock-less bulk loads, i.e. the bulk
        data is treated as arriving at the stream's origin).
        """
        if index.dimension != self.dimension:
            raise ValueError("index dimensionality does not match the Bayes tree")
        index.clock = self.clock
        self.index = index
        self._decay_sync_key = None
        self.recompute_statistics()
        return self

    def recompute_statistics(self) -> None:
        """Rebuild sufficient statistics, leaf buffer and bandwidth from the index.

        O(n·d): used after adopting a bulk-loaded index, after an expiry
        sweep, as the safety net when the underlying index was mutated behind
        the tree's back, and by benchmarks to emulate the historical
        per-insert full refresh.  Leaf entries are normalised to tree
        management — their kernel family is forced to ``config.kernel`` and
        explicit bandwidth copies are dropped in favour of the shared
        epoch-tagged vector — exactly as the historical per-entry restamp
        did, so the packed ``leaf_arrays`` and the frontier refinement path
        always evaluate the same model.  In decayed trees the statistics are
        the weighted sums under each kernel's decayed weight at ``clock.now``.
        """
        decaying = self.clock.enabled
        now = self.clock.now
        entries: List[LeafEntry] = []
        for entry in self.index.iter_leaf_entries():
            if decaying:
                entry.decay_to(now, self.clock.decay_rate)
            entries.append(entry)
            entry.kernel = self.config.kernel
            entry.bandwidth = None
        if not entries:
            self._stats_origin = None
            self._stats = DecayedClusterFeature(
                self.dimension, decay_rate=self.config.decay_rate, last_update=now
            )
            self._leaf_means.clear()
            self._update_bandwidth()
            return
        stacked = np.asarray([entry.point for entry in entries], dtype=float)
        times = np.array([entry.timestamp for entry in entries])
        origin = stacked[0].copy()
        shifted = stacked - origin
        self._stats_origin = origin
        if decaying:
            feature = ClusterFeature.from_weighted_points(
                shifted, np.array([entry.weight for entry in entries])
            )
        else:
            feature = ClusterFeature(
                n=float(stacked.shape[0]),
                linear_sum=shifted.sum(axis=0),
                squared_sum=(shifted * shifted).sum(axis=0),
            )
        self._stats = DecayedClusterFeature(
            self.dimension,
            decay_rate=self.config.decay_rate,
            feature=feature,
            last_update=now,
        )
        self._leaf_means.rebuild(stacked, times)
        self._update_bandwidth()

    def _update_bandwidth(self) -> None:
        """Re-derive the shared bandwidth from the running statistics (O(d)).

        In decayed trees the statistics are the decayed sums as of the last
        model update, so Silverman's rule sees the *effective* (decayed)
        sample size: forgetting data widens the kernels again, exactly as if
        the faded observations had left the training set.
        """
        feature = self._stats.feature
        if feature.n <= 0:
            self._bandwidth = None
        else:
            if feature.n <= 1.0:
                # A single (effective) observation has no spread; fall back
                # to unit bandwidth.
                bandwidth = np.ones(self.dimension)
            else:
                bandwidth = silverman_bandwidth_from_stats(
                    feature.n, feature.linear_sum, feature.squared_sum
                )
            if self.config.kernel == "epanechnikov":
                bandwidth = bandwidth * _EPANECHNIKOV_RESCALE
            self._bandwidth = bandwidth * self.config.bandwidth_scale
        self._bandwidth_epoch += 1

    # -- expiry (bounded memory on infinite streams) -------------------------------------
    def _maybe_expire(self) -> None:
        """Trigger an expiry sweep when stale kernels may have accumulated.

        A fresh kernel needs ``log2(1/threshold) / decay_rate`` time units to
        decay below the expiry threshold (the *horizon*); sweeping twice per
        horizon bounds the stored set to roughly 1.5 horizons of arrivals
        while keeping the amortised sweep cost per insert near-constant.
        """
        threshold = self.config.expiry_threshold
        if threshold <= 0 or not self.clock.enabled:
            return
        horizon = self.clock.horizon(threshold)
        if self.clock.now - self._last_expiry_sweep >= 0.5 * horizon:
            self.expire()

    def expire(self) -> int:
        """Drop every kernel whose decayed weight fell below the threshold.

        Paper §4.2: entries are reused "if their contribution is too
        insignificant due to their age".  The index is rebuilt from the
        surviving entries (which keep their insertion timestamps and labels)
        through the regular R* insertion machinery, so all structural
        invariants hold by construction; statistics, leaf buffers and the
        bandwidth are refreshed from the survivors.  Returns the number of
        expired observations.
        """
        threshold = self.config.expiry_threshold
        if threshold <= 0 or not self.clock.enabled:
            return 0
        now = self.clock.now
        self._last_expiry_sweep = now
        survivors: List[LeafEntry] = []
        dropped = 0
        for entry in self.index.iter_leaf_entries():
            entry.decay_to(now, self.clock.decay_rate)
            if entry.weight >= threshold:
                survivors.append(entry)
            else:
                dropped += 1
        if dropped == 0:
            return 0
        self.index = self.index.rebuilt_with(survivors)
        self._decay_sync_key = None
        self.recompute_statistics()
        return dropped

    # -- snapshot state (persistence support, see repro.persist) --------------------------
    def export_state(self) -> dict:
        """Everything needed to rebuild this tree with bit-identical behaviour.

        The returned dict holds only numpy arrays, plain scalars and raw
        per-observation attribute lists (labels / kernel names / optional
        explicit bandwidths, all in leaf-buffer row order) — encoding them
        into a container is ``repro.persist``'s job.  Captured verbatim:

        * the exact index topology and directory summaries
          (:meth:`RStarTree.export_structure`), with each pre-order leaf slot
          mapped to its row in the insertion-ordered leaf buffer, so the
          packed ``leaf_arrays`` of a restored tree run their float
          reductions in the saved order,
        * the decay state — logical time, per-observation insertion
          timestamps, decayed running statistics and the last expiry sweep,
        * the shared Silverman bandwidth and the running ``(n, LS, SS)``
          training statistics around their accumulation origin (recomputing
          either from the data could pick a different origin or summation
          order and perturb the last bits).
        """
        if self._leaf_means.size != len(self.index):
            # Same safety net as leaf_arrays(): an externally mutated index
            # is re-adopted before we serialize it.
            self.recompute_statistics()
        structure, preorder = self.index.export_structure()
        points = self._leaf_means.view
        times = self._leaf_means.times_view
        rows_by_key: dict = {}
        for row in range(points.shape[0]):
            rows_by_key.setdefault((points[row].tobytes(), float(times[row])), []).append(row)
        leaf_ref = np.empty(len(preorder), dtype=np.int64)
        labels: list = [None] * points.shape[0]
        kernels: list = [self.config.kernel] * points.shape[0]
        bandwidths: list = [None] * points.shape[0]
        for position, entry in enumerate(preorder):
            key = (np.asarray(entry.point, dtype=float).tobytes(), float(entry.timestamp))
            bucket = rows_by_key.get(key)
            if not bucket:
                raise ValueError(
                    "leaf buffer out of sync with the index; the tree was mutated "
                    "behind the model's back"
                )
            row = bucket.pop(0)
            leaf_ref[position] = row
            labels[row] = entry.label
            kernels[row] = entry.kernel
            bandwidths[row] = None if entry.bandwidth is None else np.array(entry.bandwidth)
        feature = self._stats.feature
        return {
            "dimension": self.dimension,
            "n": len(self.index),
            "structure": structure,
            "leaf_ref": leaf_ref,
            "leaf_points": points.copy(),
            "leaf_times": times.copy(),
            "leaf_labels": labels,
            "leaf_kernels": kernels,
            "leaf_bandwidths": bandwidths,
            "clock_now": self.clock.now,
            "stats_origin": None if self._stats_origin is None else self._stats_origin.copy(),
            "stats_n": feature.n,
            "stats_ls": feature.linear_sum.copy(),
            "stats_ss": feature.squared_sum.copy(),
            "stats_last_update": self._stats.last_update,
            "bandwidth": None if self._bandwidth is None else self._bandwidth.copy(),
            "last_expiry_sweep": self._last_expiry_sweep,
        }

    @classmethod
    def from_state(cls, state: dict, config: Optional[BayesTreeConfig] = None) -> "BayesTree":
        """Rebuild a tree from :meth:`export_state` output (the exact inverse).

        No insertion is replayed and no statistic is re-derived: topology,
        summaries, buffer order, bandwidth and decay state are adopted
        verbatim, so every query — scalar, frontier-refined or batched — and
        every future insertion behaves bit-identically to the saved tree.
        """
        dimension = int(state["dimension"])
        tree = cls(dimension=dimension, config=config)
        tree.clock.advance(float(state["clock_now"]))
        rate = tree.clock.decay_rate
        now = tree.clock.now
        points = np.asarray(state["leaf_points"], dtype=float)
        times = np.asarray(state["leaf_times"], dtype=float)
        row_entries = [
            LeafEntry(
                point=points[row],
                label=state["leaf_labels"][row],
                bandwidth=state["leaf_bandwidths"][row],
                kernel=state["leaf_kernels"][row],
                timestamp=float(times[row]),
                weight=decay_factor(rate, now - float(times[row])),
            )
            for row in range(points.shape[0])
        ]
        preorder = [row_entries[int(row)] for row in state["leaf_ref"]]
        tree.index = RStarTree.from_structure(
            state["structure"],
            preorder,
            dimension=dimension,
            params=tree.config.tree,
            clock=tree.clock,
        )
        tree._stats_origin = (
            None if state["stats_origin"] is None else np.asarray(state["stats_origin"], dtype=float)
        )
        tree._stats = DecayedClusterFeature(
            dimension,
            decay_rate=tree.config.decay_rate,
            feature=ClusterFeature(
                n=float(state["stats_n"]),
                linear_sum=np.asarray(state["stats_ls"], dtype=float),
                squared_sum=np.asarray(state["stats_ss"], dtype=float),
            ),
            last_update=float(state["stats_last_update"]),
        )
        tree._leaf_means.rebuild(points, times)
        bandwidth = state["bandwidth"]
        tree._bandwidth = None if bandwidth is None else np.asarray(bandwidth, dtype=float)
        tree._bandwidth_epoch = 1
        tree._last_expiry_sweep = float(state["last_expiry_sweep"])
        return tree

    def _variance_inflation(self) -> Optional[np.ndarray]:
        """Squared kernel bandwidth added to directory-entry Gaussians.

        A directory entry summarises a subtree of kernel estimators; matching
        the first two moments of that kernel mixture means its variance is the
        cluster-feature variance *plus* the kernel variance.  This keeps every
        frontier a proper smoothed density even for entries over few objects.
        """
        if self._bandwidth is None:
            return None
        return self._bandwidth ** 2

    def _cache_key(self) -> Tuple:
        """Key under which packed query parameters stay valid.

        Decayed trees add the logical time: mixture weights age as the clock
        advances, so packings are only shared between queries at the same
        "now" (the stream driver advances time once per micro-batch, which
        keeps the sharing of PR 1/2 intact within a batch).
        """
        if self.clock.enabled:
            return (self.index.version, self._bandwidth_epoch, self.clock.now)
        return (self.index.version, self._bandwidth_epoch)

    def _sync_decay(self) -> None:
        """Age all stored summaries to ``clock.now`` before they are read.

        Lazily memoised per (structure version, logical time): between two
        model/time changes the O(n) aging walk runs at most once, mirroring
        the existing per-version packing rebuilds.  No-op without decay.
        """
        if not self.clock.enabled:
            return
        key = (self.index.version, self.clock.now)
        if self._decay_sync_key == key:
            return
        self.index.decay_entries_to(self.clock.now)
        self._decay_sync_key = key

    @property
    def prior_weight(self) -> float:
        """Mass of this class for the Bayes prior.

        The stored object count for undecayed trees; the decayed total weight
        at the current logical time otherwise.  Because every class decays by
        the same global factor, priors between classes shift only when data
        arrives or expires — never from pure time passage.
        """
        if not self.clock.enabled:
            return float(len(self.index))
        return self._stats.weight(self.clock.now)

    # -- queries ---------------------------------------------------------------------------------
    def root_batch_params(self) -> _BatchParams:
        """Packed ``(means, scales, kinds, n_objects)`` of the root entries.

        Cached per (index structure, bandwidth epoch): all frontiers opened
        between two model updates share one packing of the root model, which
        the batch classification driver combines with a single vectorised
        evaluation for a whole chunk of queries.
        """
        self._sync_decay()
        key = self._cache_key()
        cached = self._root_params_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        params = _entry_batch_params(
            self.root.entries, self._variance_inflation(), self._bandwidth
        )
        self._root_params_cache = (key, params)
        return params

    def frontier(
        self,
        query: Sequence[float] | np.ndarray,
        root_log_densities: Optional[np.ndarray] = None,
    ) -> Frontier:
        """Anytime probability density query state, initialised at the root model.

        ``root_log_densities`` optionally carries this query's precomputed
        unweighted log densities for the packed root entries (one row of the
        batch driver's shared evaluation).
        """
        if self.n_objects == 0:
            raise ValueError("cannot query an empty Bayes tree")
        self._sync_decay()
        query = np.asarray(query, dtype=float)
        if query.shape != (self.dimension,):
            raise ValueError(f"query must have shape ({self.dimension},)")
        return Frontier(
            self.root.entries,
            root_level=self.root.level,
            query=query,
            variance_inflation=self._variance_inflation(),
            leaf_bandwidth=self._bandwidth,
            root_params=self.root_batch_params(),
            root_log_densities=root_log_densities,
        )

    def leaf_arrays(self) -> _BatchParams:
        """Packed ``(means, scales, kinds, log_weights)`` over all leaf entries.

        The arrays back the fully-refined (full kernel density estimate) batch
        evaluation path.  They are maintained incrementally: the means are a
        view of the amortised-append leaf buffer (rows in insertion order),
        and — because every stored kernel shares the tree's epoch-tagged
        bandwidth — the scales are an O(1) broadcast of the current bandwidth
        instead of ``n`` stamped copies.  A streamed insert therefore patches
        this packing in O(d) rather than invalidating it wholesale.

        Entries carrying explicit per-entry parameters are detected by an
        O(n) verification scan when the packing is (re)built (an already-O(n)
        operation) and force the exact per-entry path; stamping entries
        *after* a packing was cached is invisible until the next model change
        (external mutation carries no invalidation signal).  Inserts stay
        O(d): the scan only runs when the packing is actually consumed.
        """
        if self.n_objects == 0:
            raise ValueError("cannot pack leaf arrays of an empty Bayes tree")
        self._sync_decay()
        if self._leaf_means.size != len(self.index):
            # The index was mutated without going through insert()/adopt_index
            # (e.g. direct index manipulation in tests); fall back to a rebuild.
            self.recompute_statistics()
        key = self._cache_key()
        cached = self._leaf_arrays_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        # The broadcast fast path assumes every kernel shares the tree's
        # bandwidth and kernel family.  Entries stamped with explicit
        # per-entry parameters (which the frontier path honours) force the
        # exact per-entry packing so both full-model paths stay equivalent.
        shared = all(
            entry.is_tree_managed(self.config.kernel)
            for entry in self.index.iter_leaf_entries()
        )
        if shared:
            means = self._leaf_means.view
            count = means.shape[0]
            if self.config.kernel == "epanechnikov":
                scales = np.broadcast_to(self._bandwidth, (count, self.dimension))
                kind = EPANECHNIKOV_KIND
            else:
                scales = np.broadcast_to(self._bandwidth ** 2, (count, self.dimension))
                kind = GAUSSIAN_KIND
            kinds = np.full(count, kind, dtype=np.int8)
            if self.clock.enabled:
                # Decayed mixture weights, derived in one vectorised
                # expression from the immutable insertion timestamps:
                # ln w_i = -lambda * ln(2) * (now - t_i), normalised so the
                # packed model stays a proper (weighted) density.
                raw = (LOG_HALF * self.clock.decay_rate) * (
                    self.clock.now - self._leaf_means.times_view
                )
                log_weights = raw - logsumexp(raw)
            else:
                log_weights = np.full(count, -math.log(count))
            arrays = (means, scales, kinds, log_weights)
        else:
            entries = list(self.index.iter_leaf_entries())
            means, scales, kinds, n_objects = _entry_batch_params(
                entries, None, self._bandwidth
            )
            log_weights = np.log(n_objects) - math.log(float(n_objects.sum()))
            arrays = (means, scales, kinds, log_weights)
        self._leaf_arrays_cache = (key, arrays)
        return arrays

    def log_density_batch(self, queries: np.ndarray) -> np.ndarray:
        """Full-model log densities for a batch of queries, fully vectorised.

        Equivalent to refining a frontier per query until no directory entries
        remain, but evaluates the complete kernel model with one batched call
        over the packed leaf arrays — the fast path of
        :meth:`AnytimeBayesClassifier.predict_batch` with an unlimited budget.
        """
        queries = np.asarray(queries, dtype=float)
        single = queries.ndim == 1
        queries = np.atleast_2d(queries)
        if queries.shape[1] != self.dimension:
            raise ValueError(f"queries must have shape (m, {self.dimension})")
        means, scales, kinds, log_weights = self.leaf_arrays()
        logs = component_log_densities(queries, means, scales, kinds)
        result = logsumexp(logs + log_weights[None, :], axis=1)
        return result[0] if single else result

    def density_batch(self, queries: np.ndarray) -> np.ndarray:
        """Linear-space counterpart of :meth:`log_density_batch`."""
        # Deliberate linear-space public API boundary: the full log-space
        # density is computed first and only exponentiated on return
        # (callers who need underflow safety use the log form directly).
        return np.exp(self.log_density_batch(queries))  # reprolint: disable=RL001 -- linear-space API boundary

    def density(self, query: Sequence[float] | np.ndarray, nodes: Optional[int] = None) -> float:
        """Density estimate after reading ``nodes`` additional nodes (all if None).

        ``nodes=None`` descends the complete tree and therefore returns the
        full kernel density estimate; ``nodes=0`` evaluates the root model.
        """
        from .descent import GlobalBestDescent

        frontier = self.frontier(query)
        frontier.refine_fully(GlobalBestDescent(), max_nodes=nodes)
        return frontier.density

    def full_model_density(self, query: Sequence[float] | np.ndarray) -> float:
        """Exact kernel density estimate (reads every node; the infinite-time model)."""
        return self.density(query, nodes=None)

    def level_model_density(self, query: Sequence[float] | np.ndarray, level: int) -> float:
        """Density of the complete model stored at a single tree level.

        Level ``self.root.level`` is the coarsest model (the root entries),
        level 0 evaluates all leaf entries (the kernel model).  Used in tests
        to verify that "each level of the tree stores ... a complete model of
        the entire data".
        """
        query = np.asarray(query, dtype=float)
        if not (0 <= level <= self.root.level):
            raise ValueError(f"level must be between 0 and {self.root.level}")
        self._sync_decay()
        entries: List[AnyEntry] = []
        for node in self.index.iter_nodes():
            if node.level == level:
                entries.extend(node.entries)
        return pdq(
            query,
            entries,
            variance_inflation=self._variance_inflation(),
            leaf_bandwidth=self._bandwidth,
        )
