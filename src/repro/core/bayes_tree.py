"""The Bayes tree: an R*-tree storing a hierarchy of Gaussian mixture models.

Paper §2.2: the observations (kernel estimators) are stored at leaf level, the
directory on top provides "a hierarchy of node entries, each of which is a
Gaussian that represents the entire subtree below it".  Every level — and more
generally every frontier — is a complete mixture model of the training data of
one class, which is what enables anytime probability density queries.

The class below wraps the index substrate with:

* training (iterative insertion, the baseline the bulk loaders are compared
  against, and incremental online learning of new objects),
* kernel bandwidth management (Silverman's rule over the class's training
  data),
* frontier creation for anytime probability density queries.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..index.entry import DirectoryEntry, LeafEntry
from ..index.node import Node
from ..index.rstar import RStarTree
from ..stats.gaussian import logsumexp
from ..stats.kernel import silverman_bandwidth
from .config import BayesTreeConfig
from .frontier import Frontier, _entry_batch_params, component_log_densities, pdq

__all__ = ["BayesTree"]


class BayesTree:
    """Hierarchical mixture model over the training objects of a single class."""

    def __init__(self, dimension: int, config: Optional[BayesTreeConfig] = None) -> None:
        self.config = config or BayesTreeConfig()
        self.dimension = dimension
        self.index = RStarTree(dimension=dimension, params=self.config.tree)
        self._bandwidth: Optional[np.ndarray] = None
        self._training_points: list[np.ndarray] = []
        self._leaf_arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None

    # -- basic properties -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.index)

    @property
    def n_objects(self) -> int:
        """Number of stored observations."""
        return len(self.index)

    @property
    def bandwidth(self) -> Optional[np.ndarray]:
        """Current kernel bandwidth vector (None before any training data)."""
        return self._bandwidth

    @property
    def root(self) -> Node:
        return self.index.root

    def node_count(self) -> int:
        return self.index.node_count()

    def height(self) -> int:
        return self.index.height

    def validate(self, enforce_fanout: bool = True, require_balance: bool = True) -> None:
        """Check the structural invariants of the underlying index."""
        self.index.validate(enforce_fanout=enforce_fanout, require_balance=require_balance)

    # -- training ----------------------------------------------------------------------------
    def fit(self, points: np.ndarray, label: Optional[object] = None) -> "BayesTree":
        """Train from scratch by iterative insertion (the paper's baseline).

        Bulk-loaded trees are built by the strategies in ``repro.bulkload``
        and attached via :meth:`adopt_index` instead.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(f"points must be an (n, {self.dimension}) array")
        for point in points:
            self.index.insert(point, label=label, kernel=self.config.kernel)
            self._training_points.append(np.asarray(point, dtype=float))
        self._refresh_bandwidth()
        return self

    def insert(self, point: Sequence[float] | np.ndarray, label: Optional[object] = None) -> None:
        """Incremental online learning of a single new training object.

        The bandwidth is recomputed from the updated training set, keeping the
        kernel model consistent with the paper's data-independent rule.
        """
        point = np.asarray(point, dtype=float)
        self.index.insert(point, label=label, kernel=self.config.kernel)
        self._training_points.append(point)
        self._refresh_bandwidth()

    def adopt_index(self, index: RStarTree) -> "BayesTree":
        """Replace the underlying index with a bulk-loaded one."""
        if index.dimension != self.dimension:
            raise ValueError("index dimensionality does not match the Bayes tree")
        self.index = index
        self._training_points = [entry.point for entry in index.iter_leaf_entries()]
        self._refresh_bandwidth()
        return self

    def _refresh_bandwidth(self) -> None:
        self._leaf_arrays = None
        if not self._training_points:
            self._bandwidth = None
            return
        points = np.asarray(self._training_points, dtype=float)
        if points.shape[0] == 1:
            # A single observation has no spread; fall back to unit bandwidth.
            bandwidth = np.ones(self.dimension)
        else:
            bandwidth = silverman_bandwidth(points)
        if self.config.kernel == "epanechnikov":
            # Silverman's rule targets the Gaussian kernel; rescale by the
            # ratio of canonical bandwidths (the Epanechnikov kernel needs a
            # ~2.2x wider window for the same amount of smoothing).
            bandwidth = bandwidth * 2.214
        bandwidth = bandwidth * self.config.bandwidth_scale
        self._bandwidth = bandwidth
        for entry in self.index.iter_leaf_entries():
            entry.bandwidth = bandwidth
            entry.kernel = self.config.kernel

    def _variance_inflation(self) -> Optional[np.ndarray]:
        """Squared kernel bandwidth added to directory-entry Gaussians.

        A directory entry summarises a subtree of kernel estimators; matching
        the first two moments of that kernel mixture means its variance is the
        cluster-feature variance *plus* the kernel variance.  This keeps every
        frontier a proper smoothed density even for entries over few objects.
        """
        if self._bandwidth is None:
            return None
        return self._bandwidth ** 2

    # -- queries ---------------------------------------------------------------------------------
    def frontier(self, query: Sequence[float] | np.ndarray) -> Frontier:
        """Anytime probability density query state, initialised at the root model."""
        if self.n_objects == 0:
            raise ValueError("cannot query an empty Bayes tree")
        query = np.asarray(query, dtype=float)
        if query.shape != (self.dimension,):
            raise ValueError(f"query must have shape ({self.dimension},)")
        return Frontier(
            self.root.entries,
            root_level=self.root.level,
            query=query,
            variance_inflation=self._variance_inflation(),
        )

    def leaf_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Packed ``(means, scales, kinds, log_weights)`` over all leaf entries.

        The arrays back the fully-refined (full kernel density estimate) batch
        evaluation path; they are cached and invalidated whenever the training
        set or the bandwidth changes.
        """
        if self._leaf_arrays is None:
            entries = list(self.index.iter_leaf_entries())
            if not entries:
                raise ValueError("cannot pack leaf arrays of an empty Bayes tree")
            means, scales, kinds, n_objects = _entry_batch_params(entries, None)
            log_weights = np.log(n_objects) - math.log(float(n_objects.sum()))
            self._leaf_arrays = (means, scales, kinds, log_weights)
        return self._leaf_arrays

    def log_density_batch(self, queries: np.ndarray) -> np.ndarray:
        """Full-model log densities for a batch of queries, fully vectorised.

        Equivalent to refining a frontier per query until no directory entries
        remain, but evaluates the complete kernel model with one batched call
        over the packed leaf arrays — the fast path of
        :meth:`AnytimeBayesClassifier.predict_batch` with an unlimited budget.
        """
        queries = np.asarray(queries, dtype=float)
        single = queries.ndim == 1
        queries = np.atleast_2d(queries)
        if queries.shape[1] != self.dimension:
            raise ValueError(f"queries must have shape (m, {self.dimension})")
        means, scales, kinds, log_weights = self.leaf_arrays()
        logs = component_log_densities(queries, means, scales, kinds)
        result = logsumexp(logs + log_weights[None, :], axis=1)
        return result[0] if single else result

    def density_batch(self, queries: np.ndarray) -> np.ndarray:
        """Linear-space counterpart of :meth:`log_density_batch`."""
        return np.exp(self.log_density_batch(queries))

    def density(self, query: Sequence[float] | np.ndarray, nodes: Optional[int] = None) -> float:
        """Density estimate after reading ``nodes`` additional nodes (all if None).

        ``nodes=None`` descends the complete tree and therefore returns the
        full kernel density estimate; ``nodes=0`` evaluates the root model.
        """
        from .descent import GlobalBestDescent

        frontier = self.frontier(query)
        frontier.refine_fully(GlobalBestDescent(), max_nodes=nodes)
        return frontier.density

    def full_model_density(self, query: Sequence[float] | np.ndarray) -> float:
        """Exact kernel density estimate (reads every node; the infinite-time model)."""
        return self.density(query, nodes=None)

    def level_model_density(self, query: Sequence[float] | np.ndarray, level: int) -> float:
        """Density of the complete model stored at a single tree level.

        Level ``self.root.level`` is the coarsest model (the root entries),
        level 0 evaluates all leaf entries (the kernel model).  Used in tests
        to verify that "each level of the tree stores ... a complete model of
        the entire data".
        """
        query = np.asarray(query, dtype=float)
        if not (0 <= level <= self.root.level):
            raise ValueError(f"level must be between 0 and {self.root.level}")
        entries = []
        for node in self.index.iter_nodes():
            if node.level == level:
                entries.extend(node.entries)
        return pdq(query, entries, variance_inflation=self._variance_inflation())
