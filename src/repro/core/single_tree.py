"""Single-tree multi-class Bayes tree (paper §4.1, structural modification).

Instead of one Bayes tree per class, the complete training data is stored in a
single tree and "the entry structure is modified such that information about
the individual classes can still be obtained".  We realise the modification by
attaching a per-class cluster feature to every directory entry, so a single
descent refines the models of *all* classes in parallel — the speed-up the
paper anticipates.

The per-class statistics are computed in a bottom-up pass after the tree is
built (and recomputed after online insertions), which keeps the index
substrate untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from ..index.cluster_feature import ClusterFeature
from ..index.entry import DirectoryEntry, LeafEntry
from ..index.node import AnyEntry, Node
from .bayes_tree import BayesTree
from .config import BayesTreeConfig
from .descent import DescentStrategy, make_descent_strategy

__all__ = ["SingleTreeAnytimeClassifier"]


@dataclass
class _ClassAwareItem:
    """Frontier item of the single-tree classifier with per-class contributions."""

    entry: AnyEntry
    level: int
    order: int
    contributions: Dict[Hashable, float]

    @property
    def is_refinable(self) -> bool:
        return isinstance(self.entry, DirectoryEntry)

    @property
    def contribution(self) -> float:
        """Total weighted density (used by the global-best descent measure)."""
        return float(sum(self.contributions.values()))

    @property
    def log_contribution(self) -> float:
        """Log of the total weighted density (shared descent-strategy interface)."""
        total = self.contribution
        return math.log(total) if total > 0 else float("-inf")


class SingleTreeAnytimeClassifier:
    """Anytime Bayes classifier storing all classes in one Bayes tree."""

    def __init__(
        self,
        config: Optional[BayesTreeConfig] = None,
        descent: str | DescentStrategy = "glo",
    ) -> None:
        self.config = config or BayesTreeConfig()
        self.descent = descent if isinstance(descent, DescentStrategy) else make_descent_strategy(descent)
        self.tree: Optional[BayesTree] = None
        self.priors: Dict[Hashable, float] = {}
        self._class_features: Dict[int, Dict[Hashable, ClusterFeature]] = {}
        self._total_objects = 0

    # -- training ---------------------------------------------------------------------------------
    @property
    def classes(self) -> List[Hashable]:
        return sorted(self.priors.keys(), key=repr)

    @property
    def is_fitted(self) -> bool:
        return self.tree is not None and self._total_objects > 0

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "SingleTreeAnytimeClassifier":
        """Build one tree over the complete training set by iterative insertion."""
        points = np.asarray(points, dtype=float)
        labels = list(labels)
        if points.ndim != 2 or len(labels) != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        self.tree = BayesTree(dimension=points.shape[1], config=self.config)
        for point, label in zip(points, labels):
            self.tree.insert(point, label=label)
        self._rebuild_class_statistics()
        return self

    def partial_fit(self, point: Sequence[float] | np.ndarray, label: Hashable) -> None:
        """Online insertion of a new labelled object."""
        point = np.asarray(point, dtype=float)
        if self.tree is None:
            self.tree = BayesTree(dimension=point.shape[0], config=self.config)
        self.tree.insert(point, label=label)
        self._rebuild_class_statistics()

    def _rebuild_class_statistics(self) -> None:
        """Bottom-up pass computing per-class cluster features for every entry."""
        assert self.tree is not None
        self._class_features = {}
        counts: Dict[Hashable, float] = {}
        self._collect_node(self.tree.root, counts)
        self._total_objects = int(sum(counts.values()))
        if self._total_objects:
            self.priors = {label: count / self._total_objects for label, count in counts.items()}
        else:
            self.priors = {}

    def _collect_node(self, node: Node, counts: Dict[Hashable, float]) -> Dict[Hashable, ClusterFeature]:
        """Return (and cache) the per-class CFs of every entry in ``node``."""
        node_features: Dict[Hashable, ClusterFeature] = {}
        for entry in node.entries:
            if isinstance(entry, LeafEntry):
                feature = ClusterFeature.from_point(entry.point)
                entry_features = {entry.label: feature}
                counts[entry.label] = counts.get(entry.label, 0.0) + 1.0
            else:
                child_features = self._collect_node(entry.child, counts)
                entry_features = child_features
            self._class_features[id(entry)] = entry_features
            for label, feature in entry_features.items():
                if label in node_features:
                    node_features[label] = node_features[label] + feature
                else:
                    node_features[label] = feature.copy()
        return node_features

    # -- per-class densities --------------------------------------------------------------------------
    def _entry_contributions(self, entry: AnyEntry, query: np.ndarray) -> Dict[Hashable, float]:
        """Weighted per-class densities contributed by one frontier entry."""
        contributions: Dict[Hashable, float] = {}
        features = self._class_features[id(entry)]
        assert self.tree is not None
        if isinstance(entry, LeafEntry):
            label = entry.label
            weight = 1.0 / self._class_count(label)
            contributions[label] = weight * entry.density(query, bandwidth=self.tree.bandwidth)
            return contributions
        bandwidth = self.tree.bandwidth
        inflation = None if bandwidth is None else bandwidth ** 2
        for label, feature in features.items():
            weight = feature.n / self._class_count(label)
            gaussian = feature.to_gaussian(weight=1.0)
            if inflation is not None:
                from ..stats.gaussian import Gaussian

                gaussian = Gaussian(
                    mean=gaussian.mean, variance=gaussian.variance + inflation, weight=1.0
                )
            contributions[label] = weight * gaussian.pdf(query)
        return contributions

    def _class_count(self, label: Hashable) -> float:
        return self.priors[label] * self._total_objects

    # -- anytime classification --------------------------------------------------------------------------
    def classify_anytime(
        self, query: Sequence[float] | np.ndarray, max_nodes: int
    ) -> "AnytimeClassification":
        """Anytime classification; one descent refines every class in parallel.

        Returns the same :class:`AnytimeClassification` record as the
        multi-tree classifier so evaluation code can treat both uniformly.
        """
        from .classifier import AnytimeClassification

        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        assert self.tree is not None
        query = np.asarray(query, dtype=float)
        root = self.tree.root
        items: List[_ClassAwareItem] = []
        order = 0
        for entry in root.entries:
            level = root.level - 1 if isinstance(entry, DirectoryEntry) else -1
            items.append(
                _ClassAwareItem(
                    entry=entry,
                    level=level,
                    order=order,
                    contributions=self._entry_contributions(entry, query),
                )
            )
            order += 1

        result = AnytimeClassification(query=query)

        def record() -> None:
            posterior: Dict[Hashable, float] = {label: 0.0 for label in self.priors}
            for item in items:
                for label, value in item.contributions.items():
                    posterior[label] += value
            posterior = {label: self.priors[label] * value for label, value in posterior.items()}
            best = max(sorted(posterior.keys(), key=repr), key=lambda label: posterior[label])
            result.predictions.append(best)
            # This engine accumulates per-class contributions in linear space,
            # so the recorded log view is derived (it matches the multi-tree
            # record contract but cannot recover values once they underflow);
            # result.posteriors is re-derived from it on access.
            result.log_posteriors.append(
                {
                    label: math.log(value) if value > 0 else -math.inf
                    for label, value in posterior.items()
                }
            )

        record()
        for _ in range(max_nodes):
            refinable = [item for item in items if item.is_refinable]
            if not refinable:
                break
            chosen = self.descent.choose(refinable, query)  # type: ignore[arg-type]
            items.remove(chosen)
            child = chosen.entry.child  # type: ignore[union-attr]
            for entry in child.entries:
                level = child.level - 1 if isinstance(entry, DirectoryEntry) else -1
                items.append(
                    _ClassAwareItem(
                        entry=entry,
                        level=level,
                        order=order,
                        contributions=self._entry_contributions(entry, query),
                    )
                )
                order += 1
            result.nodes_read += 1
            record()
        return result

    def predict(self, query: Sequence[float] | np.ndarray, node_budget: Optional[int] = None) -> Hashable:
        """Predict a single label with a given node budget (full refinement if None)."""
        if node_budget is None:
            assert self.tree is not None
            node_budget = self.tree.node_count()
        return self.classify_anytime(query, max_nodes=node_budget).final_prediction
