"""Anytime Bayesian stream classification with one Bayes tree per class.

The classifier follows the paper exactly:

* one Bayes tree is built per class (§2.2),
* the class priors are the relative class weights over the forest — the
  training-set frequencies for a never-forgetting forest, and the relative
  *decayed* class weights once an exponential ``decay_rate`` is configured
  (old observations lose their vote, so the priors track the current class
  distribution of an evolving stream),
* a query is classified with the Bayes rule over the current frontier models
  ``G(x) = argmax_c P(c) * pdq_c(x)``,
* with more time allowance the frontiers are refined one node read at a time,
  where the *qbk* improvement strategy gives the k currently most probable
  classes the right to refine "in turns" (§2.2),
* interrupting at any point yields the prediction of the current models — the
  anytime property.

All posteriors are computed and compared in **log space**
(``log P(c) + log pdq_c(x)``): in high dimensions the linear-space product
underflows to exact zero for every class, which used to degrade the argmax to
a tie-break by label repr.  ``classify_anytime_batch`` additionally advances
many queries' frontiers in lockstep so that queries reading the same tree node
share one vectorised evaluation of its children (see DESIGN.md, batch API).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..stats.gaussian import probabilities_from_log, safe_exp
from .bayes_tree import BayesTree
from .config import BayesTreeConfig, default_qbk_k
from .descent import DescentStrategy, make_descent_strategy
from .frontier import Frontier, FrontierItem, _entry_batch_params, component_log_densities

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from .flat import FlatForest

__all__ = ["AnytimeClassification", "AnytimeBayesClassifier"]

#: Queries processed per lockstep round in the budgeted predict_batch path;
#: bounds the number of simultaneously live frontiers and per-step records.
BATCH_CHUNK_QUERIES = 256


def _exp_values(log_posterior: Dict[Hashable, float]) -> Dict[Hashable, float]:
    """Linear-space view of a log-posterior dict (saturates instead of raising)."""
    return {label: safe_exp(value) for label, value in log_posterior.items()}


@dataclass
class AnytimeClassification:
    """Evolving result of an anytime classification of one query object.

    Attributes
    ----------
    query:
        The classified object.
    predictions:
        ``predictions[t]`` is the predicted label after ``t`` additional node
        reads (``predictions[0]`` uses only the root models).
    log_posteriors:
        Per-step dictionaries with the exact log-space posteriors
        ``log P(c) + log pdq_c(x)`` that drive the predictions.
    nodes_read:
        Total number of node reads performed (may be smaller than requested
        when every tree is fully refined).

    ``posteriors`` exposes the linear-space view (which may underflow to 0.0
    or saturate to inf); it is derived lazily so the classification hot path
    only records log values.
    """

    query: np.ndarray
    predictions: List[Hashable] = field(default_factory=list)
    log_posteriors: List[Dict[Hashable, float]] = field(default_factory=list)
    nodes_read: int = 0

    @property
    def posteriors(self) -> Tuple[Dict[Hashable, float], ...]:
        """Linear-space unnormalised posteriors ``P(c) * pdq_c(x)`` per step.

        A derived, read-only view (a tuple, so appending to it — the old
        mutable-field API — fails loudly instead of silently vanishing).
        """
        return tuple(_exp_values(log_posterior) for log_posterior in self.log_posteriors)

    @property
    def final_prediction(self) -> Hashable:
        """The prediction after the last node read (the anytime answer so far)."""
        return self.predictions[-1]

    def prediction_after(self, nodes: int) -> Hashable:
        """Prediction available after ``nodes`` node reads (clamped to the end)."""
        if nodes < self.nodes_read and len(self.predictions) < self.nodes_read + 1:
            raise ValueError(
                "per-step history was not recorded (record_history=False); "
                "only final_prediction is available"
            )
        index = min(nodes, len(self.predictions) - 1)
        return self.predictions[index]


class _QbkRotation:
    """Explicit bookkeeping for the qbk "in turns" rotation (paper §2.2).

    The previous implementation re-ranked the classes every step and indexed
    the fresh top-k list with a global turn counter; whenever a frontier
    exhausted or the posterior ranking reordered, classes were skipped or
    served twice in a row instead of refining "in turns".  Tracking how often
    each class has been served and always picking the least-served member of
    the current top-k (posterior rank breaking ties) restores a fair rotation
    that is robust to both.  Serve counts are clamped to one below the
    current top-k maximum, so a class entering the top-k late joins the
    rotation at parity (at most one catch-up read) instead of monopolising
    refinement until its historical count catches up.
    """

    __slots__ = ("_serves",)

    def __init__(self) -> None:
        self._serves: Dict[Hashable, int] = {}

    def serves(self, label: Hashable) -> int:
        """How often ``label`` has been granted a node read so far."""
        return self._serves.get(label, 0)

    def next(self, ranked_top: Sequence[Hashable]) -> Hashable:
        """Pick the next class from the current top-k (best-first order)."""
        if not ranked_top:
            raise ValueError("ranked_top must not be empty")
        floor = max(self._serves.get(label, 0) for label in ranked_top) - 1
        effective = [
            max(self._serves.get(label, 0), floor) for label in ranked_top
        ]
        index = min(range(len(ranked_top)), key=lambda i: (effective[i], i))
        label = ranked_top[index]
        self._serves[label] = effective[index] + 1
        return label


@dataclass
class _BatchQueryState:
    """Per-query bookkeeping of the lockstep batch classification driver."""

    frontiers: Dict[Hashable, Frontier]
    rotation: _QbkRotation
    log_posterior: Dict[Hashable, float]
    result: AnytimeClassification
    budget: int
    active: bool = True


# -- shared classification drivers -------------------------------------------------------------
#
# The anytime machinery below is deliberately model-agnostic: it only needs a
# mapping of alive per-class trees exposing ``root_batch_params()``,
# ``frontier(query, root_log_densities=...)`` and ``log_density_batch()``,
# plus the forest-wide log priors.  Both the live object-graph forest
# (:class:`AnytimeBayesClassifier`) and the compiled flat forest
# (:class:`repro.core.flat.FlatForest`) drive their classifications through
# these functions, which is what pins the two representations to hash-equal
# refinement traces — there is only one driver to diverge from.


def _posterior_argmax(posterior: Dict[Hashable, float]) -> Hashable:
    """Deterministic argmax: ties break by label ``repr`` (reproducible runs)."""
    return max(sorted(posterior.keys(), key=repr), key=lambda label: posterior[label])


def _record_step(result: AnytimeClassification, log_posterior: Dict[Hashable, float]) -> None:
    result.predictions.append(_posterior_argmax(log_posterior))
    result.log_posteriors.append(dict(log_posterior))


def _posterior_of(
    frontiers: Dict[Hashable, Frontier], log_priors: Dict[Hashable, float]
) -> Dict[Hashable, float]:
    """Unnormalised log posteriors ``log P(c) + log pdq_c(x)``."""
    return {
        label: log_priors[label] + frontier.log_density
        for label, frontier in frontiers.items()
    }


def _choose_refinement(
    frontiers: Dict[Hashable, Frontier],
    log_posterior: Dict[Hashable, float],
    k: int,
    rotation: _QbkRotation,
) -> Optional[Hashable]:
    """Pick the class whose frontier gets the next node read (qbk, §2.2)."""
    refinable = [label for label, frontier in frontiers.items() if not frontier.is_fully_refined]
    if not refinable:
        return None
    ranked = sorted(
        refinable,
        key=lambda label: (-log_posterior[label], repr(label)),
    )
    top = ranked[: max(1, min(k, len(ranked)))]
    return rotation.next(top)


def _refine_group(members: List[Tuple[_BatchQueryState, Frontier, FrontierItem]]) -> None:
    """Refine one tree node for every query in ``members`` with one evaluation.

    All members read the same node of the same class tree, so the children's
    component parameters (including the tree's variance inflation) are
    identical across the group and the children's log densities for all
    member queries form one batched call.  Compiled flat nodes carry their
    packed parameters as zero-copy column slices (``packed_params``); object
    nodes are packed here once per group.
    """
    _, first_frontier, first_item = members[0]
    child_node = first_item.entry.child  # type: ignore[union-attr]
    children = list(child_node.entries)
    if len(members) == 1 or not children:
        for _, frontier, item in members:
            frontier.refine_item(item)
        return
    params = child_node.packed_params
    if params is None:
        params = _entry_batch_params(
            children, first_frontier.variance_inflation, first_frontier.leaf_bandwidth
        )
    means, scales, kinds, _ = params
    batch = np.stack([frontier.query for _, frontier, _ in members])
    log_densities = component_log_densities(batch, means, scales, kinds)
    for row, (_, frontier, item) in enumerate(members):
        frontier.refine_item(
            item, child_log_densities=log_densities[row], child_params=params
        )


def drive_classify_anytime(
    trees: Dict[Hashable, "BayesTree"],
    log_priors: Dict[Hashable, float],
    descent: DescentStrategy,
    k: int,
    query: np.ndarray,
    max_nodes: int,
) -> AnytimeClassification:
    """Sequential anytime classification of one query over ``trees``.

    ``trees`` holds the alive (non-empty) per-class models; the caller has
    already validated the inputs.  Records the prediction after every node
    read (the x-axis of the paper's Figures 2-4).
    """
    query = np.asarray(query, dtype=float)
    frontiers = {label: tree.frontier(query) for label, tree in trees.items()}
    result = AnytimeClassification(query=query)

    log_posterior = _posterior_of(frontiers, log_priors)
    _record_step(result, log_posterior)

    rotation = _QbkRotation()
    for _ in range(max_nodes):
        label = _choose_refinement(frontiers, log_posterior, k, rotation)
        if label is None:
            break
        frontiers[label].refine(descent)
        result.nodes_read += 1
        log_posterior = _posterior_of(frontiers, log_priors)
        _record_step(result, log_posterior)
    return result


def drive_classify_anytime_batch(
    trees: Dict[Hashable, "BayesTree"],
    log_priors: Dict[Hashable, float],
    descent: DescentStrategy,
    k: int,
    queries: np.ndarray,
    budgets: np.ndarray,
    record_history: bool,
) -> List[AnytimeClassification]:
    """Lockstep batch driver over validated queries/budgets (chunked)."""
    results: List[AnytimeClassification] = []
    for start in range(0, queries.shape[0], BATCH_CHUNK_QUERIES):
        results.extend(
            _drive_batch_chunk(
                trees,
                log_priors,
                descent,
                k,
                queries[start : start + BATCH_CHUNK_QUERIES],
                budgets[start : start + BATCH_CHUNK_QUERIES],
                record_history,
            )
        )
    return results


def _drive_batch_chunk(
    trees: Dict[Hashable, "BayesTree"],
    log_priors: Dict[Hashable, float],
    descent: DescentStrategy,
    k: int,
    queries: np.ndarray,
    budgets: np.ndarray,
    record_history: bool,
) -> List[AnytimeClassification]:
    """Lockstep batch driver for one bounded chunk of queries."""
    # One packing of each class's root model and one vectorised evaluation
    # of it for the whole chunk; each frontier is seeded with its query's
    # row instead of re-evaluating the root entries per query.
    root_rows: List[Tuple[Hashable, "BayesTree", np.ndarray]] = []
    for label, tree in trees.items():
        means, scales, kinds, _ = tree.root_batch_params()
        root_rows.append(
            (label, tree, component_log_densities(queries, means, scales, kinds))
        )

    states: List[_BatchQueryState] = []
    for position, query in enumerate(queries):
        frontiers = {
            label: tree.frontier(query, root_log_densities=rows[position])
            for label, tree, rows in root_rows
        }
        result = AnytimeClassification(query=query)
        log_posterior = _posterior_of(frontiers, log_priors)
        if record_history:
            _record_step(result, log_posterior)
        states.append(
            _BatchQueryState(
                frontiers=frontiers,
                rotation=_QbkRotation(),
                log_posterior=log_posterior,
                result=result,
                budget=int(budgets[position]),
            )
        )

    while True:
        # Each active query chooses its next node read exactly as the
        # sequential driver would (qbk rotation + descent strategy).
        plans: List[Tuple[_BatchQueryState, Frontier, FrontierItem]] = []
        for state in states:
            if not state.active:
                continue
            if state.result.nodes_read >= state.budget:
                state.active = False
                continue
            label = _choose_refinement(state.frontiers, state.log_posterior, k, state.rotation)
            if label is None:
                state.active = False
                continue
            frontier = state.frontiers[label]
            item = descent.choose(frontier.refinable_items(), frontier.query)
            plans.append((state, frontier, item))
        if not plans:
            break

        # Group the planned reads by tree node: all queries reading the
        # same node share one vectorised evaluation of its children.
        groups: Dict[int, List[Tuple[_BatchQueryState, Frontier, FrontierItem]]] = {}
        for plan in plans:
            groups.setdefault(id(plan[2].entry.child), []).append(plan)
        for members in groups.values():
            _refine_group(members)

        for state, _, _ in plans:
            state.result.nodes_read += 1
            state.log_posterior = _posterior_of(state.frontiers, log_priors)
            if record_history:
                _record_step(state.result, state.log_posterior)
    if not record_history:
        for state in states:
            _record_step(state.result, state.log_posterior)
    return [state.result for state in states]


def drive_predict_full(
    trees: Dict[Hashable, "BayesTree"],
    log_priors: Dict[Hashable, float],
    queries: np.ndarray,
) -> List[Hashable]:
    """Fully-refined batch prediction straight from the packed leaf arrays."""
    labels = sorted(trees.keys(), key=repr)
    scores = np.empty((queries.shape[0], len(labels)))
    for column, label in enumerate(labels):
        scores[:, column] = log_priors[label] + trees[label].log_density_batch(queries)
    # Labels are repr-sorted and np.argmax returns the first maximum, so
    # ties break exactly like :func:`_posterior_argmax`.
    best = np.argmax(scores, axis=1)
    return [labels[index] for index in best]


def validate_batch_budgets(
    queries: np.ndarray, max_nodes: int | Sequence[int] | np.ndarray
) -> np.ndarray:
    """Normalise ``max_nodes`` into one non-negative int budget per query."""
    budgets = np.asarray(max_nodes)
    if budgets.dtype.kind not in "iu":
        # Match the sequential driver, which raises on float budgets via
        # range(max_nodes); silent truncation would under-budget queries.
        raise ValueError("max_nodes must be an integer or a sequence of integers")
    if budgets.ndim == 0:
        budgets = np.full(queries.shape[0], int(budgets))
    elif budgets.shape != (queries.shape[0],):
        raise ValueError("per-query max_nodes must have one budget per query")
    if np.any(budgets < 0):
        raise ValueError("max_nodes must be non-negative")
    return budgets


class AnytimeBayesClassifier:
    """Bayes-tree ensemble classifier (one tree per class) with anytime queries."""

    def __init__(
        self,
        config: Optional[BayesTreeConfig] = None,
        descent: str | DescentStrategy = "glo",
        qbk_k: Optional[int] = None,
    ) -> None:
        self.config = config or BayesTreeConfig()
        self.descent = descent if isinstance(descent, DescentStrategy) else make_descent_strategy(descent)
        self.qbk_k = qbk_k
        self.trees: Dict[Hashable, BayesTree] = {}
        self.dimension: Optional[int] = None
        self._priors_cache: Optional[Dict[Hashable, float]] = None
        self._log_priors_cache: Optional[Dict[Hashable, float]] = None
        #: Forest-wide logical time: every class tree's clock is kept at this
        #: value so decayed priors and per-class mixture weights are always
        #: compared at the same "now".
        self._now = 0.0

    # -- training -------------------------------------------------------------------------------
    @property
    def classes(self) -> List[Hashable]:
        """Known class labels, in insertion order (one Bayes tree each)."""
        return list(self.trees.keys())

    @property
    def n_classes(self) -> int:
        """Number of known classes (trees), including currently empty ones."""
        return len(self.trees)

    @property
    def is_fitted(self) -> bool:
        """True once at least one training object has been seen."""
        return bool(self.trees)

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "AnytimeBayesClassifier":
        """Train one Bayes tree per class by iterative insertion."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        labels = list(labels)
        if len(labels) != points.shape[0]:
            raise ValueError("labels must match the number of points")
        self.dimension = points.shape[1]
        self.trees = {}
        # A from-scratch fit starts a fresh timeline: the new trees' clocks
        # begin at 0, so the forest clock must not retain a stale "now" (a
        # lower timestamp would otherwise be silently clamped and decay
        # would never engage after a re-fit).
        self._now = 0.0
        for label in sorted(set(labels), key=repr):
            mask = np.array([l == label for l in labels])
            tree = BayesTree(dimension=self.dimension, config=self.config)
            tree.fit(points[mask], label=label)
            self.trees[label] = tree
        self._invalidate_priors()
        return self

    def set_tree(self, label: Hashable, tree: BayesTree) -> None:
        """Attach an externally built (e.g. bulk-loaded) tree for a class.

        The forest and the new tree synchronise clocks to the later of the
        two "now"s, so decayed priors across classes stay comparable.
        """
        if self.dimension is None:
            self.dimension = tree.dimension
        if tree.dimension != self.dimension:
            raise ValueError("tree dimensionality does not match the classifier")
        self.trees[label] = tree
        if tree.clock.now > self._now:
            self.advance_time(tree.clock.now)
        else:
            tree.advance_time(self._now)
        self._invalidate_priors()

    def advance_time(self, now: float) -> float:
        """Advance the forest's logical clock (drives exponential decay).

        Every class tree is moved to the same ``now`` (clamped monotone), so
        decayed priors and mixture weights across classes stay comparable.
        Aging of stored summaries is lazy — pure time passage costs
        O(#classes) — and a non-advancing call returns in O(1) (the stream
        driver advances once per chunk; the per-item ``partial_fit``
        timestamps that follow are never ahead of it).  Because advancing
        time can trigger expiry sweeps that change per-class weights, the
        prior cache is invalidated whenever the clock actually moves.
        """
        now = float(now)
        if now <= self._now:
            return self._now
        self._now = now
        for tree in self.trees.values():
            tree.advance_time(now)
        self._invalidate_priors()
        return self._now

    def partial_fit(
        self,
        point: Sequence[float] | np.ndarray,
        label: Hashable,
        timestamp: Optional[float] = None,
    ) -> None:
        """Incremental online learning from one new labelled object (stream training).

        Amortised O(d) model maintenance on top of the O(log n) index
        insertion: the class tree updates its Silverman bandwidth from running
        sufficient statistics and patches its packed leaf arrays in place
        (historically this re-ran Silverman's rule over the *full* training
        set and restamped every leaf entry — Θ(n) per insert, Θ(n²) per
        stream), and the prior cache is invalidated in O(1) and re-derived
        from the trees' (decayed) weights the next time it is read.

        ``timestamp`` advances the forest clock before learning, so the new
        kernel is stamped with its arrival time and older data keeps fading
        (ignored — a no-op — when the configured ``decay_rate`` is zero).
        """
        point = np.asarray(point, dtype=float)
        if timestamp is not None:
            self.advance_time(timestamp)
        if self.dimension is None:
            self.dimension = point.shape[0]
        if label not in self.trees:
            tree = BayesTree(dimension=self.dimension, config=self.config)
            tree.advance_time(self._now)
            self.trees[label] = tree
        self.trees[label].insert(point, label=label)
        self._invalidate_priors()

    # -- persistence ----------------------------------------------------------------------------
    def save(self, path: "str | Path") -> "Path":
        """Write a portable snapshot of the whole forest (see :mod:`repro.persist`).

        The snapshot is a versioned, pickle-free ``.npz`` container carrying
        the full decay state; :meth:`load` restores a forest with
        bit-identical predictions and training behaviour.
        """
        from ..persist import save_forest

        return save_forest(self, path)

    @classmethod
    def load(cls, path: "str | Path") -> "AnytimeBayesClassifier":
        """Restore a forest saved with :meth:`save` (bit-identical behaviour)."""
        from ..persist import load_forest

        return load_forest(path)

    def _invalidate_priors(self) -> None:
        self._priors_cache = None
        self._log_priors_cache = None

    def _rebuild_priors(self) -> None:
        total = float(sum(tree.prior_weight for tree in self.trees.values()))
        if total <= 0:
            self._priors_cache = {label: 0.0 for label in self.trees}
        else:
            self._priors_cache = {
                label: tree.prior_weight / total for label, tree in self.trees.items()
            }
        self._log_priors_cache = {
            label: math.log(prior) if prior > 0 else -math.inf
            for label, prior in self._priors_cache.items()
        }

    @property
    def priors(self) -> Dict[Hashable, float]:
        """Class priors P(c), rebuilt lazily.

        Relative class frequencies in the training data; under exponential
        decay, relative *decayed* class weights — old observations lose their
        vote, so the priors of a forest on an evolving stream track the
        current class distribution instead of the historical one.  Because
        all classes decay by the same global factor, the ratios only change
        when data arrives or expires, which is what makes the O(1)
        invalidate-on-insert caching sound under decay too.
        """
        if self._priors_cache is None:
            self._rebuild_priors()
        return self._priors_cache

    @property
    def log_priors(self) -> Dict[Hashable, float]:
        """Log class priors, rebuilt lazily alongside :attr:`priors`."""
        if self._log_priors_cache is None:
            self._rebuild_priors()
        return self._log_priors_cache

    # -- anytime classification -------------------------------------------------------------------
    def _alive_trees(self) -> Dict[Hashable, BayesTree]:
        """Class trees that still hold observations.

        A class can empty out when expiry drops its last stale kernel (class
        disappearance on an evolving stream); its tree is kept — the class
        may recur — but it cannot be queried until new data arrives.
        """
        alive = {label: tree for label, tree in self.trees.items() if tree.n_objects > 0}
        if not alive:
            raise ValueError("classifier holds no training observations (all expired)")
        return alive

    def _effective_k(self) -> int:
        if self.qbk_k is not None:
            return max(1, min(self.qbk_k, self.n_classes))
        return min(default_qbk_k(self.n_classes), self.n_classes)

    def _log_posterior(self, frontiers: Dict[Hashable, Frontier]) -> Dict[Hashable, float]:
        """Unnormalised log posteriors ``log P(c) + log pdq_c(x)``."""
        return _posterior_of(frontiers, self.log_priors)

    @staticmethod
    def _argmax(posterior: Dict[Hashable, float]) -> Hashable:
        # Deterministic tie breaking by label repr keeps experiments reproducible.
        return _posterior_argmax(posterior)

    @staticmethod
    def _record(result: AnytimeClassification, log_posterior: Dict[Hashable, float]) -> None:
        _record_step(result, log_posterior)

    def classify_anytime(
        self,
        query: Sequence[float] | np.ndarray,
        max_nodes: int,
    ) -> AnytimeClassification:
        """Classify ``query`` and record the prediction after every node read.

        ``max_nodes`` is the total number of additional node reads across all
        class trees (the unit of the x-axis in the paper's Figures 2-4).
        """
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        if max_nodes < 0:
            raise ValueError("max_nodes must be non-negative")
        return drive_classify_anytime(
            self._alive_trees(),
            self.log_priors,
            self.descent,
            self._effective_k(),
            np.asarray(query, dtype=float),
            max_nodes,
        )

    def _choose_refinement(
        self,
        frontiers: Dict[Hashable, Frontier],
        log_posterior: Dict[Hashable, float],
        k: int,
        rotation: _QbkRotation,
    ) -> Optional[Hashable]:
        """Pick the class whose frontier gets the next node read (qbk, §2.2)."""
        return _choose_refinement(frontiers, log_posterior, k, rotation)

    def _refine_one(
        self,
        frontiers: Dict[Hashable, Frontier],
        log_posterior: Dict[Hashable, float],
        k: int,
        rotation: _QbkRotation,
    ) -> Optional[Hashable]:
        """Perform one node read following the qbk improvement strategy.

        The k most probable classes (by the current log posterior) refine in
        turns, with the rotation tracked explicitly by ``rotation``; classes
        whose frontier is exhausted are skipped without disturbing the
        rotation of the remaining ones.  Returns the refined class label, or
        None when no tree can be refined any more.
        """
        label = self._choose_refinement(frontiers, log_posterior, k, rotation)
        if label is None:
            return None
        frontiers[label].refine(self.descent)
        return label

    # -- batch anytime classification --------------------------------------------------------------
    def classify_anytime_batch(
        self,
        queries: np.ndarray,
        max_nodes: int | Sequence[int] | np.ndarray,
        record_history: bool = True,
    ) -> List[AnytimeClassification]:
        """Classify many queries at once, advancing their frontiers in lockstep.

        Produces exactly the same per-query results as calling
        :meth:`classify_anytime` in a loop (each query's refinement sequence
        is independent of the others), but amortises the work: the root
        models are packed once and evaluated for a whole chunk of queries
        with one batched call per class, per round every active query
        performs one node read, the reads are grouped by tree node, and each
        node's children are evaluated against all queries in the group with a
        single batched log density call.  Queries advance in lockstep in
        chunks of ``BATCH_CHUNK_QUERIES``, bounding the number of
        simultaneously live frontier buffers for arbitrarily large batches.

        ``max_nodes`` is either one shared node budget or a per-query budget
        sequence of the same length as ``queries`` (the anytime stream driver
        classifies micro-batches whose items carry individual arrival
        budgets); a query stops refining once its own budget is exhausted.

        ``record_history=False`` records only the final step of each query
        (``final_prediction`` and the last posteriors) instead of the full
        per-node-read trace — the budgeted :meth:`predict_batch` path uses it
        to skip the per-step record allocations entirely.
        """
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("queries must be an (m, d) array")
        budgets = validate_batch_budgets(queries, max_nodes)
        return drive_classify_anytime_batch(
            self._alive_trees(),
            self.log_priors,
            self.descent,
            self._effective_k(),
            queries,
            budgets,
            record_history,
        )

    #: Shared with the module-level batch driver; kept addressable on the
    #: class for white-box tests and subclass instrumentation.
    _refine_group = staticmethod(_refine_group)

    # -- convenience prediction APIs -----------------------------------------------------------------
    def predict(self, query: Sequence[float] | np.ndarray, node_budget: Optional[int] = None) -> Hashable:
        """Predict a single label with a given node budget (full refinement if None)."""
        if node_budget is None:
            node_budget = sum(tree.node_count() for tree in self.trees.values())
        return self.classify_anytime(query, max_nodes=node_budget).final_prediction

    def predict_batch(
        self, queries: np.ndarray, node_budget: Optional[int] = None
    ) -> List[Hashable]:
        """Predict labels for several queries with the same node budget.

        ``node_budget=None`` (full refinement) takes the flat vectorised path:
        every class's complete kernel model is evaluated for all queries with
        one batched call over the tree's packed leaf arrays, skipping the tree
        descent entirely.  A finite budget goes through
        :meth:`classify_anytime_batch`.
        """
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("queries must be an (m, d) array")
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        if node_budget is None:
            return self._predict_batch_full(queries)
        results = self.classify_anytime_batch(
            queries, max_nodes=node_budget, record_history=False
        )
        return [result.final_prediction for result in results]

    def _predict_batch_full(self, queries: np.ndarray) -> List[Hashable]:
        """Fully-refined batch prediction straight from the leaf arrays."""
        return drive_predict_full(self._alive_trees(), self.log_priors, queries)

    # -- flat compilation ---------------------------------------------------------------------------
    def compile_flat(self) -> "FlatForest":
        """Compile the live forest into its flat columnar twin.

        Returns a :class:`repro.core.flat.FlatForest` — the same forest as
        contiguous pre-order SoA columns, read-only and trace-hash-identical
        on every prediction API (see :mod:`repro.core.flat`).  The compiled
        forest captures the decayed state at the current logical time and
        does not follow subsequent training.
        """
        from .flat import FlatForest

        return FlatForest.from_classifier(self)

    def posterior_probabilities(
        self, query: Sequence[float] | np.ndarray, node_budget: Optional[int] = None
    ) -> Dict[Hashable, float]:
        """Normalised posterior P(c | x) after spending the given node budget.

        Normalisation happens in log space (log-sum-exp), so queries far from
        the training data yield exact posteriors instead of the historical
        all-zero underflow; the uniform fallback only remains for densities
        that are exactly zero (e.g. outside every Epanechnikov support).
        """
        if node_budget is None:
            node_budget = sum(tree.node_count() for tree in self.trees.values())
        result = self.classify_anytime(query, max_nodes=node_budget)
        log_raw = result.log_posteriors[-1]
        labels = list(log_raw.keys())
        values = np.array([log_raw[label] for label in labels])
        if not np.any(np.isfinite(values)):
            return {label: 1.0 / len(labels) for label in labels}
        normalised = probabilities_from_log(values)
        return {label: float(p) for label, p in zip(labels, normalised)}
