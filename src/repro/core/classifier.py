"""Anytime Bayesian stream classification with one Bayes tree per class.

The classifier follows the paper exactly:

* one Bayes tree is built per class (§2.2),
* the class priors are the relative class frequencies in the training data,
* a query is classified with the Bayes rule over the current frontier models
  ``G(x) = argmax_c P(c) * pdq_c(x)``,
* with more time allowance the frontiers are refined one node read at a time,
  where the *qbk* improvement strategy gives the k currently most probable
  classes the right to refine "in turns" (§2.2),
* interrupting at any point yields the prediction of the current models — the
  anytime property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from .bayes_tree import BayesTree
from .config import BayesTreeConfig, default_qbk_k
from .descent import DescentStrategy, GlobalBestDescent, make_descent_strategy
from .frontier import Frontier

__all__ = ["AnytimeClassification", "AnytimeBayesClassifier"]


@dataclass
class AnytimeClassification:
    """Evolving result of an anytime classification of one query object.

    Attributes
    ----------
    query:
        The classified object.
    predictions:
        ``predictions[t]`` is the predicted label after ``t`` additional node
        reads (``predictions[0]`` uses only the root models).
    posteriors:
        Per-step dictionaries mapping class label to (unnormalised) posterior
        ``P(c) * pdq_c(x)``.
    nodes_read:
        Total number of node reads performed (may be smaller than requested
        when every tree is fully refined).
    """

    query: np.ndarray
    predictions: List[Hashable] = field(default_factory=list)
    posteriors: List[Dict[Hashable, float]] = field(default_factory=list)
    nodes_read: int = 0

    @property
    def final_prediction(self) -> Hashable:
        return self.predictions[-1]

    def prediction_after(self, nodes: int) -> Hashable:
        """Prediction available after ``nodes`` node reads (clamped to the end)."""
        index = min(nodes, len(self.predictions) - 1)
        return self.predictions[index]


class AnytimeBayesClassifier:
    """Bayes-tree ensemble classifier (one tree per class) with anytime queries."""

    def __init__(
        self,
        config: Optional[BayesTreeConfig] = None,
        descent: str | DescentStrategy = "glo",
        qbk_k: Optional[int] = None,
    ) -> None:
        self.config = config or BayesTreeConfig()
        self.descent = descent if isinstance(descent, DescentStrategy) else make_descent_strategy(descent)
        self.qbk_k = qbk_k
        self.trees: Dict[Hashable, BayesTree] = {}
        self.priors: Dict[Hashable, float] = {}
        self.dimension: Optional[int] = None

    # -- training -------------------------------------------------------------------------------
    @property
    def classes(self) -> List[Hashable]:
        return list(self.trees.keys())

    @property
    def n_classes(self) -> int:
        return len(self.trees)

    @property
    def is_fitted(self) -> bool:
        return bool(self.trees)

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "AnytimeBayesClassifier":
        """Train one Bayes tree per class by iterative insertion."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        labels = list(labels)
        if len(labels) != points.shape[0]:
            raise ValueError("labels must match the number of points")
        self.dimension = points.shape[1]
        self.trees = {}
        for label in sorted(set(labels), key=repr):
            mask = np.array([l == label for l in labels])
            tree = BayesTree(dimension=self.dimension, config=self.config)
            tree.fit(points[mask], label=label)
            self.trees[label] = tree
        self._refresh_priors()
        return self

    def set_tree(self, label: Hashable, tree: BayesTree) -> None:
        """Attach an externally built (e.g. bulk-loaded) tree for a class."""
        if self.dimension is None:
            self.dimension = tree.dimension
        if tree.dimension != self.dimension:
            raise ValueError("tree dimensionality does not match the classifier")
        self.trees[label] = tree
        self._refresh_priors()

    def partial_fit(self, point: Sequence[float] | np.ndarray, label: Hashable) -> None:
        """Incremental online learning from one new labelled object (stream training)."""
        point = np.asarray(point, dtype=float)
        if self.dimension is None:
            self.dimension = point.shape[0]
        if label not in self.trees:
            self.trees[label] = BayesTree(dimension=self.dimension, config=self.config)
        self.trees[label].insert(point, label=label)
        self._refresh_priors()

    def _refresh_priors(self) -> None:
        total = float(sum(tree.n_objects for tree in self.trees.values()))
        if total <= 0:
            self.priors = {label: 0.0 for label in self.trees}
            return
        self.priors = {label: tree.n_objects / total for label, tree in self.trees.items()}

    # -- anytime classification -------------------------------------------------------------------
    def _effective_k(self) -> int:
        if self.qbk_k is not None:
            return max(1, min(self.qbk_k, self.n_classes))
        return min(default_qbk_k(self.n_classes), self.n_classes)

    def _posterior(self, frontiers: Dict[Hashable, Frontier]) -> Dict[Hashable, float]:
        return {
            label: self.priors[label] * frontier.density
            for label, frontier in frontiers.items()
        }

    @staticmethod
    def _argmax(posterior: Dict[Hashable, float]) -> Hashable:
        # Deterministic tie breaking by label repr keeps experiments reproducible.
        return max(sorted(posterior.keys(), key=repr), key=lambda label: posterior[label])

    def classify_anytime(
        self,
        query: Sequence[float] | np.ndarray,
        max_nodes: int,
    ) -> AnytimeClassification:
        """Classify ``query`` and record the prediction after every node read.

        ``max_nodes`` is the total number of additional node reads across all
        class trees (the unit of the x-axis in the paper's Figures 2-4).
        """
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        if max_nodes < 0:
            raise ValueError("max_nodes must be non-negative")
        query = np.asarray(query, dtype=float)
        frontiers = {label: tree.frontier(query) for label, tree in self.trees.items()}
        result = AnytimeClassification(query=query)

        posterior = self._posterior(frontiers)
        result.predictions.append(self._argmax(posterior))
        result.posteriors.append(dict(posterior))

        k = self._effective_k()
        turn = 0
        for _ in range(max_nodes):
            refined = self._refine_one(frontiers, posterior, k, turn)
            if refined is None:
                break
            turn += 1
            result.nodes_read += 1
            posterior = self._posterior(frontiers)
            result.predictions.append(self._argmax(posterior))
            result.posteriors.append(dict(posterior))
        return result

    def _refine_one(
        self,
        frontiers: Dict[Hashable, Frontier],
        posterior: Dict[Hashable, float],
        k: int,
        turn: int,
    ) -> Optional[Hashable]:
        """Perform one node read following the qbk improvement strategy.

        The k most probable classes (by the current posterior) refine in
        turns; classes whose frontier is exhausted are skipped.  Returns the
        refined class label, or None when no tree can be refined any more.
        """
        refinable = [label for label, frontier in frontiers.items() if not frontier.is_fully_refined]
        if not refinable:
            return None
        ranked = sorted(
            refinable,
            key=lambda label: (-posterior[label], repr(label)),
        )
        top = ranked[: max(1, min(k, len(ranked)))]
        label = top[turn % len(top)]
        frontiers[label].refine(self.descent)
        return label

    # -- convenience prediction APIs -----------------------------------------------------------------
    def predict(self, query: Sequence[float] | np.ndarray, node_budget: Optional[int] = None) -> Hashable:
        """Predict a single label with a given node budget (full refinement if None)."""
        if node_budget is None:
            node_budget = sum(tree.node_count() for tree in self.trees.values())
        return self.classify_anytime(query, max_nodes=node_budget).final_prediction

    def predict_batch(
        self, queries: np.ndarray, node_budget: Optional[int] = None
    ) -> List[Hashable]:
        """Predict labels for several queries with the same node budget."""
        queries = np.asarray(queries, dtype=float)
        return [self.predict(query, node_budget) for query in queries]

    def posterior_probabilities(
        self, query: Sequence[float] | np.ndarray, node_budget: Optional[int] = None
    ) -> Dict[Hashable, float]:
        """Normalised posterior P(c | x) after spending the given node budget."""
        if node_budget is None:
            node_budget = sum(tree.node_count() for tree in self.trees.values())
        result = self.classify_anytime(query, max_nodes=node_budget)
        raw = result.posteriors[-1]
        total = sum(raw.values())
        if total <= 0:
            return {label: 1.0 / len(raw) for label in raw}
        return {label: value / total for label, value in raw.items()}
