"""Flat pre/post-order forest encoding (read-optimised columnar twin).

The live forest is a Python object graph: nodes hold entry lists, directory
entries hold child pointers, and every refinement step chases those pointers
and re-packs the children's mixture parameters into arrays.  This module
compiles each :class:`~repro.core.bayes_tree.BayesTree` into a **FlatTree** —
a handful of contiguous structure-of-arrays numpy columns keyed by *pre-order
entry slot* — and the forest into a :class:`FlatForest` of such trees.

The encoding borrows the XPath-accelerator idea: every entry records, besides
its mixture component (mean / scale / kind / decayed weight), the half-open
slot interval ``[child_start, post)`` covering its entire descendant block.
Because slots are assigned pre-order with each node's entries contiguous and
each subtree contiguous, the two structural operations of the query engine
become array slices:

* "expand this frontier item" is ``columns[child_start:child_end]`` — the
  packed parameters of the read node's children, no pointer walk, no
  per-entry packing loop;
* "how large / deep / balanced is this subtree" is a range reduction over
  ``[child_start, post)`` — the cheap structure-health metrics reported by
  the serving stats.

Equivalence is the design contract, not an aspiration: the flat columns are
written by the *same* packing routine the object-graph query path uses
(:func:`repro.core.frontier._entry_batch_params`, after the same decay sync),
and classification drives through the *same* module-level drivers in
:mod:`repro.core.classifier`.  The per-entry parameters, the reduction
orders, and hence every float on the query path are identical bit for bit —
``classification_trace_hash`` over the two paths must agree, and the test
suite pins that (including under exponential decay).

A FlatTree is a read-only snapshot of the decayed state at compile time: it
does not follow subsequent training and its mixture weights are frozen at the
compile-time logical "now".  That is exactly the serving contract — snapshot,
compile, share — and what makes the columns safe to place in shared memory
(:mod:`repro.serving.shared_mem`) or to memory-map from disk
(:mod:`repro.persist.snapshot`): every worker reads, nobody writes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..index.mbr import MBR
from ..stats.gaussian import logsumexp
from .classifier import (
    AnytimeClassification,
    drive_classify_anytime,
    drive_classify_anytime_batch,
    drive_predict_full,
    validate_batch_budgets,
)
from .config import default_qbk_k
from .descent import DescentStrategy, make_descent_strategy
from .frontier import Frontier, _entry_batch_params

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..index.node import Node

__all__ = ["FlatTree", "FlatForest"]

_BatchParams = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: Integer metadata slots of a FlatTree (``meta_i`` column), in order.
_META_I_FIELDS = (
    "n_entries",
    "n_leaf",
    "root_count",
    "root_level",
    "n_nodes",
    "n_leaf_nodes",
    "height",
    "leaf_capacity",
    "shared_scales",
    "has_bandwidth",
)

#: Float metadata slots of a FlatTree (``meta_f`` column), in order.
_META_F_FIELDS = ("clock_now", "prior_weight", "stats_n")

#: Per-tree column names a serialized FlatTree consists of (fixed order).
TREE_COLUMNS = (
    "entry_means",
    "entry_scales",
    "entry_kinds",
    "entry_n",
    "entry_levels",
    "entry_depth",
    "child_start",
    "child_end",
    "post",
    "dir_index",
    "dir_mbr_lower",
    "dir_mbr_upper",
    "leaf_means",
    "leaf_scales",
    "leaf_kinds",
    "leaf_log_weights",
    "leaf_times",
    "bandwidth",
    "stats_ls",
    "stats_ss",
    "meta_i",
    "meta_f",
)


class _FlatNode:
    """Materialised view of one node's contiguous entry block.

    Duck-types the two attributes the refinement machinery reads from
    :class:`repro.index.node.Node` — ``level`` and ``entries`` — plus the
    ``packed_params`` fast path: zero-copy column slices of the children's
    mixture parameters, consumed directly by
    :meth:`repro.core.frontier.Frontier.refine_item`.
    """

    __slots__ = ("level", "entries", "packed_params")

    def __init__(self, level: int, entries: List[object], packed_params: _BatchParams) -> None:
        self.level = level
        self.entries = entries
        self.packed_params = packed_params


class _FlatDirEntry:
    """Directory-entry proxy over one slot of the flat columns.

    Carries exactly the surface the frontier/descent machinery touches:
    ``is_directory``, ``n_objects``, ``child`` (a cached :class:`_FlatNode`
    shared across all frontiers, so the batch driver's group-by-``id(child)``
    coalescing works unchanged) and ``mbr`` (for geometric descent).
    """

    __slots__ = ("_tree", "_slot", "_mbr")

    is_directory = True

    def __init__(self, tree: "FlatTree", slot: int) -> None:
        self._tree = tree
        self._slot = slot
        self._mbr: Optional[MBR] = None

    @property
    def n_objects(self) -> float:
        return self._tree._entry_n_list[self._slot]

    @property
    def child(self) -> _FlatNode:
        return self._tree._node_at(self._slot)

    @property
    def mbr(self) -> MBR:
        mbr = self._mbr
        if mbr is None:
            row = int(self._tree.dir_index[self._slot])
            mbr = MBR._trusted(
                np.asarray(self._tree.dir_mbr_lower[row], dtype=float),
                np.asarray(self._tree.dir_mbr_upper[row], dtype=float),
            )
            self._mbr = mbr
        return mbr


class _FlatLeafEntry:
    """Leaf-entry (kernel) proxy over one slot of the flat columns.

    Leaf items are never refined, so only the kind flag and the decayed
    weight are needed on the query path.
    """

    __slots__ = ("_tree", "_slot")

    is_directory = False

    def __init__(self, tree: "FlatTree", slot: int) -> None:
        self._tree = tree
        self._slot = slot

    @property
    def n_objects(self) -> float:
        return self._tree._entry_n_list[self._slot]


class FlatTree:
    """One Bayes tree compiled into contiguous pre-order SoA columns.

    Column overview (``S`` entry slots, ``D`` directory entries, ``n`` stored
    kernels, ``d`` dimensions):

    ======================  ==========  ==================================================
    column                  shape       meaning
    ======================  ==========  ==================================================
    ``entry_means``         (S, d)      component mean per slot
    ``entry_scales``        (S, d)      variance (Gaussian) / bandwidth (Epanechnikov)
    ``entry_kinds``         (S,) i1     component kind flag
    ``entry_n``             (S,)        decayed object weight below the entry
    ``entry_levels``        (S,) i8     level of the entry's child node; -1 for kernels
    ``entry_depth``         (S,) i8     depth of the containing node (root node = 0)
    ``child_start/end``     (S,) i8     slot range of the child node's entries (-1 leaf)
    ``post``                (S,) i8     end of the entry's descendant block (-1 leaf)
    ``dir_index``           (S,) i8     row into the MBR columns (-1 for kernels)
    ``dir_mbr_lower/upper`` (D, d)      bounding boxes for geometric descent
    ``leaf_*``              (n, ...)    packed full kernel model (fully-refined path)
    ======================  ==========  ==================================================

    Slots are assigned pre-order with every node's entries contiguous and
    every subtree contiguous, so an entry's children are
    ``[child_start, child_end)`` and its whole descendant block is
    ``[child_start, post)`` — both plain slices.
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        meta: Mapping[str, int],
        meta_floats: Mapping[str, float],
    ) -> None:
        self.entry_means = columns["entry_means"]
        self.entry_scales = columns["entry_scales"]
        self.entry_kinds = columns["entry_kinds"]
        self.entry_n = columns["entry_n"]
        self.entry_levels = columns["entry_levels"]
        self.entry_depth = columns["entry_depth"]
        self.child_start = columns["child_start"]
        self.child_end = columns["child_end"]
        self.post = columns["post"]
        self.dir_index = columns["dir_index"]
        self.dir_mbr_lower = columns["dir_mbr_lower"]
        self.dir_mbr_upper = columns["dir_mbr_upper"]
        self.leaf_means = columns["leaf_means"]
        self.leaf_scales = columns["leaf_scales"]
        self.leaf_kinds = columns["leaf_kinds"]
        self.leaf_log_weights = columns["leaf_log_weights"]
        self.leaf_times = columns["leaf_times"]
        self.stats_ls = columns["stats_ls"]
        self.stats_ss = columns["stats_ss"]
        bandwidth = columns["bandwidth"]
        self.bandwidth: Optional[np.ndarray] = (
            bandwidth if meta["has_bandwidth"] else None
        )
        self.meta: Dict[str, int] = dict(meta)
        self.meta_floats: Dict[str, float] = dict(meta_floats)
        self.dimension = int(self.entry_means.shape[1])
        #: Python-float view of ``entry_n``: the frontier sums per-entry
        #: weights in Python (same op order as the object graph), and
        #: ``tolist`` converts once instead of once per access.
        self._entry_n_list: List[float] = self.entry_n.tolist()
        self._entries: List[Optional[object]] = [None] * self.meta["n_entries"]
        self._nodes: Dict[int, _FlatNode] = {}
        self._root_entries: List[object] = [
            self._entry_at(slot) for slot in range(self.meta["root_count"])
        ]
        self._leaf_scales_full: Optional[np.ndarray] = None

    # -- compilation ------------------------------------------------------------------------
    @classmethod
    def compile(cls, tree: "BayesTree") -> "FlatTree":  # noqa: F821
        """Compile a live :class:`BayesTree` into its flat columnar form.

        The tree's summaries are first aged to its current logical time
        (exactly what every query does before packing parameters), then the
        per-node parameters are packed with the very routine the frontier
        uses lazily — the columns hold the same float64 values a query-time
        packing would produce, which is what makes the flat descent
        bit-identical.
        """
        dimension = tree.dimension
        n_leaf = int(tree.n_objects)
        if n_leaf == 0:
            return cls._empty(tree)
        tree._sync_decay()
        variance_inflation = tree._variance_inflation()
        bandwidth = tree._bandwidth

        nodes = list(tree.index.iter_nodes())
        total_entries = sum(len(node.entries) for node in nodes)
        n_dir = total_entries - n_leaf

        entry_means = np.empty((total_entries, dimension))
        entry_scales = np.empty((total_entries, dimension))
        entry_kinds = np.empty(total_entries, dtype=np.int8)
        entry_n = np.empty(total_entries)
        entry_levels = np.full(total_entries, -1, dtype=np.int64)
        entry_depth = np.empty(total_entries, dtype=np.int64)
        child_start = np.full(total_entries, -1, dtype=np.int64)
        child_end = np.full(total_entries, -1, dtype=np.int64)
        post = np.full(total_entries, -1, dtype=np.int64)
        dir_index = np.full(total_entries, -1, dtype=np.int64)
        dir_mbr_lower = np.empty((n_dir, dimension))
        dir_mbr_upper = np.empty((n_dir, dimension))

        cursor = 0
        dir_cursor = 0
        n_leaf_nodes = 0

        # Pre-order slot assignment: a node's entries occupy one contiguous
        # block, and recursing into each directory entry immediately after
        # placing the block makes every descendant set contiguous as well —
        # the invariant behind the [child_start, post) interval columns.
        def place(node: "Node", depth: int) -> None:
            nonlocal cursor, dir_cursor, n_leaf_nodes
            entries = node.entries
            start = cursor
            cursor += len(entries)
            params = _entry_batch_params(entries, variance_inflation, bandwidth)
            means, scales, kinds, n_objects = params
            entry_means[start : start + len(entries)] = means
            entry_scales[start : start + len(entries)] = scales
            entry_kinds[start : start + len(entries)] = kinds
            entry_n[start : start + len(entries)] = n_objects
            entry_depth[start : start + len(entries)] = depth
            if node.is_leaf:
                n_leaf_nodes += 1
                return
            for offset, entry in enumerate(entries):
                slot = start + offset
                child = entry.child
                entry_levels[slot] = child.level
                row = dir_cursor
                dir_cursor += 1
                dir_index[slot] = row
                dir_mbr_lower[row] = entry.mbr.lower
                dir_mbr_upper[row] = entry.mbr.upper
                block_start = cursor
                place(child, depth + 1)
                child_start[slot] = block_start
                child_end[slot] = block_start + len(child.entries)
                post[slot] = cursor

        root = tree.root
        place(root, 0)
        if cursor != total_entries or dir_cursor != n_dir:
            raise AssertionError("flat compilation lost entries during the pre-order walk")

        leaf_means, leaf_scales, leaf_kinds, leaf_log_weights = tree.leaf_arrays()
        shared_scales = leaf_scales.ndim == 2 and leaf_scales.strides[0] == 0
        if shared_scales:
            # The broadcast scale row is stored once; loading broadcasts it
            # back to (n, d), so the shared-memory/on-disk footprint of the
            # full kernel model stays O(n·d) for means but O(d) for scales.
            leaf_scales_stored = np.ascontiguousarray(leaf_scales[:1])
        else:
            leaf_scales_stored = np.ascontiguousarray(leaf_scales)
        feature = tree._stats.feature

        columns = {
            "entry_means": entry_means,
            "entry_scales": entry_scales,
            "entry_kinds": entry_kinds,
            "entry_n": entry_n,
            "entry_levels": entry_levels,
            "entry_depth": entry_depth,
            "child_start": child_start,
            "child_end": child_end,
            "post": post,
            "dir_index": dir_index,
            "dir_mbr_lower": dir_mbr_lower,
            "dir_mbr_upper": dir_mbr_upper,
            "leaf_means": np.ascontiguousarray(leaf_means),
            "leaf_scales": leaf_scales_stored,
            "leaf_kinds": np.ascontiguousarray(leaf_kinds),
            "leaf_log_weights": np.ascontiguousarray(leaf_log_weights),
            "leaf_times": tree._leaf_means.times_view.copy(),
            "bandwidth": (
                np.zeros(0) if bandwidth is None else np.asarray(bandwidth, dtype=float)
            ),
            "stats_ls": np.asarray(feature.linear_sum, dtype=float).copy(),
            "stats_ss": np.asarray(feature.squared_sum, dtype=float).copy(),
        }
        meta = {
            "n_entries": total_entries,
            "n_leaf": n_leaf,
            "root_count": len(root.entries),
            "root_level": int(root.level),
            "n_nodes": len(nodes),
            "n_leaf_nodes": n_leaf_nodes,
            "height": int(tree.height()),
            "leaf_capacity": int(tree.config.tree.leaf_capacity),
            "shared_scales": int(shared_scales),
            "has_bandwidth": int(bandwidth is not None),
        }
        meta_floats = {
            "clock_now": float(tree.clock.now),
            "prior_weight": float(tree.prior_weight),
            "stats_n": float(feature.n),
        }
        return cls(columns, meta, meta_floats)

    @classmethod
    def _empty(cls, tree: "BayesTree") -> "FlatTree":  # noqa: F821
        """Flat form of an empty (fully expired) class tree: all-zero columns."""
        dimension = tree.dimension
        columns = {
            "entry_means": np.zeros((0, dimension)),
            "entry_scales": np.zeros((0, dimension)),
            "entry_kinds": np.zeros(0, dtype=np.int8),
            "entry_n": np.zeros(0),
            "entry_levels": np.zeros(0, dtype=np.int64),
            "entry_depth": np.zeros(0, dtype=np.int64),
            "child_start": np.zeros(0, dtype=np.int64),
            "child_end": np.zeros(0, dtype=np.int64),
            "post": np.zeros(0, dtype=np.int64),
            "dir_index": np.zeros(0, dtype=np.int64),
            "dir_mbr_lower": np.zeros((0, dimension)),
            "dir_mbr_upper": np.zeros((0, dimension)),
            "leaf_means": np.zeros((0, dimension)),
            "leaf_scales": np.zeros((0, dimension)),
            "leaf_kinds": np.zeros(0, dtype=np.int8),
            "leaf_log_weights": np.zeros(0),
            "leaf_times": np.zeros(0),
            "bandwidth": np.zeros(0),
            "stats_ls": np.zeros(dimension),
            "stats_ss": np.zeros(dimension),
        }
        meta = {
            "n_entries": 0,
            "n_leaf": 0,
            "root_count": 0,
            "root_level": 0,
            "n_nodes": 0,
            "n_leaf_nodes": 0,
            "height": 0,
            "leaf_capacity": int(tree.config.tree.leaf_capacity),
            "shared_scales": 0,
            "has_bandwidth": 0,
        }
        meta_floats = {
            "clock_now": float(tree.clock.now),
            "prior_weight": 0.0,
            "stats_n": 0.0,
        }
        return cls(columns, meta, meta_floats)

    # -- serialization ----------------------------------------------------------------------
    def to_columns(self) -> Dict[str, np.ndarray]:
        """The tree as a name → array mapping (``TREE_COLUMNS`` order)."""
        out: Dict[str, np.ndarray] = {}
        for name in TREE_COLUMNS:
            if name == "meta_i":
                out[name] = np.array(
                    [self.meta[field] for field in _META_I_FIELDS], dtype=np.int64
                )
            elif name == "meta_f":
                out[name] = np.array(
                    [self.meta_floats[field] for field in _META_F_FIELDS], dtype=float
                )
            elif name == "bandwidth":
                out[name] = (
                    np.zeros(0) if self.bandwidth is None else np.asarray(self.bandwidth)
                )
            else:
                out[name] = getattr(self, name)
        return out

    @classmethod
    def from_columns(cls, columns: Mapping[str, np.ndarray]) -> "FlatTree":
        """Rebuild from :meth:`to_columns` output, validating the structure.

        Raises :class:`ValueError` on any missing column, length
        disagreement, or interval inconsistency — the persistence layer wraps
        these into :class:`repro.persist.SnapshotError`.
        """
        missing = [name for name in TREE_COLUMNS if name not in columns]
        if missing:
            raise ValueError(f"flat tree columns missing: {missing}")
        meta_i = np.asarray(columns["meta_i"]).ravel()
        meta_f = np.asarray(columns["meta_f"]).ravel()
        if meta_i.shape[0] != len(_META_I_FIELDS):
            raise ValueError("flat tree meta_i column has the wrong length")
        if meta_f.shape[0] != len(_META_F_FIELDS):
            raise ValueError("flat tree meta_f column has the wrong length")
        meta = {field: int(meta_i[i]) for i, field in enumerate(_META_I_FIELDS)}
        meta_floats = {field: float(meta_f[i]) for i, field in enumerate(_META_F_FIELDS)}
        cls._validate_columns(columns, meta)
        tree = cls(columns, meta, meta_floats)
        return tree

    @staticmethod
    def _validate_columns(columns: Mapping[str, np.ndarray], meta: Dict[str, int]) -> None:
        """Structural validation of deserialized columns (raises ValueError)."""
        total = meta["n_entries"]
        n_leaf = meta["n_leaf"]
        root_count = meta["root_count"]
        per_slot = (
            "entry_means",
            "entry_scales",
            "entry_kinds",
            "entry_n",
            "entry_levels",
            "entry_depth",
            "child_start",
            "child_end",
            "post",
            "dir_index",
        )
        for name in per_slot:
            if columns[name].shape[0] != total:
                raise ValueError(
                    f"flat tree column {name!r} has {columns[name].shape[0]} rows, "
                    f"expected {total} (interval/column length disagreement)"
                )
        levels = np.asarray(columns["entry_levels"])
        child_start = np.asarray(columns["child_start"])
        child_end = np.asarray(columns["child_end"])
        post = np.asarray(columns["post"])
        dir_mask = levels >= 0
        n_dir = int(dir_mask.sum())
        if total - n_dir != n_leaf:
            raise ValueError(
                "flat tree leaf slot count disagrees with the recorded kernel count"
            )
        for name in ("dir_mbr_lower", "dir_mbr_upper"):
            if columns[name].shape[0] != n_dir:
                raise ValueError(
                    f"flat tree column {name!r} has {columns[name].shape[0]} rows, "
                    f"expected {n_dir} directory entries"
                )
        if n_dir:
            starts = child_start[dir_mask]
            ends = child_end[dir_mask]
            posts = post[dir_mask]
            if not (
                np.all(starts >= root_count)
                and np.all(starts < ends)
                and np.all(ends <= posts)
                and np.all(posts <= total)
            ):
                raise ValueError("flat tree subtree intervals are out of bounds")
            if int((ends - starts).sum()) != total - root_count:
                raise ValueError(
                    "flat tree child ranges do not partition the non-root slots"
                )
        leaf_mask = ~dir_mask
        if np.any(child_start[leaf_mask] != -1) or np.any(post[leaf_mask] != -1):
            raise ValueError("flat tree kernel slots must not carry child intervals")
        for name in ("leaf_means", "leaf_kinds", "leaf_log_weights", "leaf_times"):
            expected = n_leaf
            if columns[name].shape[0] != expected:
                raise ValueError(
                    f"flat tree column {name!r} has {columns[name].shape[0]} rows, "
                    f"expected {expected} kernels"
                )
        leaf_scales = columns["leaf_scales"]
        expected_scales = 1 if meta["shared_scales"] and n_leaf else n_leaf
        if leaf_scales.shape[0] != expected_scales:
            raise ValueError(
                f"flat tree column 'leaf_scales' has {leaf_scales.shape[0]} rows, "
                f"expected {expected_scales}"
            )

    # -- node/entry materialisation ----------------------------------------------------------
    def _entry_at(self, slot: int) -> object:
        entry = self._entries[slot]
        if entry is None:
            if self.entry_levels[slot] >= 0:
                entry = _FlatDirEntry(self, slot)
            else:
                entry = _FlatLeafEntry(self, slot)
            self._entries[slot] = entry
        return entry

    def _node_at(self, slot: int) -> _FlatNode:
        """The child node of the directory entry at ``slot`` (cached).

        The cache keys nodes by slot, so every frontier of every query sees
        the *same* node object per subtree — the batch driver groups planned
        reads by ``id(child)`` and this preserves its coalescing.
        """
        node = self._nodes.get(slot)
        if node is None:
            start = int(self.child_start[slot])
            end = int(self.child_end[slot])
            node = _FlatNode(
                level=int(self.entry_levels[slot]),
                entries=[self._entry_at(child) for child in range(start, end)],
                packed_params=(
                    self.entry_means[start:end],
                    self.entry_scales[start:end],
                    self.entry_kinds[start:end],
                    self.entry_n[start:end],
                ),
            )
            self._nodes[slot] = node
        return node

    # -- query surface (mirrors BayesTree) ---------------------------------------------------
    @property
    def n_objects(self) -> int:
        """Number of stored observations (kernels) in the compiled tree."""
        return self.meta["n_leaf"]

    def node_count(self) -> int:
        return self.meta["n_nodes"]

    def height(self) -> int:
        return self.meta["height"]

    def root_batch_params(self) -> _BatchParams:
        """Packed root-entry parameters: the leading column slice, zero copy."""
        count = self.meta["root_count"]
        return (
            self.entry_means[:count],
            self.entry_scales[:count],
            self.entry_kinds[:count],
            self.entry_n[:count],
        )

    def frontier(
        self,
        query: Sequence[float] | np.ndarray,
        root_log_densities: Optional[np.ndarray] = None,
    ) -> Frontier:
        """Anytime density-query state over the flat columns.

        Same surface, validation and seeding as :meth:`BayesTree.frontier`;
        the frontier's refinement steps consume the columns' packed slices
        through the nodes' ``packed_params`` instead of re-packing entries.
        """
        if self.n_objects == 0:
            raise ValueError("cannot query an empty Bayes tree")
        query = np.asarray(query, dtype=float)
        if query.shape != (self.dimension,):
            raise ValueError(f"query must have shape ({self.dimension},)")
        variance_inflation = None if self.bandwidth is None else self.bandwidth ** 2
        return Frontier(
            self._root_entries,
            root_level=self.meta["root_level"],
            query=query,
            variance_inflation=variance_inflation,
            leaf_bandwidth=self.bandwidth,
            root_params=self.root_batch_params(),
            root_log_densities=root_log_densities,
        )

    def leaf_arrays(self) -> _BatchParams:
        """Packed full kernel model ``(means, scales, kinds, log_weights)``."""
        if self.n_objects == 0:
            raise ValueError("cannot pack leaf arrays of an empty Bayes tree")
        scales = self.leaf_scales
        if self.meta["shared_scales"]:
            full = self._leaf_scales_full
            if full is None:
                # Re-broadcast the stored single row: same zero-stride layout
                # (and therefore the same evaluation) as the live tree's
                # shared-bandwidth fast path.
                full = np.broadcast_to(
                    scales[0], (self.meta["n_leaf"], self.dimension)
                )
                self._leaf_scales_full = full
            scales = full
        return self.leaf_means, scales, self.leaf_kinds, self.leaf_log_weights

    def log_density_batch(self, queries: np.ndarray) -> np.ndarray:
        """Full-model log densities, identical to :meth:`BayesTree.log_density_batch`."""
        from .frontier import component_log_densities

        queries = np.asarray(queries, dtype=float)
        single = queries.ndim == 1
        queries = np.atleast_2d(queries)
        if queries.shape[1] != self.dimension:
            raise ValueError(f"queries must have shape (m, {self.dimension})")
        means, scales, kinds, log_weights = self.leaf_arrays()
        logs = component_log_densities(queries, means, scales, kinds)
        result = logsumexp(logs + log_weights[None, :], axis=1)
        return result[0] if single else result

    # -- structure health --------------------------------------------------------------------
    def structure_stats(self) -> Dict[str, object]:
        """Cheap structural health metrics straight from the interval columns.

        Everything here is a vectorised reduction over the per-slot columns —
        no tree walk, no object graph: the depth profile is a bincount over
        the kernels' node depths, leaf occupancy compares stored kernels to
        leaf-node capacity, and the root balance ratio counts kernels per
        root subtree with one prefix sum sliced by ``[child_start, post)``.
        """
        meta = self.meta
        if meta["n_entries"] == 0:
            return {
                "n_entries": 0,
                "n_kernels": 0,
                "n_directory_entries": 0,
                "n_nodes": 0,
                "n_leaf_nodes": 0,
                "height": 0,
                "leaf_occupancy": 0.0,
                "depth_profile": [],
                "mean_kernel_depth": 0.0,
                "max_kernel_depth": 0,
                "root_subtree_kernels": [],
                "root_balance_ratio": 1.0,
                "prior_weight": 0.0,
            }
        leaf_mask = np.asarray(self.entry_levels) < 0
        n_kernels = int(leaf_mask.sum())
        depths = np.asarray(self.entry_depth)[leaf_mask]
        profile = np.bincount(depths) if depths.size else np.zeros(0, dtype=np.int64)
        capacity = meta["n_leaf_nodes"] * meta["leaf_capacity"]
        # Prefix sum over the kernel indicator: kernels inside any subtree
        # interval [start, post) are cumulative[post] - cumulative[start].
        cumulative = np.concatenate(([0], np.cumsum(leaf_mask.astype(np.int64))))
        root_counts: List[int] = []
        for slot in range(meta["root_count"]):
            if self.entry_levels[slot] >= 0:
                start = int(self.child_start[slot])
                stop = int(self.post[slot])
                root_counts.append(int(cumulative[stop] - cumulative[start]))
            else:
                root_counts.append(1)
        if root_counts and max(root_counts) > 0:
            balance = min(root_counts) / max(root_counts)
        else:
            balance = 1.0
        return {
            "n_entries": meta["n_entries"],
            "n_kernels": n_kernels,
            "n_directory_entries": meta["n_entries"] - n_kernels,
            "n_nodes": meta["n_nodes"],
            "n_leaf_nodes": meta["n_leaf_nodes"],
            "height": meta["height"],
            "leaf_occupancy": (n_kernels / capacity) if capacity else 0.0,
            "depth_profile": profile.tolist(),
            "mean_kernel_depth": float(depths.mean()) if depths.size else 0.0,
            "max_kernel_depth": int(depths.max()) if depths.size else 0,
            "root_subtree_kernels": root_counts,
            "root_balance_ratio": float(balance),
            "prior_weight": self.meta_floats["prior_weight"],
        }

    def nbytes(self) -> int:
        """Total byte size of the stored columns (as serialized)."""
        return int(sum(array.nbytes for array in self.to_columns().values()))


class FlatForest:
    """Read-only columnar twin of an :class:`AnytimeBayesClassifier` forest.

    Exposes the classifier's prediction surface — :meth:`classify_anytime`,
    :meth:`classify_anytime_batch`, :meth:`predict_batch` — driving through
    the same module-level drivers, so predictions, per-step posteriors and
    node-read counts are bit-identical to the live forest it was compiled
    from.  Training APIs are deliberately absent: a flat forest is a
    snapshot; to learn, mutate the live forest and recompile (the serving
    engine does exactly that on hot swaps).
    """

    def __init__(
        self,
        trees: Dict[Hashable, FlatTree],
        log_priors: Dict[Hashable, float],
        descent: DescentStrategy,
        qbk_k: Optional[int],
        dimension: int,
    ) -> None:
        self.trees = trees
        self.log_priors = log_priors
        self.descent = descent
        self.qbk_k = qbk_k
        self.dimension = dimension

    # -- construction -----------------------------------------------------------------------
    @classmethod
    def from_classifier(cls, classifier: "AnytimeBayesClassifier") -> "FlatForest":  # noqa: F821
        """Compile every class tree of a fitted live forest."""
        if not classifier.is_fitted:
            raise ValueError("classifier has not been fitted")
        trees = {
            label: FlatTree.compile(tree) for label, tree in classifier.trees.items()
        }
        log_priors = dict(classifier.log_priors)
        return cls(
            trees=trees,
            log_priors=log_priors,
            descent=classifier.descent,
            qbk_k=classifier.qbk_k,
            dimension=int(classifier.dimension),
        )

    # -- serialization ----------------------------------------------------------------------
    @property
    def labels(self) -> List[Hashable]:
        """Class labels in stored order (parallel to the serialized columns)."""
        return list(self.trees.keys())

    def to_columns(self) -> Dict[str, np.ndarray]:
        """All trees' columns under ``t{i}__`` prefixes plus the forest priors."""
        arrays: Dict[str, np.ndarray] = {}
        for position, label in enumerate(self.labels):
            for name, array in self.trees[label].to_columns().items():
                arrays[f"t{position}__{name}"] = array
        arrays["forest__log_priors"] = np.array(
            [self.log_priors[label] for label in self.labels], dtype=float
        )
        return arrays

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, np.ndarray],
        labels: Sequence[Hashable],
        descent: str | DescentStrategy,
        qbk_k: Optional[int],
        dimension: int,
    ) -> "FlatForest":
        """Rebuild a forest from prefixed columns (inverse of :meth:`to_columns`).

        ``labels`` (typically from the snapshot manifest) names tree ``i``'s
        class.  Raises :class:`ValueError` on structural problems; the
        persistence layer converts those into :class:`SnapshotError`.
        """
        if "forest__log_priors" not in columns:
            raise ValueError("flat forest columns missing 'forest__log_priors'")
        priors_column = np.asarray(columns["forest__log_priors"], dtype=float).ravel()
        if priors_column.shape[0] != len(labels):
            raise ValueError(
                "flat forest prior column length disagrees with the class list"
            )
        trees: Dict[Hashable, FlatTree] = {}
        for position, label in enumerate(labels):
            prefix = f"t{position}__"
            tree_columns = {
                name[len(prefix) :]: array
                for name, array in columns.items()
                if name.startswith(prefix)
            }
            trees[label] = FlatTree.from_columns(tree_columns)
        log_priors = {
            label: float(priors_column[position])
            for position, label in enumerate(labels)
        }
        if not isinstance(descent, DescentStrategy):
            descent = make_descent_strategy(descent)
        return cls(
            trees=trees,
            log_priors=log_priors,
            descent=descent,
            qbk_k=qbk_k,
            dimension=int(dimension),
        )

    # -- classification ---------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return bool(self.trees)

    @property
    def n_classes(self) -> int:
        """Number of known classes, including currently empty ones."""
        return len(self.trees)

    def _alive_trees(self) -> Dict[Hashable, FlatTree]:
        alive = {label: tree for label, tree in self.trees.items() if tree.n_objects > 0}
        if not alive:
            raise ValueError("classifier holds no training observations (all expired)")
        return alive

    def _effective_k(self) -> int:
        if self.qbk_k is not None:
            return max(1, min(self.qbk_k, self.n_classes))
        return min(default_qbk_k(self.n_classes), self.n_classes)

    def classify_anytime(
        self, query: Sequence[float] | np.ndarray, max_nodes: int
    ) -> AnytimeClassification:
        """Anytime classification over the flat columns (bit-identical trace)."""
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        if max_nodes < 0:
            raise ValueError("max_nodes must be non-negative")
        return drive_classify_anytime(
            self._alive_trees(),
            self.log_priors,
            self.descent,
            self._effective_k(),
            np.asarray(query, dtype=float),
            max_nodes,
        )

    def classify_anytime_batch(
        self,
        queries: np.ndarray,
        max_nodes: "int | Sequence[int] | np.ndarray",
        record_history: bool = True,
    ) -> List[AnytimeClassification]:
        """Lockstep batch classification over the flat columns."""
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("queries must be an (m, d) array")
        budgets = validate_batch_budgets(queries, max_nodes)
        return drive_classify_anytime_batch(
            self._alive_trees(),
            self.log_priors,
            self.descent,
            self._effective_k(),
            queries,
            budgets,
            record_history,
        )

    def predict_batch(
        self, queries: np.ndarray, node_budget: Optional[int] = None
    ) -> List[Hashable]:
        """Batch label prediction (full kernel model when ``node_budget`` is None)."""
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("queries must be an (m, d) array")
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        if node_budget is None:
            return drive_predict_full(self._alive_trees(), self.log_priors, queries)
        results = self.classify_anytime_batch(
            queries, max_nodes=node_budget, record_history=False
        )
        return [result.final_prediction for result in results]

    # -- structure health --------------------------------------------------------------------
    def structure_stats(self) -> Dict[str, object]:
        """Forest-wide structural health summary (JSON-serialisable).

        Per-class metrics come from :meth:`FlatTree.structure_stats` (pure
        column reductions); the roll-up aggregates entry/node counts, the
        height range and the total stored kernels — the serving ``/stats``
        endpoint reports this verbatim.
        """
        per_class: Dict[str, dict] = {}
        totals = {"n_entries": 0, "n_kernels": 0, "n_nodes": 0}
        heights: List[int] = []
        for label, tree in self.trees.items():
            stats = tree.structure_stats()
            per_class[str(label)] = stats
            totals["n_entries"] += stats["n_entries"]
            totals["n_kernels"] += stats["n_kernels"]
            totals["n_nodes"] += stats["n_nodes"]
            if tree.n_objects:
                heights.append(stats["height"])
        return {
            "classes": per_class,
            "n_classes": self.n_classes,
            "total_entries": totals["n_entries"],
            "total_kernels": totals["n_kernels"],
            "total_nodes": totals["n_nodes"],
            "min_height": min(heights) if heights else 0,
            "max_height": max(heights) if heights else 0,
        }

    def nbytes(self) -> int:
        """Total byte size of all serialized columns."""
        return int(sum(tree.nbytes() for tree in self.trees.values())) + 8 * len(
            self.trees
        )
