"""Declarative scenario specifications for the stream-mining battery.

A :class:`ScenarioSpec` is a named, fully seeded recipe that composes the
repo's generators (:func:`repro.data.synthetic.make_drift_stream`,
:func:`repro.data.synthetic.make_curve_dataset`) and arrival processes
(:mod:`repro.stream.arrival`) into one reproducible labelled stream — the
unit the scenario battery (:mod:`repro.evaluation.battery`) runs classifiers
through.  On top of the base generator a spec can layer stream-level
semantics the drift generator alone cannot express:

* **feature drift** — a covariate shift: the whole input distribution
  migrates along a seeded direction while the class structure *relative to
  the moving cloud* stays intact (contrast with concept drift, where class
  regions are reassigned in place);
* **label delay** — an object's true label only becomes available for
  training ``label_delay`` arrivals later (verification lag in the paper's
  health-monitoring motivation);
* **partial labels** — only a seeded ``label_fraction`` of objects ever get
  a training label (the rest are classified but never learned from);
* **adversarial bursts** — arrival-gap compression through
  :class:`repro.stream.arrival.BurstArrival`, collapsing the anytime budget
  exactly when traffic surges.

Specs round-trip losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` (the provenance block of the published
scenario report), and ``build()`` is a pure function of ``(spec, size_scale)``
— the same spec and seed always produce a stream with the same
:meth:`ScenarioStream.fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..data.synthetic import DRIFT_KINDS, Dataset, DatasetSpec, make_curve_dataset, make_drift_stream
from ..stream.arrival import BurstArrival, ConstantArrival, PoissonArrival, gaps_to_node_budgets

__all__ = ["GENERATOR_KINDS", "ARRIVAL_KINDS", "NEVER_LABELED", "ScenarioSpec", "ScenarioStream"]

#: Base feature/label generators a spec may compose.
GENERATOR_KINDS = ("drift", "curves")

#: Arrival processes a spec may compose (see :mod:`repro.stream.arrival`).
ARRIVAL_KINDS = ("constant", "poisson", "bursty")

#: Sentinel in ``label_available_at`` for objects whose label never arrives.
NEVER_LABELED = -1

#: Version stamp embedded in serialized specs (bump on incompatible change).
SPEC_VERSION = 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seeded, declarative stream scenario.

    The generator fields select and parameterise the base data: ``"drift"``
    delegates to :func:`repro.data.synthetic.make_drift_stream` (evolving
    class regions, arbitrary class counts), ``"curves"`` to
    :func:`repro.data.synthetic.make_curve_dataset` (stationary curved-
    manifold classes with arbitrary dimensionality and class priors — the
    high-dimensional and imbalanced scenarios).  The transform fields layer
    label-delay / partial-label semantics and the arrival process on top.
    All randomness derives from ``seed`` alone.
    """

    name: str
    description: str
    size: int
    n_classes: int
    n_features: int
    seed: int
    generator: str = "drift"
    # -- "drift" generator knobs (make_drift_stream) --------------------------------
    drift: str = "none"
    drift_speed: float = 0.01
    n_segments: int = 2
    transition: float = 0.25
    # -- "curves" generator knobs (make_curve_dataset) ------------------------------
    latent_dim: int = 5
    class_separation: float = 1.0
    curve_amplitude: float = 2.0
    noise_scale: float = 0.3
    ambient_noise: float = 0.1
    class_weights: Optional[Tuple[float, ...]] = None
    # -- stream-level transforms ----------------------------------------------------
    feature_drift: float = 0.0
    label_delay: int = 0
    label_fraction: float = 1.0
    # -- arrival process / anytime budgets ------------------------------------------
    arrival: str = "constant"
    burst_quiet: int = 0
    burst_length: int = 0
    burst_factor: float = 1.0
    nodes_per_time_unit: float = 16.0
    max_budget: Optional[int] = 64
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.size < 1:
            raise ValueError("size must be positive")
        if self.n_classes < 1 or self.n_features < 1:
            raise ValueError("n_classes and n_features must be positive")
        if self.generator not in GENERATOR_KINDS:
            raise ValueError(f"unknown generator {self.generator!r}; expected one of {GENERATOR_KINDS}")
        if self.drift not in DRIFT_KINDS:
            raise ValueError(f"unknown drift kind {self.drift!r}; expected one of {DRIFT_KINDS}")
        if self.generator == "curves":
            if self.latent_dim < 1 or self.latent_dim > self.n_features:
                raise ValueError("curves generator needs 1 <= latent_dim <= n_features")
            if self.drift != "none":
                raise ValueError(
                    "the curves generator is stationary; use feature_drift or the drift generator"
                )
        if self.class_weights is not None:
            if self.generator != "curves":
                raise ValueError("class_weights require the curves generator")
            if len(self.class_weights) != self.n_classes:
                raise ValueError("class_weights must carry one weight per class")
        if self.feature_drift < 0:
            raise ValueError("feature_drift must be non-negative")
        if self.label_delay < 0:
            raise ValueError("label_delay must be non-negative")
        if not (0.0 < self.label_fraction <= 1.0):
            raise ValueError("label_fraction must be in (0, 1]")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.arrival!r}; expected one of {ARRIVAL_KINDS}")
        if self.arrival == "bursty" and (self.burst_quiet < 1 or self.burst_length < 1):
            raise ValueError("bursty arrival needs positive burst_quiet and burst_length")
        if self.arrival == "bursty" and self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.nodes_per_time_unit <= 0:
            raise ValueError("nodes_per_time_unit must be positive")
        if self.max_budget is not None and self.max_budget < 1:
            raise ValueError("max_budget must be positive (or None for unbounded)")

    # -- serialization --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-safe representation (the report's provenance block)."""
        payload = asdict(self)
        payload["spec_version"] = SPEC_VERSION
        if payload["class_weights"] is not None:
            payload["class_weights"] = list(payload["class_weights"])
        payload["tags"] = list(payload["tags"])
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; validates version and field names."""
        data = dict(payload)
        version = data.pop("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"unsupported scenario spec version {version!r} (expected {SPEC_VERSION})")
        known = {name for name in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown scenario spec fields: {unknown}")
        if data.get("class_weights") is not None:
            data["class_weights"] = tuple(float(w) for w in data["class_weights"])
        data["tags"] = tuple(data.get("tags", ()))
        return cls(**data)

    # -- stream construction --------------------------------------------------------
    def scaled_size(self, size_scale: float = 1.0) -> int:
        """The stream length at a given scale (floored to stay runnable)."""
        if size_scale <= 0:
            raise ValueError("size_scale must be positive")
        return max(32, int(round(self.size * size_scale)))

    def _base_dataset(self, size: int, data_seed: int) -> Dataset:
        """Generate the base features/labels via the composed generator."""
        if self.generator == "curves":
            spec = DatasetSpec(
                name=self.name,
                paper_size=self.size,
                n_classes=self.n_classes,
                n_features=self.n_features,
                class_separation=self.class_separation,
                curve_amplitude=self.curve_amplitude,
                noise_scale=self.noise_scale,
                latent_dim=self.latent_dim,
                ambient_noise=self.ambient_noise,
            )
            return make_curve_dataset(
                spec,
                size=max(size, self.n_classes),
                random_state=data_seed,
                class_weights=self.class_weights,
            )
        return make_drift_stream(
            size=size,
            n_classes=self.n_classes,
            n_features=self.n_features,
            drift=self.drift,
            drift_speed=self.drift_speed,
            n_segments=self.n_segments,
            transition=self.transition,
            random_state=data_seed,
        )

    def build(self, size_scale: float = 1.0) -> "ScenarioStream":
        """Materialise the reproducible stream this spec describes.

        ``size_scale`` shrinks (or grows) the stream length for smoke runs
        while keeping every other dial — class count, dimensionality, drift
        shape, delay, arrival pattern — untouched; the scaled stream is just
        as reproducible (the fingerprint is a function of spec + scale).
        """
        size = self.scaled_size(size_scale)
        root = np.random.default_rng(self.seed)
        data_seed, transform_seed, label_seed, arrival_seed = (
            int(value) for value in root.integers(0, 2**31 - 1, size=4)
        )
        base = self._base_dataset(size, data_seed)
        features = np.array(base.features[:size], dtype=float)
        labels = np.array(base.labels[:size])

        if self.feature_drift > 0.0:
            transform_rng = np.random.default_rng(transform_seed)
            direction = transform_rng.normal(size=self.n_features)
            direction /= np.linalg.norm(direction)
            ramp = np.linspace(0.0, 1.0, size)
            features = features + self.feature_drift * ramp[:, None] * direction[None, :]

        label_rng = np.random.default_rng(label_seed)
        labeled = label_rng.random(size) < self.label_fraction
        available = np.where(labeled, np.arange(size) + self.label_delay, NEVER_LABELED)

        arrival_rng = np.random.default_rng(arrival_seed)
        if self.arrival == "poisson":
            gaps = PoissonArrival(rate=1.0).gaps(size, arrival_rng)
        elif self.arrival == "bursty":
            gaps = BurstArrival(
                quiet_length=self.burst_quiet,
                burst_length=self.burst_length,
                burst_factor=self.burst_factor,
            ).gaps(size, arrival_rng)
        else:
            gaps = ConstantArrival(gap=1.0).gaps(size, arrival_rng)
        budgets = gaps_to_node_budgets(gaps, self.nodes_per_time_unit, self.max_budget)
        return ScenarioStream(
            spec=self,
            size_scale=float(size_scale),
            features=features,
            labels=labels,
            budgets=budgets.astype(np.int64),
            arrival_times=np.cumsum(gaps),
            label_available_at=available.astype(np.int64),
        )


@dataclass(frozen=True)
class ScenarioStream:
    """A materialised scenario: aligned per-object arrays plus provenance.

    ``label_available_at[t]`` is the stream position from which object ``t``'s
    true label may be used for training (``t + label_delay``), or
    :data:`NEVER_LABELED` for objects the partial-label transform left
    unlabelled; evaluation always scores against ``labels[t]`` regardless —
    the evaluator knows the truth even when the classifier must not.
    """

    spec: ScenarioSpec
    size_scale: float
    features: np.ndarray
    labels: np.ndarray
    budgets: np.ndarray
    arrival_times: np.ndarray
    label_available_at: np.ndarray

    @property
    def size(self) -> int:
        """Number of stream objects."""
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Dimensionality of the feature vectors."""
        return int(self.features.shape[1])

    @property
    def labeled_count(self) -> int:
        """Number of objects whose label is (eventually) revealed for training."""
        return int(np.sum(self.label_available_at != NEVER_LABELED))

    def label_deliveries(self) -> List[Tuple[int, int]]:
        """The label delivery schedule as sorted ``(available_at, object_index)`` pairs.

        Every labelled object appears exactly once — the conservation
        invariant the reproducibility tests pin: delaying or withholding
        labels reorders or removes deliveries but never duplicates them.
        Deliveries scheduled past the end of the stream are included (a
        finite replay simply ends before they happen).
        """
        indexes = np.nonzero(self.label_available_at != NEVER_LABELED)[0]
        schedule = [(int(self.label_available_at[i]), int(i)) for i in indexes]
        schedule.sort()
        return schedule

    def fingerprint(self) -> str:
        """Order-sensitive SHA-256 over the stream's full observable content.

        Covers the spec (serialized), scale, exact float bits of every
        feature, the labels, the per-object anytime budgets and the label
        delivery schedule — two builds agree on the fingerprint iff they
        would drive a battery run identically.
        """
        digest = hashlib.sha256()
        digest.update(json.dumps(self.spec.to_dict(), sort_keys=True).encode("utf-8"))
        digest.update(np.float64(self.size_scale).tobytes())
        digest.update(np.ascontiguousarray(self.features, dtype=np.float64).tobytes())
        digest.update(repr(self.labels.tolist()).encode("utf-8"))
        digest.update(np.ascontiguousarray(self.budgets, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(self.label_available_at, dtype=np.int64).tobytes())
        return digest.hexdigest()
