"""The built-in scenario registry.

Eight named, seeded scenarios stress the axes along which anytime stream
classifiers differ (paper §5 evaluates varying stream speed and drift; the
battery extends the grid): dimensionality, class-count extremes, class
imbalance, label latency, label scarcity, covariate vs. concept drift, and
adversarial arrival bursts.  Every scenario is an immutable
:class:`~repro.scenarios.spec.ScenarioSpec`, so its full provenance — every
dial plus the seed — is one ``to_dict()`` call away and is embedded in the
published report.

User code can add its own scenarios with :func:`register_scenario`; the
battery runner and report generator only ever go through
:func:`get_scenario` / :func:`build_scenario`, so registered scenarios are
first-class citizens everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .spec import ScenarioSpec, ScenarioStream

__all__ = [
    "BUILTIN_SCENARIOS",
    "SMOKE_SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "build_scenario",
]


#: The shipped scenario battery, keyed by scenario name.
BUILTIN_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="highdim_kernels",
        description=(
            "120-dimensional curved-manifold classes from a 6-dimensional latent space: "
            "kernel densities must stay finite where linear-space pdf sums underflow."
        ),
        size=900,
        n_classes=8,
        n_features=120,
        seed=101,
        generator="curves",
        latent_dim=6,
        class_separation=1.4,
        noise_scale=0.25,
        tags=("highdim", "kernels"),
    ),
    ScenarioSpec(
        name="extreme_classes",
        description=(
            "1000-class stream with only a handful of observations per class: "
            "extreme classification where most classes first appear mid-stream."
        ),
        size=4000,
        n_classes=1000,
        n_features=16,
        seed=102,
        generator="drift",
        drift="none",
        tags=("extreme-classification", "new-classes"),
    ),
    ScenarioSpec(
        name="heavy_imbalance",
        description=(
            "Five classes with priors 80/12/5/2/1 percent: the rarest class "
            "contributes a percent of the stream and must not be drowned out."
        ),
        size=1200,
        n_classes=5,
        n_features=12,
        seed=103,
        generator="curves",
        latent_dim=4,
        class_separation=1.2,
        class_weights=(0.80, 0.12, 0.05, 0.02, 0.01),
        tags=("imbalance",),
    ),
    ScenarioSpec(
        name="label_delay",
        description=(
            "Sudden-drift stream whose true labels arrive 150 objects late — "
            "verification latency between classification and ground truth."
        ),
        size=1200,
        n_classes=4,
        n_features=8,
        seed=104,
        generator="drift",
        drift="sudden",
        n_segments=3,
        label_delay=150,
        tags=("label-delay", "drift"),
    ),
    ScenarioSpec(
        name="partial_labels",
        description=(
            "Incremental-drift stream where only 15 percent of objects are ever "
            "labelled; the classifier must track drift from scarce supervision."
        ),
        size=1200,
        n_classes=4,
        n_features=8,
        seed=105,
        generator="drift",
        drift="incremental",
        drift_speed=0.02,
        label_fraction=0.15,
        tags=("partial-labels", "drift"),
    ),
    ScenarioSpec(
        name="feature_drift",
        description=(
            "Stationary class structure riding a strong covariate shift: the whole "
            "cloud migrates six noise-widths along a seeded direction (contrast "
            "with concept_drift, which reassigns class regions in place)."
        ),
        size=1000,
        n_classes=3,
        n_features=8,
        seed=106,
        generator="drift",
        drift="none",
        feature_drift=6.0,
        tags=("feature-drift",),
    ),
    ScenarioSpec(
        name="concept_drift",
        description=(
            "Sudden concept drift: class regions are cyclically reassigned at two "
            "segment boundaries, so yesterday's model is maximally misleading."
        ),
        size=1000,
        n_classes=3,
        n_features=8,
        seed=107,
        generator="drift",
        drift="sudden",
        n_segments=3,
        tags=("concept-drift",),
    ),
    ScenarioSpec(
        name="adversarial_bursts",
        description=(
            "Constant stream punctured by 40-object bursts arriving 50x faster: the "
            "anytime budget collapses to its floor exactly when traffic surges."
        ),
        size=1000,
        n_classes=4,
        n_features=8,
        seed=108,
        generator="drift",
        drift="none",
        arrival="bursty",
        burst_quiet=80,
        burst_length=40,
        burst_factor=50.0,
        tags=("bursts", "anytime"),
    ),
)

#: Fast representative subset exercised by tier-1 tests and the CI docs job.
SMOKE_SCENARIOS: Tuple[str, ...] = ("highdim_kernels", "heavy_imbalance", "label_delay", "adversarial_bursts")

_REGISTRY: Dict[str, ScenarioSpec] = {spec.name: spec for spec in BUILTIN_SCENARIOS}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (rejecting accidental name collisions)."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(f"scenario {spec.name!r} already registered (pass overwrite=True to replace)")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; registered: {scenario_names()}") from None


def scenario_names() -> List[str]:
    """All registered scenario names, in registration order."""
    return list(_REGISTRY.keys())


def build_scenario(name: str, size_scale: float = 1.0) -> ScenarioStream:
    """Materialise a registered scenario's stream (``get_scenario(name).build()``)."""
    return get_scenario(name).build(size_scale=size_scale)
