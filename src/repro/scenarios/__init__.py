"""Declarative, seeded stream scenarios for the anytime-classification battery.

The package has two halves: :mod:`repro.scenarios.spec` defines the
:class:`ScenarioSpec` recipe language (generator + stream transforms +
arrival process, all derived from one seed) and the materialised
:class:`ScenarioStream`; :mod:`repro.scenarios.registry` ships the built-in
battery and the registration API.  The battery runner lives in
:mod:`repro.evaluation.battery` and the published report generator in
``docs/build_scenario_report.py``.
"""

from .registry import (
    BUILTIN_SCENARIOS,
    SMOKE_SCENARIOS,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .spec import ARRIVAL_KINDS, GENERATOR_KINDS, NEVER_LABELED, ScenarioSpec, ScenarioStream

__all__ = [
    "ARRIVAL_KINDS",
    "BUILTIN_SCENARIOS",
    "GENERATOR_KINDS",
    "NEVER_LABELED",
    "SMOKE_SCENARIOS",
    "ScenarioSpec",
    "ScenarioStream",
    "build_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]
