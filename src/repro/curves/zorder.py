"""Z-order (Morton) space-filling curve.

The paper's bulk loading section uses space-filling curves in two places:

* the initial mapping of the Goldberger bulk load assigns fine components to
  coarse components "according to the z-curve order of their mean values",
* the traditional R-tree bulk loads pack leaf pages in Hilbert- or z-curve
  order.

Keys are computed on a quantised grid: each coordinate is scaled into
``[0, 2**bits)`` relative to the data's bounding box and the per-dimension bit
strings are interleaved.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["quantise", "z_value", "z_values", "z_order"]


def quantise(points: np.ndarray, bits: int) -> np.ndarray:
    """Scale points into integer grid coordinates in ``[0, 2**bits)``.

    The bounding box of the points defines the grid.  Dimensions with zero
    extent map to grid coordinate 0.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if not (1 <= bits <= 32):
        raise ValueError("bits must be between 1 and 32")
    lower = points.min(axis=0)
    upper = points.max(axis=0)
    extent = np.where(upper > lower, upper - lower, 1.0)
    scaled = (points - lower) / extent
    grid = np.floor(scaled * (2**bits - 1) + 0.5).astype(np.int64)
    return np.clip(grid, 0, 2**bits - 1)


def z_value(coordinates: Sequence[int], bits: int) -> int:
    """Morton key of one grid cell: bit-interleave the coordinates."""
    key = 0
    for bit in range(bits - 1, -1, -1):
        for coordinate in coordinates:
            key = (key << 1) | ((int(coordinate) >> bit) & 1)
    return key


def z_values(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Morton keys for every row of ``points`` (quantised to ``bits`` bits)."""
    grid = quantise(points, bits)
    return np.array([z_value(row, bits) for row in grid], dtype=object)


def z_order(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Indices that sort the points along the z-curve (stable)."""
    keys = z_values(points, bits)
    return np.array(sorted(range(len(keys)), key=lambda i: keys[i]), dtype=int)
