"""Space-filling curves (Hilbert and Z-order) used by the bulk loaders."""

from .hilbert import hilbert_index, hilbert_order, hilbert_values
from .zorder import quantise, z_order, z_value, z_values

__all__ = [
    "hilbert_index",
    "hilbert_order",
    "hilbert_values",
    "quantise",
    "z_order",
    "z_value",
    "z_values",
]
