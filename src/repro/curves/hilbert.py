"""d-dimensional Hilbert space-filling curve.

Used by the Hilbert bulk load (paper §3.1): "the Hilbert value for each
training set item is calculated, next the items are ordered according to their
Hilbert value and put into leaf nodes w.r.t. the page size".

The transformation between grid coordinates and the Hilbert index follows the
classic algorithm of Skilling (2004), "Programming the Hilbert curve", which
maps a point on a ``2**bits`` grid in ``d`` dimensions to its position along
the curve using only bit operations (implemented here on Python integers, so
any number of dimensions/bits is supported).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .zorder import quantise

__all__ = ["hilbert_index", "hilbert_values", "hilbert_order"]


def _transpose_to_axes(transpose: list[int], bits: int) -> list[int]:
    """Inverse of the Skilling transform (Hilbert transpose -> grid axes)."""
    dimensions = len(transpose)
    x = list(transpose)
    n = 2 << (bits - 1)
    # Gray decode by H ^ (H/2)
    t = x[dimensions - 1] >> 1
    for i in range(dimensions - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work
    q = 2
    while q != n:
        p = q - 1
        for i in range(dimensions - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _axes_to_transpose(axes: Sequence[int], bits: int) -> list[int]:
    """Skilling transform: grid axes -> Hilbert transpose form."""
    dimensions = len(axes)
    x = [int(a) for a in axes]
    m = 1 << (bits - 1)
    # Inverse undo excess work
    q = m
    while q > 1:
        p = q - 1
        for i in range(dimensions):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, dimensions):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dimensions - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dimensions):
        x[i] ^= t
    return x


def _transpose_to_index(transpose: Sequence[int], bits: int) -> int:
    """Interleave the transpose form into a single Hilbert index."""
    index = 0
    for bit in range(bits - 1, -1, -1):
        for value in transpose:
            index = (index << 1) | ((value >> bit) & 1)
    return index


def hilbert_index(coordinates: Sequence[int], bits: int) -> int:
    """Hilbert curve index of one grid cell with ``bits`` bits per dimension."""
    if not coordinates:
        raise ValueError("coordinates must not be empty")
    if any(c < 0 or c >= (1 << bits) for c in coordinates):
        raise ValueError(f"coordinates must lie in [0, 2**{bits})")
    transpose = _axes_to_transpose(coordinates, bits)
    return _transpose_to_index(transpose, bits)


def hilbert_values(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Hilbert keys for every row of ``points`` (quantised to ``bits`` bits)."""
    grid = quantise(points, bits)
    return np.array([hilbert_index(list(row), bits) for row in grid], dtype=object)


def hilbert_order(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Indices that sort the points along the Hilbert curve (stable)."""
    keys = hilbert_values(points, bits)
    return np.array(sorted(range(len(keys)), key=lambda i: keys[i]), dtype=int)
