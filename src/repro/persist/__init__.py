"""Durable forest snapshots: a portable, versioned, pickle-free format.

``save_forest`` serializes a full :class:`~repro.core.AnytimeBayesClassifier`
— R*-tree topology, decayed cluster features with insertion timestamps, the
logical decay clock, running bandwidth statistics, priors' inputs and the
configuration — into a compact ``.npz``/JSON container; ``load_forest``
restores a forest whose predictions, refinement traces and future training
behaviour are bit-identical to the saved one.  No pickle is involved at any
point, so snapshots can be exchanged between untrusting processes (the
sharded serving engine in :mod:`repro.serving` is built on exactly that).

Snapshots additionally carry the compiled flat-forest columns
(:class:`repro.core.flat.FlatForest`) as uncompressed, memory-mappable
members: ``load_flat_forest`` opens the read-optimised twin of the same
forest without rebuilding an object graph, and ``read_flat_columns`` exposes
the raw columns for the serving engine to place in shared memory.
"""

from .snapshot import (
    FORMAT_VERSION,
    SnapshotError,
    SnapshotVersionError,
    load_flat_forest,
    load_forest,
    read_flat_columns,
    read_manifest,
    save_forest,
)

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SnapshotVersionError",
    "load_flat_forest",
    "load_forest",
    "read_flat_columns",
    "read_manifest",
    "save_forest",
]
