"""Durable forest snapshots: a portable, versioned, pickle-free format.

``save_forest`` serializes a full :class:`~repro.core.AnytimeBayesClassifier`
— R*-tree topology, decayed cluster features with insertion timestamps, the
logical decay clock, running bandwidth statistics, priors' inputs and the
configuration — into a compact ``.npz``/JSON container; ``load_forest``
restores a forest whose predictions, refinement traces and future training
behaviour are bit-identical to the saved one.  No pickle is involved at any
point, so snapshots can be exchanged between untrusting processes (the
sharded serving engine in :mod:`repro.serving` is built on exactly that).

Snapshots additionally carry the compiled flat-forest columns
(:class:`repro.core.flat.FlatForest`) as uncompressed, memory-mappable
members: ``load_flat_forest`` opens the read-optimised twin of the same
forest without rebuilding an object graph, and ``read_flat_columns`` exposes
the raw columns for the serving engine to place in shared memory.

Multi-tenant deployments additionally persist a *tenant manifest*
(:mod:`repro.persist.tenants`): a small versioned JSON catalogue mapping
tenant names to snapshot paths and per-tenant serving policies, plus an
optional shared global-prior snapshot — the durable half of
:class:`repro.serving.ModelRegistry`.
"""

from .snapshot import (
    FORMAT_VERSION,
    SnapshotError,
    SnapshotVersionError,
    load_flat_forest,
    load_forest,
    read_flat_columns,
    read_manifest,
    save_forest,
)
from .tenants import (
    TENANT_MANIFEST_VERSION,
    read_tenant_manifest,
    save_tenant_manifest,
)

__all__ = [
    "FORMAT_VERSION",
    "TENANT_MANIFEST_VERSION",
    "SnapshotError",
    "SnapshotVersionError",
    "load_flat_forest",
    "load_forest",
    "read_flat_columns",
    "read_manifest",
    "read_tenant_manifest",
    "save_forest",
    "save_tenant_manifest",
]
