"""Snapshot container format for Bayes forests.

Layout: one ``.npz`` archive (zip of ``.npy`` members, written with
``numpy.savez_compressed``) holding

* ``manifest`` — a UTF-8 JSON document (stored as a ``uint8`` array) with the
  magic string, format version, classifier-level settings (configuration,
  descent strategy, qbk k, dimension) and the per-class label tables,
* ``forest__floats`` — forest-level float state (the logical "now"),
* ``t{i}__*`` — per-class-tree arrays: the exact index topology
  (:meth:`repro.index.rstar.RStarTree.export_structure`), the
  insertion-ordered leaf buffer with per-observation timestamps, the decayed
  running ``(n, LS, SS)`` statistics, the shared Silverman bandwidth and the
  expiry bookkeeping (:meth:`repro.core.bayes_tree.BayesTree.export_state`).

Design constraints, in order:

1. **No pickle.**  Arrays are loaded with ``allow_pickle=False`` and labels
   travel through an explicit typed codec — a snapshot is safe to load even
   from an untrusted producer (it can be malformed, never executable).
2. **Bit-identical restore.**  Every float is stored verbatim (numpy arrays
   in the archive; JSON floats round-trip exactly through ``repr``), topology
   and entry order are restored 1:1, and nothing is re-derived from the data.
3. **Versioned.**  ``FORMAT_VERSION`` gates the loader: snapshots from a
   different format version are rejected with :class:`SnapshotVersionError`
   instead of being misinterpreted; corrupt or truncated containers raise
   :class:`SnapshotError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Hashable, List, Optional

import numpy as np

from ..core.bayes_tree import BayesTree
from ..core.classifier import AnytimeBayesClassifier
from ..core.config import BayesTreeConfig
from ..core.descent import DESCENT_STRATEGIES

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SnapshotVersionError",
    "save_forest",
    "load_forest",
    "read_manifest",
]

#: Bumped whenever the container layout changes incompatibly.
FORMAT_VERSION = 1

_MAGIC = "repro-bayes-forest"

#: Kernel families are stored as indices into this table.
_KERNELS = ("gaussian", "epanechnikov")

#: Keys of the structure arrays produced by ``RStarTree.export_structure``.
_STRUCTURE_KEYS = (
    "node_levels",
    "node_counts",
    "dir_child",
    "dir_mbr_lower",
    "dir_mbr_upper",
    "dir_cf_n",
    "dir_cf_ls",
    "dir_cf_ss",
    "dir_last_update",
)


class SnapshotError(RuntimeError):
    """The file is not a readable forest snapshot (corrupt, truncated, alien)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot uses a format version this code does not understand."""


# -- label codec -----------------------------------------------------------------------------
#
# Labels are arbitrary hashables in the classifier API; without pickle we
# support the types that actually occur (JSON scalars, numpy scalars, tuples
# thereof) through a small typed encoding.  Numpy integer labels must restore
# as numpy integers: prediction tie-breaking sorts labels by ``repr``, and
# ``repr(np.int64(3))`` differs from ``repr(3)`` — a type-lossy round-trip
# could reorder ties and break bit-identical traces.

def _encode_label(label: Hashable) -> list:
    if label is None:
        return ["none"]
    if isinstance(label, (bool, np.bool_)):
        return ["bool", bool(label)]
    if isinstance(label, np.integer):
        return ["npint", label.dtype.name, int(label)]
    if isinstance(label, np.floating):
        return ["npfloat", label.dtype.name, float(label)]
    if isinstance(label, int):
        return ["int", int(label)]
    if isinstance(label, float):
        return ["float", label]
    if isinstance(label, str):
        return ["str", label]
    if isinstance(label, tuple):
        return ["tuple", [_encode_label(item) for item in label]]
    raise SnapshotError(
        f"label {label!r} of type {type(label).__name__} cannot be serialized "
        "without pickle; use str/int/float/bool/None/numpy scalars or tuples thereof"
    )


def _decode_label(spec: list) -> Hashable:
    kind = spec[0]
    if kind == "none":
        return None
    if kind == "bool":
        return bool(spec[1])
    if kind == "int":
        return int(spec[1])
    if kind == "float":
        return float(spec[1])
    if kind == "str":
        return str(spec[1])
    if kind == "npint" or kind == "npfloat":
        return np.dtype(spec[1]).type(spec[2])
    if kind == "tuple":
        return tuple(_decode_label(item) for item in spec[1])
    raise SnapshotError(f"unknown label encoding {spec!r}")


# -- saving -----------------------------------------------------------------------------------

def save_forest(classifier: AnytimeBayesClassifier, path) -> Path:
    """Serialize a fitted forest into the snapshot container at ``path``.

    Returns the path written.  Raises :class:`SnapshotError` for classifiers
    that cannot be represented (unfitted, custom descent strategies outside
    the registry, non-serializable labels).
    """
    if not classifier.is_fitted or classifier.dimension is None:
        raise SnapshotError("cannot snapshot an unfitted classifier")
    descent_name = getattr(classifier.descent, "name", None)
    if descent_name not in DESCENT_STRATEGIES:
        raise SnapshotError(
            f"descent strategy {classifier.descent!r} is not in the registry "
            f"{DESCENT_STRATEGIES}; snapshots only carry registered strategies"
        )

    arrays: Dict[str, np.ndarray] = {}
    classes: List[list] = []
    trees_meta: List[dict] = []
    for index, (label, tree) in enumerate(classifier.trees.items()):
        state = tree.export_state()
        prefix = f"t{index}__"
        classes.append(_encode_label(label))
        for key in _STRUCTURE_KEYS:
            arrays[prefix + key] = state["structure"][key]
        arrays[prefix + "leaf_ref"] = state["leaf_ref"]
        arrays[prefix + "leaf_points"] = state["leaf_points"]
        arrays[prefix + "leaf_times"] = state["leaf_times"]
        arrays[prefix + "floats"] = np.array(
            [
                state["clock_now"],
                state["stats_n"],
                state["stats_last_update"],
                state["last_expiry_sweep"],
            ],
            dtype=float,
        )
        arrays[prefix + "stats_ls"] = state["stats_ls"]
        arrays[prefix + "stats_ss"] = state["stats_ss"]
        if state["stats_origin"] is not None:
            arrays[prefix + "stats_origin"] = state["stats_origin"]
        if state["bandwidth"] is not None:
            arrays[prefix + "bandwidth"] = state["bandwidth"]

        count = state["leaf_points"].shape[0]
        label_table: List[list] = []
        label_keys: Dict[str, int] = {}
        label_indices = np.full(count, -1, dtype=np.int64)
        for row, leaf_label in enumerate(state["leaf_labels"]):
            if leaf_label is None:
                continue
            encoded = _encode_label(leaf_label)
            key = json.dumps(encoded)
            position = label_keys.get(key)
            if position is None:
                position = len(label_table)
                label_keys[key] = position
                label_table.append(encoded)
            label_indices[row] = position
        arrays[prefix + "leaf_labels"] = label_indices
        try:
            kernel_indices = np.array(
                [_KERNELS.index(kernel) for kernel in state["leaf_kernels"]], dtype=np.int8
            )
        except ValueError as error:
            raise SnapshotError(f"unknown kernel family in tree {label!r}") from error
        arrays[prefix + "leaf_kernels"] = kernel_indices
        explicit = [bw for bw in state["leaf_bandwidths"] if bw is not None]
        if explicit:
            mask = np.array([bw is not None for bw in state["leaf_bandwidths"]], dtype=bool)
            arrays[prefix + "leaf_bw_mask"] = mask
            arrays[prefix + "leaf_bw_values"] = np.stack(explicit).astype(float)
        trees_meta.append({"n": int(state["n"]), "label_table": label_table})

    manifest = {
        "magic": _MAGIC,
        "format_version": FORMAT_VERSION,
        "dimension": int(classifier.dimension),
        "descent": descent_name,
        "qbk_k": classifier.qbk_k,
        "config": classifier.config.to_dict(),
        "classes": classes,
        "trees": trees_meta,
    }
    arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    arrays["forest__floats"] = np.array([classifier._now], dtype=float)

    path = Path(path)
    # savez appends ".npz" to bare filenames; writing through a file object
    # keeps the caller's path verbatim.
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


# -- loading ----------------------------------------------------------------------------------

def _parse_manifest(data) -> dict:
    if "manifest" not in data.files:
        raise SnapshotError("not a forest snapshot (no manifest member)")
    try:
        manifest = json.loads(bytes(data["manifest"]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise SnapshotError(f"unreadable snapshot manifest: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("magic") != _MAGIC:
        raise SnapshotError("not a forest snapshot (wrong magic)")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


def read_manifest(path) -> dict:
    """Read and decode only the snapshot manifest (no tree reconstruction).

    Returns a dict with ``dimension``, ``descent``, ``qbk_k``, the raw
    ``config`` dict, ``classes`` (decoded labels, forest order) and
    ``class_counts`` (stored observations per class).  The serving front-end
    uses this to plan shard assignments without paying for a full restore.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            manifest = _parse_manifest(data)
        # Field extraction stays inside the typed-error envelope: a manifest
        # with valid magic/version but missing fields is still corrupt.
        return {
            "format_version": manifest["format_version"],
            "dimension": manifest["dimension"],
            "descent": manifest["descent"],
            "qbk_k": manifest["qbk_k"],
            "config": manifest["config"],
            "classes": [_decode_label(spec) for spec in manifest["classes"]],
            "class_counts": [tree["n"] for tree in manifest["trees"]],
        }
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error


def _tree_state(data, index: int, meta: dict, dimension: int) -> dict:
    prefix = f"t{index}__"
    floats = np.asarray(data[prefix + "floats"], dtype=float)
    if floats.shape != (4,):
        raise SnapshotError("malformed snapshot: tree float block has wrong shape")
    points = np.asarray(data[prefix + "leaf_points"], dtype=float)
    count = points.shape[0]
    label_table = [_decode_label(spec) for spec in meta["label_table"]]
    label_indices = np.asarray(data[prefix + "leaf_labels"], dtype=np.int64)
    labels = [
        None if label_indices[row] < 0 else label_table[int(label_indices[row])]
        for row in range(count)
    ]
    kernel_indices = np.asarray(data[prefix + "leaf_kernels"], dtype=np.int64)
    kernels = [_KERNELS[int(kernel_indices[row])] for row in range(count)]
    bandwidths: List[Optional[np.ndarray]] = [None] * count
    if prefix + "leaf_bw_mask" in data.files:
        mask = np.asarray(data[prefix + "leaf_bw_mask"], dtype=bool)
        values = np.asarray(data[prefix + "leaf_bw_values"], dtype=float)
        cursor = 0
        for row in range(count):
            if mask[row]:
                bandwidths[row] = values[cursor]
                cursor += 1
        if cursor != values.shape[0]:
            raise SnapshotError("malformed snapshot: bandwidth mask/value mismatch")
    return {
        "dimension": dimension,
        "n": int(meta["n"]),
        "structure": {key: data[prefix + key] for key in _STRUCTURE_KEYS},
        "leaf_ref": np.asarray(data[prefix + "leaf_ref"], dtype=np.int64),
        "leaf_points": points,
        "leaf_times": np.asarray(data[prefix + "leaf_times"], dtype=float),
        "leaf_labels": labels,
        "leaf_kernels": kernels,
        "leaf_bandwidths": bandwidths,
        "clock_now": float(floats[0]),
        "stats_origin": (
            np.asarray(data[prefix + "stats_origin"], dtype=float)
            if prefix + "stats_origin" in data.files
            else None
        ),
        "stats_n": float(floats[1]),
        "stats_ls": np.asarray(data[prefix + "stats_ls"], dtype=float),
        "stats_ss": np.asarray(data[prefix + "stats_ss"], dtype=float),
        "stats_last_update": float(floats[2]),
        "bandwidth": (
            np.asarray(data[prefix + "bandwidth"], dtype=float)
            if prefix + "bandwidth" in data.files
            else None
        ),
        "last_expiry_sweep": float(floats[3]),
    }


def _restore(data) -> AnytimeBayesClassifier:
    manifest = _parse_manifest(data)
    config = BayesTreeConfig.from_dict(manifest["config"])
    classifier = AnytimeBayesClassifier(
        config=config, descent=manifest["descent"], qbk_k=manifest["qbk_k"]
    )
    dimension = int(manifest["dimension"])
    classifier.dimension = dimension
    classifier._now = float(np.asarray(data["forest__floats"], dtype=float)[0])
    if len(manifest["classes"]) != len(manifest["trees"]):
        raise SnapshotError("malformed snapshot: class/tree tables disagree")
    for index, (spec, meta) in enumerate(zip(manifest["classes"], manifest["trees"])):
        label = _decode_label(spec)
        state = _tree_state(data, index, meta, dimension)
        tree = BayesTree.from_state(state, config=config)
        if len(tree.index) != state["n"]:
            raise SnapshotError("malformed snapshot: stored size disagrees with topology")
        classifier.trees[label] = tree
    classifier._invalidate_priors()
    return classifier


def load_forest(path) -> AnytimeBayesClassifier:
    """Restore a forest from a snapshot written by :func:`save_forest`.

    The restored classifier produces bit-identical predictions, refinement
    traces and (given the same subsequent stream) training behaviour as the
    saved one.  Raises :class:`SnapshotVersionError` for snapshots of another
    format version and :class:`SnapshotError` for anything unreadable.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            return _restore(data)
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error
