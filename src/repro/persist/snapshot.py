"""Snapshot container format for Bayes forests.

Layout: one ``.npz`` archive (zip of ``.npy`` members) holding

* ``manifest`` — a UTF-8 JSON document (stored as a ``uint8`` array) with the
  magic string, format version, classifier-level settings (configuration,
  descent strategy, qbk k, dimension), the per-class label tables and the
  ``flat`` flag announcing the columnar members,
* ``forest__floats`` — forest-level float state (the logical "now"),
* ``t{i}__*`` — per-class-tree arrays: the exact index topology
  (:meth:`repro.index.rstar.RStarTree.export_structure`), the
  insertion-ordered leaf buffer with per-observation timestamps, the decayed
  running ``(n, LS, SS)`` statistics, the shared Silverman bandwidth and the
  expiry bookkeeping (:meth:`repro.core.bayes_tree.BayesTree.export_state`),
* ``flat__*`` — optionally, the compiled :class:`repro.core.flat.FlatForest`
  columns (``flat__t{i}__*`` per tree plus ``flat__forest__log_priors``), a
  read-optimised twin of the same forest for serving.

Since format version 2 the archive members are **stored uncompressed**
(``numpy.savez``): every ``.npy`` member sits verbatim inside the zip, so
:func:`read_flat_columns` can hand out ``numpy.memmap`` views straight into
the file — a serving worker "loads" a multi-gigabyte forest by mapping pages,
not by copying them.  ``numpy.load`` reads compressed members too, so
externally recompressed snapshots still load (the mmap fast path simply falls
back to a plain read).

Design constraints, in order:

1. **No pickle.**  Arrays are loaded with ``allow_pickle=False`` and labels
   travel through an explicit typed codec — a snapshot is safe to load even
   from an untrusted producer (it can be malformed, never executable).
2. **Bit-identical restore.**  Every float is stored verbatim (numpy arrays
   in the archive; JSON floats round-trip exactly through ``repr``), topology
   and entry order are restored 1:1, and nothing is re-derived from the data.
   The flat columns are held to the same bar: a forest restored through
   :func:`load_flat_forest` produces refinement traces hash-identical to the
   live forest the snapshot was saved from.
3. **Versioned.**  ``FORMAT_VERSION`` gates the loader: snapshots from a
   different format version are rejected with :class:`SnapshotVersionError`
   instead of being misinterpreted; corrupt or truncated containers raise
   :class:`SnapshotError`.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

from ..core.bayes_tree import BayesTree
from ..core.classifier import AnytimeBayesClassifier
from ..core.config import BayesTreeConfig
from ..core.descent import DESCENT_STRATEGIES
from ..core.flat import FlatForest

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SnapshotVersionError",
    "save_forest",
    "load_forest",
    "load_flat_forest",
    "read_flat_columns",
    "read_manifest",
]

#: Bumped whenever the container layout changes incompatibly.
#: Version 2: flat forest columns (``flat__*`` members, ``flat`` manifest
#: flag) and uncompressed (mmap-able) archive members.
FORMAT_VERSION = 2

_MAGIC = "repro-bayes-forest"

#: Member-name prefix of the compiled flat-forest columns.
_FLAT_PREFIX = "flat__"

#: Kernel families are stored as indices into this table.
_KERNELS = ("gaussian", "epanechnikov")

#: Keys of the structure arrays produced by ``RStarTree.export_structure``.
_STRUCTURE_KEYS = (
    "node_levels",
    "node_counts",
    "dir_child",
    "dir_mbr_lower",
    "dir_mbr_upper",
    "dir_cf_n",
    "dir_cf_ls",
    "dir_cf_ss",
    "dir_last_update",
)


class SnapshotError(RuntimeError):
    """The file is not a readable forest snapshot (corrupt, truncated, alien)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot uses a format version this code does not understand."""


# -- label codec -----------------------------------------------------------------------------
#
# Labels are arbitrary hashables in the classifier API; without pickle we
# support the types that actually occur (JSON scalars, numpy scalars, tuples
# thereof) through a small typed encoding.  Numpy integer labels must restore
# as numpy integers: prediction tie-breaking sorts labels by ``repr``, and
# ``repr(np.int64(3))`` differs from ``repr(3)`` — a type-lossy round-trip
# could reorder ties and break bit-identical traces.

def _encode_label(label: Hashable) -> list:
    if label is None:
        return ["none"]
    if isinstance(label, (bool, np.bool_)):
        return ["bool", bool(label)]
    if isinstance(label, np.integer):
        return ["npint", label.dtype.name, int(label)]
    if isinstance(label, np.floating):
        return ["npfloat", label.dtype.name, float(label)]
    if isinstance(label, int):
        return ["int", int(label)]
    if isinstance(label, float):
        return ["float", label]
    if isinstance(label, str):
        return ["str", label]
    if isinstance(label, tuple):
        return ["tuple", [_encode_label(item) for item in label]]
    raise SnapshotError(
        f"label {label!r} of type {type(label).__name__} cannot be serialized "
        "without pickle; use str/int/float/bool/None/numpy scalars or tuples thereof"
    )


def _decode_label(spec: list) -> Hashable:
    kind = spec[0]
    if kind == "none":
        return None
    if kind == "bool":
        return bool(spec[1])
    if kind == "int":
        return int(spec[1])
    if kind == "float":
        return float(spec[1])
    if kind == "str":
        return str(spec[1])
    if kind == "npint" or kind == "npfloat":
        return np.dtype(spec[1]).type(spec[2])
    if kind == "tuple":
        return tuple(_decode_label(item) for item in spec[1])
    raise SnapshotError(f"unknown label encoding {spec!r}")


# -- saving -----------------------------------------------------------------------------------

def save_forest(
    classifier: AnytimeBayesClassifier, path: "str | Path", include_flat: bool = True
) -> Path:
    """Serialize a fitted forest into the snapshot container at ``path``.

    With ``include_flat`` (the default) the snapshot additionally carries the
    compiled flat-forest columns, which serving loads zero-copy via
    :func:`load_flat_forest`; ``include_flat=False`` writes the object-graph
    state only (smaller file, serving recompiles on load).

    Returns the path written.  Raises :class:`SnapshotError` for classifiers
    that cannot be represented (unfitted, custom descent strategies outside
    the registry, non-serializable labels).
    """
    if not classifier.is_fitted or classifier.dimension is None:
        raise SnapshotError("cannot snapshot an unfitted classifier")
    descent_name = getattr(classifier.descent, "name", None)
    if descent_name not in DESCENT_STRATEGIES:
        raise SnapshotError(
            f"descent strategy {classifier.descent!r} is not in the registry "
            f"{DESCENT_STRATEGIES}; snapshots only carry registered strategies"
        )

    arrays: Dict[str, np.ndarray] = {}
    classes: List[list] = []
    trees_meta: List[dict] = []
    for index, (label, tree) in enumerate(classifier.trees.items()):
        state = tree.export_state()
        prefix = f"t{index}__"
        classes.append(_encode_label(label))
        for key in _STRUCTURE_KEYS:
            arrays[prefix + key] = state["structure"][key]
        arrays[prefix + "leaf_ref"] = state["leaf_ref"]
        arrays[prefix + "leaf_points"] = state["leaf_points"]
        arrays[prefix + "leaf_times"] = state["leaf_times"]
        arrays[prefix + "floats"] = np.array(
            [
                state["clock_now"],
                state["stats_n"],
                state["stats_last_update"],
                state["last_expiry_sweep"],
            ],
            dtype=float,
        )
        arrays[prefix + "stats_ls"] = state["stats_ls"]
        arrays[prefix + "stats_ss"] = state["stats_ss"]
        if state["stats_origin"] is not None:
            arrays[prefix + "stats_origin"] = state["stats_origin"]
        if state["bandwidth"] is not None:
            arrays[prefix + "bandwidth"] = state["bandwidth"]

        count = state["leaf_points"].shape[0]
        label_table: List[list] = []
        label_keys: Dict[str, int] = {}
        label_indices = np.full(count, -1, dtype=np.int64)
        for row, leaf_label in enumerate(state["leaf_labels"]):
            if leaf_label is None:
                continue
            encoded = _encode_label(leaf_label)
            key = json.dumps(encoded)
            position = label_keys.get(key)
            if position is None:
                position = len(label_table)
                label_keys[key] = position
                label_table.append(encoded)
            label_indices[row] = position
        arrays[prefix + "leaf_labels"] = label_indices
        try:
            kernel_indices = np.array(
                [_KERNELS.index(kernel) for kernel in state["leaf_kernels"]], dtype=np.int8
            )
        except ValueError as error:
            raise SnapshotError(f"unknown kernel family in tree {label!r}") from error
        arrays[prefix + "leaf_kernels"] = kernel_indices
        explicit = [bw for bw in state["leaf_bandwidths"] if bw is not None]
        if explicit:
            mask = np.array([bw is not None for bw in state["leaf_bandwidths"]], dtype=bool)
            arrays[prefix + "leaf_bw_mask"] = mask
            arrays[prefix + "leaf_bw_values"] = np.stack(explicit).astype(float)
        trees_meta.append({"n": int(state["n"]), "label_table": label_table})

    if include_flat:
        # Compile the read-optimised columnar twin and store it alongside the
        # object-graph state.  ``FlatForest.from_classifier`` iterates
        # ``classifier.trees`` in the same order as the loop above, so the
        # ``flat__t{i}__`` indices align with the manifest's class table.
        flat = FlatForest.from_classifier(classifier)
        for name, array in flat.to_columns().items():
            arrays[_FLAT_PREFIX + name] = np.ascontiguousarray(array)

    manifest = {
        "magic": _MAGIC,
        "format_version": FORMAT_VERSION,
        "dimension": int(classifier.dimension),
        "descent": descent_name,
        "qbk_k": classifier.qbk_k,
        "config": classifier.config.to_dict(),
        "classes": classes,
        "trees": trees_meta,
        "flat": bool(include_flat),
    }
    arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    arrays["forest__floats"] = np.array([classifier._now], dtype=float)

    path = Path(path)
    # savez appends ".npz" to bare filenames; writing through a file object
    # keeps the caller's path verbatim.  Members are deliberately
    # uncompressed (STORED) so loaders can memory-map them in place.
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    return path


# -- loading ----------------------------------------------------------------------------------

def _parse_manifest(data: Any) -> dict:
    if "manifest" not in data.files:
        raise SnapshotError("not a forest snapshot (no manifest member)")
    try:
        manifest = json.loads(bytes(data["manifest"]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise SnapshotError(f"unreadable snapshot manifest: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("magic") != _MAGIC:
        raise SnapshotError("not a forest snapshot (wrong magic)")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


def read_manifest(path: "str | Path") -> dict:
    """Read and decode only the snapshot manifest (no tree reconstruction).

    Returns a dict with ``dimension``, ``descent``, ``qbk_k``, the raw
    ``config`` dict, ``classes`` (decoded labels, forest order) and
    ``class_counts`` (stored observations per class).  The serving front-end
    uses this to plan shard assignments without paying for a full restore.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            manifest = _parse_manifest(data)
        # Field extraction stays inside the typed-error envelope: a manifest
        # with valid magic/version but missing fields is still corrupt.
        return {
            "format_version": manifest["format_version"],
            "dimension": manifest["dimension"],
            "descent": manifest["descent"],
            "qbk_k": manifest["qbk_k"],
            "config": manifest["config"],
            "classes": [_decode_label(spec) for spec in manifest["classes"]],
            "class_counts": [tree["n"] for tree in manifest["trees"]],
            "has_flat": bool(manifest.get("flat", False)),
        }
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error


def _tree_state(data: Any, index: int, meta: dict, dimension: int) -> dict:
    prefix = f"t{index}__"
    floats = np.asarray(data[prefix + "floats"], dtype=float)
    if floats.shape != (4,):
        raise SnapshotError("malformed snapshot: tree float block has wrong shape")
    points = np.asarray(data[prefix + "leaf_points"], dtype=float)
    count = points.shape[0]
    label_table = [_decode_label(spec) for spec in meta["label_table"]]
    label_indices = np.asarray(data[prefix + "leaf_labels"], dtype=np.int64)
    labels = [
        None if label_indices[row] < 0 else label_table[int(label_indices[row])]
        for row in range(count)
    ]
    kernel_indices = np.asarray(data[prefix + "leaf_kernels"], dtype=np.int64)
    kernels = [_KERNELS[int(kernel_indices[row])] for row in range(count)]
    bandwidths: List[Optional[np.ndarray]] = [None] * count
    if prefix + "leaf_bw_mask" in data.files:
        mask = np.asarray(data[prefix + "leaf_bw_mask"], dtype=bool)
        values = np.asarray(data[prefix + "leaf_bw_values"], dtype=float)
        cursor = 0
        for row in range(count):
            if mask[row]:
                bandwidths[row] = values[cursor]
                cursor += 1
        if cursor != values.shape[0]:
            raise SnapshotError("malformed snapshot: bandwidth mask/value mismatch")
    return {
        "dimension": dimension,
        "n": int(meta["n"]),
        "structure": {key: data[prefix + key] for key in _STRUCTURE_KEYS},
        "leaf_ref": np.asarray(data[prefix + "leaf_ref"], dtype=np.int64),
        "leaf_points": points,
        "leaf_times": np.asarray(data[prefix + "leaf_times"], dtype=float),
        "leaf_labels": labels,
        "leaf_kernels": kernels,
        "leaf_bandwidths": bandwidths,
        "clock_now": float(floats[0]),
        "stats_origin": (
            np.asarray(data[prefix + "stats_origin"], dtype=float)
            if prefix + "stats_origin" in data.files
            else None
        ),
        "stats_n": float(floats[1]),
        "stats_ls": np.asarray(data[prefix + "stats_ls"], dtype=float),
        "stats_ss": np.asarray(data[prefix + "stats_ss"], dtype=float),
        "stats_last_update": float(floats[2]),
        "bandwidth": (
            np.asarray(data[prefix + "bandwidth"], dtype=float)
            if prefix + "bandwidth" in data.files
            else None
        ),
        "last_expiry_sweep": float(floats[3]),
    }


def _restore(data: Any) -> AnytimeBayesClassifier:
    manifest = _parse_manifest(data)
    config = BayesTreeConfig.from_dict(manifest["config"])
    classifier = AnytimeBayesClassifier(
        config=config, descent=manifest["descent"], qbk_k=manifest["qbk_k"]
    )
    dimension = int(manifest["dimension"])
    classifier.dimension = dimension
    classifier._now = float(np.asarray(data["forest__floats"], dtype=float)[0])
    if len(manifest["classes"]) != len(manifest["trees"]):
        raise SnapshotError("malformed snapshot: class/tree tables disagree")
    for index, (spec, meta) in enumerate(zip(manifest["classes"], manifest["trees"])):
        label = _decode_label(spec)
        state = _tree_state(data, index, meta, dimension)
        tree = BayesTree.from_state(state, config=config)
        if len(tree.index) != state["n"]:
            raise SnapshotError("malformed snapshot: stored size disagrees with topology")
        classifier.trees[label] = tree
    classifier._invalidate_priors()
    return classifier


def _member_memmap(path: "str | Path", member: str) -> Optional[np.ndarray]:
    """Memory-map one uncompressed ``.npy`` member inside the ``.npz`` zip.

    Returns a read-only ``np.memmap`` view into the snapshot file, or ``None``
    when the member cannot be mapped (compressed, Fortran-ordered, object
    dtype, unknown npy version) — callers fall back to a plain copying read.
    The offset arithmetic walks the zip *local* file header (30 fixed bytes +
    name + extra field; the extra field may differ from the central
    directory's copy) and then the npy header, after which the file cursor
    sits exactly on the raw array bytes.
    """
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member + ".npy")
        except KeyError:
            return None
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        with open(path, "rb") as handle:
            handle.seek(info.header_offset)
            header = handle.read(30)
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                return None
            name_length = int.from_bytes(header[26:28], "little")
            extra_length = int.from_bytes(header[28:30], "little")
            handle.seek(info.header_offset + 30 + name_length + extra_length)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
            if fortran or dtype.hasobject:
                return None
            offset = handle.tell()
    return np.memmap(path, dtype=dtype, mode="r", shape=shape, offset=offset)


def read_flat_columns(path: "str | Path", mmap: bool = True) -> Dict[str, np.ndarray]:
    """Read the flat-forest columns of a snapshot (``flat__`` prefix stripped).

    With ``mmap`` (the default) every uncompressed member is returned as a
    read-only memory map into the snapshot file — opening a multi-gigabyte
    forest touches no data pages until they are actually queried.  Members
    that cannot be mapped are read normally.  Raises :class:`SnapshotError`
    when the snapshot carries no flat columns or is unreadable.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            manifest = _parse_manifest(data)
            if not manifest.get("flat", False):
                raise SnapshotError(
                    f"snapshot {path} carries no flat forest columns "
                    "(saved with include_flat=False?)"
                )
            names = [name for name in data.files if name.startswith(_FLAT_PREFIX)]
            if not mmap:
                return {name[len(_FLAT_PREFIX) :]: data[name] for name in names}
        columns: Dict[str, np.ndarray] = {}
        unmapped: List[str] = []
        for name in names:
            view = _member_memmap(path, name)
            if view is None:
                unmapped.append(name)
            else:
                columns[name[len(_FLAT_PREFIX) :]] = view
        if unmapped:
            with np.load(path, allow_pickle=False) as data:
                for name in unmapped:
                    columns[name[len(_FLAT_PREFIX) :]] = data[name]
        return columns
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error


def load_flat_forest(path: "str | Path", mmap: bool = True) -> FlatForest:
    """Restore the compiled flat forest from a snapshot (zero-copy capable).

    The returned :class:`FlatForest` serves the full prediction surface with
    refinement traces hash-identical to :func:`load_forest` of the same
    snapshot, but its columns are (by default) memory-mapped views into the
    file rather than rebuilt object graphs — this is the milliseconds-order
    warm-start path of the serving engine.  Raises
    :class:`SnapshotVersionError` / :class:`SnapshotError` like the other
    loaders, including for structurally inconsistent flat columns.
    """
    try:
        info = read_manifest(path)
        columns = read_flat_columns(path, mmap=mmap)
        return FlatForest.from_columns(
            columns,
            labels=info["classes"],
            descent=info["descent"],
            qbk_k=info["qbk_k"],
            dimension=int(info["dimension"]),
        )
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error


def load_forest(path: "str | Path") -> AnytimeBayesClassifier:
    """Restore a forest from a snapshot written by :func:`save_forest`.

    The restored classifier produces bit-identical predictions, refinement
    traces and (given the same subsequent stream) training behaviour as the
    saved one.  Raises :class:`SnapshotVersionError` for snapshots of another
    format version and :class:`SnapshotError` for anything unreadable.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            return _restore(data)
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error
