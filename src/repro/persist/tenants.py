"""Tenant manifest: a durable, versioned catalogue of per-tenant snapshots.

A multi-tenant deployment is a set of forest snapshots plus routing facts —
which tenant maps to which container, which per-tenant serving policy (budget
clamp, cold-start behaviour) applies, and which shared snapshot serves as the
global prior for tenants that have no model yet.  This module persists that
catalogue as one small JSON document next to the snapshots themselves, in the
same spirit as the snapshot format: versioned, validated on read, and
pickle-free so it can be exchanged between untrusting processes.

Shape (``TENANT_MANIFEST_VERSION`` 1)::

    {
      "magic": "repro-tenant-manifest",
      "manifest_version": 1,
      "prior_snapshot": "snapshots/global_prior.npz" | null,
      "tenants": {
        "acme": {"snapshot": "snapshots/acme.npz",
                 "policy": {"max_node_budget": 32, "weight": 2.0,
                            "max_queue_depth": 256, "requests_per_sec": 500}},
        ...
      }
    }

``snapshot`` paths are stored as written (typically relative to the manifest
file); :func:`read_tenant_manifest` resolves relative paths against the
manifest's own directory so the catalogue stays relocatable.  The policy dict
is deliberately open-ended plain JSON — :class:`repro.serving.TenantPolicy`
validates the known keys when a registry loads it (the admission-control
fields ``weight`` / ``max_queue_depth`` / ``requests_per_sec`` ride the same
dict and round-trip verbatim; manifests from before those fields existed
load unchanged with the policy defaults).

:meth:`repro.serving.ModelRegistry.from_manifest` consumes this format to
register every tenant lazily (models become resident on first use, within
the registry's LRU bounds).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Optional

from .snapshot import SnapshotError

__all__ = [
    "TENANT_MANIFEST_VERSION",
    "read_tenant_manifest",
    "save_tenant_manifest",
]

TENANT_MANIFEST_VERSION = 1

_MAGIC = "repro-tenant-manifest"


def save_tenant_manifest(
    path: "str | Path",
    tenants: Mapping[str, Mapping[str, object]],
    prior_snapshot: "str | Path | None" = None,
) -> None:
    """Write a tenant manifest document.

    Parameters
    ----------
    path:
        Where to write the JSON document.
    tenants:
        ``tenant name -> {"snapshot": path, "policy": {...}}`` mapping; the
        ``policy`` key is optional and stored verbatim (plain JSON).
    prior_snapshot:
        Optional shared global-prior snapshot used for cold-start fallback.

    Raises
    ------
    ValueError
        For an empty tenant name or an entry without a ``snapshot`` key.
    """
    catalogue: Dict[str, dict] = {}
    for name in sorted(tenants, key=str):
        entry = tenants[name]
        if not str(name):
            raise ValueError("tenant names must be non-empty strings")
        if "snapshot" not in entry:
            raise ValueError(f"tenant {name!r} entry has no 'snapshot' key")
        record: dict = {"snapshot": str(entry["snapshot"])}
        policy = entry.get("policy")
        if policy is not None:
            record["policy"] = dict(policy)  # type: ignore[call-overload]
        catalogue[str(name)] = record
    document = {
        "magic": _MAGIC,
        "manifest_version": TENANT_MANIFEST_VERSION,
        "prior_snapshot": None if prior_snapshot is None else str(prior_snapshot),
        "tenants": catalogue,
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def read_tenant_manifest(path: "str | Path") -> dict:
    """Read and validate a tenant manifest; resolve relative snapshot paths.

    Returns ``{"prior_snapshot": str | None, "tenants": {name: {"snapshot":
    str, "policy": dict}}}`` with every snapshot path made absolute against
    the manifest's directory.  Raises :class:`~repro.persist.SnapshotError`
    on unreadable, version-mismatched or structurally invalid documents —
    the same typed-error envelope the snapshot readers use.
    """
    manifest_path = Path(path)
    try:
        document = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as error:
        raise SnapshotError(f"unreadable tenant manifest {path}: {error}") from error
    if not isinstance(document, dict) or document.get("magic") != _MAGIC:
        raise SnapshotError(f"{path} is not a tenant manifest (wrong magic)")
    version = document.get("manifest_version")
    if version != TENANT_MANIFEST_VERSION:
        raise SnapshotError(
            f"tenant manifest version {version!r} is not supported "
            f"(this build reads version {TENANT_MANIFEST_VERSION})"
        )
    tenants = document.get("tenants")
    if not isinstance(tenants, dict):
        raise SnapshotError(f"tenant manifest {path} has no 'tenants' mapping")
    base = manifest_path.resolve().parent

    def _resolve(snapshot: object) -> str:
        candidate = Path(str(snapshot))
        return str(candidate if candidate.is_absolute() else base / candidate)

    catalogue: Dict[str, dict] = {}
    for name, entry in tenants.items():
        if not isinstance(entry, dict) or "snapshot" not in entry:
            raise SnapshotError(
                f"tenant manifest {path}: entry for {name!r} must be a dict "
                "with a 'snapshot' key"
            )
        policy = entry.get("policy", {})
        if not isinstance(policy, dict):
            raise SnapshotError(f"tenant manifest {path}: policy for {name!r} must be a dict")
        catalogue[str(name)] = {"snapshot": _resolve(entry["snapshot"]), "policy": dict(policy)}
    prior: Optional[str] = None
    if document.get("prior_snapshot") is not None:
        prior = _resolve(document["prior_snapshot"])
    return {"prior_snapshot": prior, "tenants": catalogue}
