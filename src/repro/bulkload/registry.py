"""Registry mapping the paper's bulk-loading names to loader classes."""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from ..core.config import BayesTreeConfig
from .base import BulkLoader
from .em_topdown import EMTopDownBulkLoader
from .goldberger import GoldbergerBulkLoader
from .hilbert import HilbertBulkLoader
from .iterative import IterativeInsertionLoader
from .str_pack import STRBulkLoader
from .zcurve import ZCurveBulkLoader

__all__ = ["BULK_LOADERS", "make_bulk_loader"]

#: Name -> loader class.  The names match the labels used in the paper's
#: figures ("Iterativ", "Hilbert", "Goldberger", "EMTopDown") plus the two
#: additional traditional packings mentioned in §3.1.
BULK_LOADERS: Dict[str, Type[BulkLoader]] = {
    "iterative": IterativeInsertionLoader,
    "hilbert": HilbertBulkLoader,
    "zcurve": ZCurveBulkLoader,
    "str": STRBulkLoader,
    "goldberger": GoldbergerBulkLoader,
    "em_topdown": EMTopDownBulkLoader,
}


def make_bulk_loader(
    name: str, config: Optional[BayesTreeConfig] = None, **kwargs: Any
) -> BulkLoader:
    """Instantiate a bulk loader by name (see :data:`BULK_LOADERS`)."""
    try:
        loader_class = BULK_LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown bulk loader {name!r}; expected one of {sorted(BULK_LOADERS)}"
        ) from None
    return loader_class(config=config, **kwargs)
