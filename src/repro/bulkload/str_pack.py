"""Sort-Tile-Recursive (STR) bulk loading.

Mentioned in paper §3.1 among the traditional R-tree bulk loads ("other
partitioning approaches, e.g. sort-tile-recursive [14]", Leutenegger et al.,
ICDE 1997).  STR sorts the items by the first dimension, cuts them into
vertical slabs, sorts each slab by the next dimension, and recurses until the
items are tiled into pages of the leaf capacity.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..index.entry import DirectoryEntry
from ..index.rstar import RStarTree
from .base import BulkLoader, pack_entries_into_nodes, stack_levels

__all__ = ["STRBulkLoader"]


def _str_order(points: np.ndarray, capacity: int) -> List[int]:
    """Return the STR tiling order of the given points."""

    def recurse(indices: np.ndarray, dimension: int) -> List[int]:
        if len(indices) <= capacity or dimension >= points.shape[1]:
            return list(indices)
        pages = math.ceil(len(indices) / capacity)
        # Number of slabs along this dimension: pages^(1/remaining_dims)
        remaining = points.shape[1] - dimension
        slabs = max(1, math.ceil(pages ** (1.0 / remaining)))
        slab_size = math.ceil(len(indices) / slabs)
        ordered = indices[np.argsort(points[indices, dimension], kind="stable")]
        result: List[int] = []
        for start in range(0, len(ordered), slab_size):
            result.extend(recurse(ordered[start : start + slab_size], dimension + 1))
        return result

    return recurse(np.arange(points.shape[0]), 0)


class STRBulkLoader(BulkLoader):
    """Sort-Tile-Recursive packing of the leaf level, curve-free directory on top."""

    name = "str"

    def _order_entries(self, entries: List[DirectoryEntry]) -> List[DirectoryEntry]:
        means = np.array([entry.cluster_feature.mean() for entry in entries])
        order = _str_order(means, self.config.tree.max_fanout)
        return [entries[i] for i in order]

    def build_index(self, points: np.ndarray, label: Optional[object] = None) -> RStarTree:
        points = np.asarray(points, dtype=float)
        params = self.config.tree
        order = _str_order(points, params.leaf_capacity)
        leaf_entries = self._make_leaf_entries(points[order], label)
        leaf_nodes = pack_entries_into_nodes(
            leaf_entries, level=0, capacity=params.leaf_capacity, minimum=params.leaf_min
        )
        root = stack_levels(leaf_nodes, params, self._order_entries)
        return RStarTree.from_root(root, dimension=points.shape[1], params=params)
