"""Bulk loading strategies for the Bayes tree (paper §3)."""

from .base import BulkLoader, chunk_sizes, pack_entries_into_nodes, stack_levels
from .em_topdown import EMTopDownBulkLoader
from .goldberger import GoldbergerBulkLoader
from .hilbert import HilbertBulkLoader
from .iterative import IterativeInsertionLoader
from .registry import BULK_LOADERS, make_bulk_loader
from .str_pack import STRBulkLoader
from .zcurve import ZCurveBulkLoader

__all__ = [
    "BulkLoader",
    "chunk_sizes",
    "pack_entries_into_nodes",
    "stack_levels",
    "EMTopDownBulkLoader",
    "GoldbergerBulkLoader",
    "HilbertBulkLoader",
    "IterativeInsertionLoader",
    "BULK_LOADERS",
    "make_bulk_loader",
    "STRBulkLoader",
    "ZCurveBulkLoader",
]
