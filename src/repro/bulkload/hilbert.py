"""Hilbert curve bulk loading (paper §3.1).

"The bulk loading according to the Hilbert curve is a bottom up approach where
in the first step the Hilbert value for each training set item is calculated.
Next the items are ordered according to their Hilbert value and put into leaf
nodes w.r.t. the page size.  After that the corresponding entry for each
resulting node is created, i.e. MBR, cluster features (CF) and the pointer.
These steps are repeated using the mean vectors as representatives until all
entries fit into one node, the root node."
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..curves.hilbert import hilbert_order
from ..index.entry import DirectoryEntry
from ..index.rstar import RStarTree
from ..core.config import BayesTreeConfig
from .base import BulkLoader, pack_entries_into_nodes, stack_levels

__all__ = ["HilbertBulkLoader"]


class HilbertBulkLoader(BulkLoader):
    """Bottom-up packing along the Hilbert space-filling curve."""

    name = "hilbert"

    def __init__(self, config: Optional[BayesTreeConfig] = None, bits: int = 10) -> None:
        super().__init__(config)
        if not (1 <= bits <= 32):
            raise ValueError("bits must be between 1 and 32")
        self.bits = bits

    def _order_entries(self, entries: List[DirectoryEntry]) -> List[DirectoryEntry]:
        means = np.array([entry.cluster_feature.mean() for entry in entries])
        order = hilbert_order(means, bits=self.bits)
        return [entries[i] for i in order]

    def build_index(self, points: np.ndarray, label: Optional[object] = None) -> RStarTree:
        points = np.asarray(points, dtype=float)
        params = self.config.tree
        order = hilbert_order(points, bits=self.bits)
        leaf_entries = self._make_leaf_entries(points[order], label)
        leaf_nodes = pack_entries_into_nodes(
            leaf_entries, level=0, capacity=params.leaf_capacity, minimum=params.leaf_min
        )
        root = stack_levels(leaf_nodes, params, self._order_entries)
        return RStarTree.from_root(root, dimension=points.shape[1], params=params)
