"""Goldberger mixture-reduction bulk loading (paper §3.1, Def. 4).

The bulk load builds the tree bottom-up, one directory level at a time.  Given
the fine mixture ``f`` formed by the entries of the current level (initially
one kernel estimator per training item), a coarser mixture ``g`` is fitted by
iterating the two Goldberger & Roweis (NIPS 2004) steps

1. *regroup* — assign every fine component to its KL-closest coarse component,
2. *refit*   — recompute weight, mean and covariance of every coarse component
   from its assigned fine components,

until the matching distance ``d(f, g) = sum_i alpha_i min_j KL(f_i, g_j)``
stops decreasing.  The initial mapping assigns ``0.75 * M`` consecutive fine
components (in z-curve order of their means) to one coarse component.  The
resulting groups become Bayes tree nodes; a post-processing step enforces the
fanout bounds by splitting overfull groups along their highest-variance
dimension and merging underfull groups with their KL-closest neighbour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..curves.zorder import z_order
from ..index.entry import DirectoryEntry, LeafEntry
from ..index.node import AnyEntry, Node
from ..index.rstar import RStarTree
from ..stats.gaussian import MIN_VARIANCE, Gaussian
from ..stats.kl import kl_gaussian
from ..core.config import BayesTreeConfig
from .base import BulkLoader

__all__ = ["GoldbergerBulkLoader"]


@dataclass
class _Component:
    """A fine-mixture component: weight/mean/variance plus the tree entry it represents."""

    entry: AnyEntry
    weight: float
    mean: np.ndarray
    variance: np.ndarray

    def as_gaussian(self) -> Gaussian:
        return Gaussian(mean=self.mean, variance=self.variance, weight=self.weight)


@dataclass
class _Group:
    """A coarse-mixture component with its member fine components."""

    members: List[_Component]
    weight: float = 0.0
    mean: np.ndarray | None = None
    variance: np.ndarray | None = None

    def refit(self) -> None:
        """The Goldberger *refit* step over the current members."""
        if not self.members:
            raise ValueError("cannot refit an empty group")
        weights = np.array([m.weight for m in self.members])
        total = weights.sum()
        means = np.array([m.mean for m in self.members])
        variances = np.array([m.variance for m in self.members])
        mean = (weights[:, None] * means).sum(axis=0) / total
        variance = (
            weights[:, None] * (variances + (means - mean) ** 2)
        ).sum(axis=0) / total
        self.weight = float(total)
        self.mean = mean
        self.variance = np.maximum(variance, MIN_VARIANCE)

    def as_gaussian(self) -> Gaussian:
        assert self.mean is not None and self.variance is not None
        return Gaussian(mean=self.mean, variance=self.variance, weight=self.weight)


class GoldbergerBulkLoader(BulkLoader):
    """Bottom-up mixture reduction bulk load based on Goldberger & Roweis."""

    name = "goldberger"

    def __init__(
        self,
        config: Optional[BayesTreeConfig] = None,
        max_iterations: int = 20,
        epsilon: float = 0.05,
        bits: int = 10,
        fill_fraction: float = 0.75,
    ) -> None:
        super().__init__(config)
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not (0.1 <= fill_fraction <= 1.0):
            raise ValueError("fill_fraction must be in [0.1, 1.0]")
        self.max_iterations = max_iterations
        self.epsilon = epsilon
        self.bits = bits
        self.fill_fraction = fill_fraction

    # -- one reduction level ---------------------------------------------------------------------
    def _initial_groups(self, components: List[_Component], per_group: int) -> List[_Group]:
        """Initial mapping pi_0: consecutive runs in z-curve order of the means."""
        means = np.array([c.mean for c in components])
        order = z_order(means, bits=self.bits)
        ordered = [components[i] for i in order]
        groups = [
            _Group(members=ordered[start : start + per_group])
            for start in range(0, len(ordered), per_group)
        ]
        groups = [g for g in groups if g.members]
        # Avoid a trailing group with a single member when possible.
        if len(groups) >= 2 and len(groups[-1].members) == 1:
            groups[-2].members.extend(groups[-1].members)
            groups.pop()
        for group in groups:
            group.refit()
        return groups

    def _matching_distance(self, components: Sequence[_Component], groups: Sequence[_Group]) -> float:
        """d(f, g) of paper Definition 4."""
        total = 0.0
        for component in components:
            best = min(kl_gaussian(component.as_gaussian(), group.as_gaussian()) for group in groups)
            total += component.weight * best
        return total

    def _regroup(self, components: Sequence[_Component], groups: List[_Group]) -> List[_Group]:
        """The Goldberger *regroup* step; empty groups are dropped."""
        gaussians = [group.as_gaussian() for group in groups]
        assignments: List[List[_Component]] = [[] for _ in groups]
        for component in components:
            divergences = [kl_gaussian(component.as_gaussian(), g) for g in gaussians]
            assignments[int(np.argmin(divergences))].append(component)
        new_groups = [_Group(members=members) for members in assignments if members]
        for group in new_groups:
            group.refit()
        return new_groups

    def _split_group(self, group: _Group) -> List[_Group]:
        """Split an overfull group along its highest-variance dimension.

        "Two representatives are computed by moving the mean along the
        dimension with the highest variance by an epsilon in both directions.
        A Gaussian is placed over the two representatives and the mapping of
        the entries to the representatives is computed as in the regroup
        step."
        """
        assert group.mean is not None and group.variance is not None
        axis = int(np.argmax(group.variance))
        shift = self.epsilon * max(math.sqrt(float(group.variance[axis])), 1e-6)
        offset = np.zeros_like(group.mean)
        offset[axis] = shift
        representatives = [
            Gaussian(mean=group.mean - offset, variance=group.variance, weight=1.0),
            Gaussian(mean=group.mean + offset, variance=group.variance, weight=1.0),
        ]
        halves: List[List[_Component]] = [[], []]
        for component in group.members:
            divergences = [kl_gaussian(component.as_gaussian(), rep) for rep in representatives]
            halves[int(np.argmin(divergences))].append(component)
        if not halves[0] or not halves[1]:
            # KL could not separate them (identical members); split by count.
            middle = len(group.members) // 2
            halves = [group.members[:middle], group.members[middle:]]
        result = [_Group(members=half) for half in halves if half]
        for new_group in result:
            new_group.refit()
        return result

    def _enforce_fanout(self, groups: List[_Group], capacity: int, minimum: int) -> List[_Group]:
        """Post-processing: split overfull groups, merge underfull ones."""
        # Split until every group fits the capacity.
        work = list(groups)
        result: List[_Group] = []
        while work:
            group = work.pop()
            if len(group.members) > capacity:
                work.extend(self._split_group(group))
            else:
                result.append(group)

        # Merge groups that are too small with their KL-closest neighbour.
        if len(result) <= 1:
            return result
        merged = True
        while merged and len(result) > 1:
            merged = False
            for i, group in enumerate(result):
                if len(group.members) >= minimum:
                    continue
                others = [g for j, g in enumerate(result) if j != i]
                anchor = group.as_gaussian()
                closest = min(
                    others,
                    key=lambda other, anchor=anchor: kl_gaussian(anchor, other.as_gaussian()),
                )
                closest.members.extend(group.members)
                closest.refit()
                result.pop(i)
                merged = True
                break
        # Merging may have produced an overfull group again; split once more
        # (without further merging to guarantee termination).
        final: List[_Group] = []
        for group in result:
            if len(group.members) > capacity:
                final.extend(self._split_group(group))
            else:
                final.append(group)
        return final

    def _reduce_level(
        self, components: List[_Component], capacity: int, minimum: int
    ) -> List[_Group]:
        """Fit the coarse mixture for one directory level and return its groups."""
        per_group = max(2, int(round(self.fill_fraction * capacity)))
        groups = self._initial_groups(components, per_group)
        if len(groups) <= 1:
            return self._enforce_fanout(groups, capacity, minimum)

        previous = self._matching_distance(components, groups)
        for _ in range(self.max_iterations):
            groups = self._regroup(components, groups)
            current = self._matching_distance(components, groups)
            if current >= previous - 1e-12:
                break
            previous = current
        return self._enforce_fanout(groups, capacity, minimum)

    # -- full construction ------------------------------------------------------------------------------
    def _leaf_components(self, points: np.ndarray, label: Optional[object]) -> List[_Component]:
        """Fine mixture at the bottom: one kernel estimator per training item."""
        from ..stats.kernel import silverman_bandwidth

        n = points.shape[0]
        if n > 1:
            bandwidth = silverman_bandwidth(points) * self.config.bandwidth_scale
        else:
            bandwidth = np.ones(points.shape[1])
        variance = np.maximum(bandwidth ** 2, MIN_VARIANCE)
        components: List[_Component] = []
        for point in points:
            entry = LeafEntry(point=point, label=label, kernel=self.config.kernel)
            components.append(
                _Component(entry=entry, weight=1.0 / n, mean=point.astype(float), variance=variance.copy())
            )
        return components

    def build_index(self, points: np.ndarray, label: Optional[object] = None) -> RStarTree:
        points = np.asarray(points, dtype=float)
        params = self.config.tree

        components = self._leaf_components(points, label)
        level = 0
        capacity, minimum = params.leaf_capacity, params.leaf_min

        while len(components) > params.max_fanout:
            groups = self._reduce_level(components, capacity, minimum)
            nodes = [
                Node(level=level, entries=[member.entry for member in group.members])
                for group in groups
            ]
            next_components: List[_Component] = []
            for node, group in zip(nodes, groups):
                entry = DirectoryEntry.for_node(node)
                assert group.mean is not None and group.variance is not None
                next_components.append(
                    _Component(
                        entry=entry,
                        weight=group.weight,
                        mean=entry.cluster_feature.mean(),
                        variance=np.maximum(entry.cluster_feature.variance(), MIN_VARIANCE),
                    )
                )
            components = next_components
            level += 1
            capacity, minimum = params.max_fanout, params.min_fanout
            if len(nodes) == 1:
                break

        if level == 0:
            root = Node(level=0, entries=[c.entry for c in components])
        elif len(components) == 1:
            root = components[0].entry.child  # type: ignore[union-attr]
        else:
            root = Node(level=level, entries=[c.entry for c in components])
        return RStarTree.from_root(root, dimension=points.shape[1], params=params)
