"""EM top-down bulk loading — the paper's best-performing strategy (§3.1).

"We start by applying the EM algorithm to the complete training set.  The
desired number M of resulting clusters is always set to the fanout which is
again given through the page size.  If the EM returns less than m clusters,
the biggest resulting cluster is split again such that the total number of
resulting clusters is at most M.  In the rare case that the EM returns a
single cluster, this cluster is split by picking the two farthest elements and
assigning the remaining elements to the closest of the two.  Finally, if a
resulting cluster contains more than L objects (the capacity of a leaf node),
the cluster is recursively split using the procedure described above.
Otherwise the items contained in that cluster are stored in a leaf node, its
corresponding entry is calculated and returned to build the Bayes tree.

The EM approach may result in an unbalanced tree, which differs from the
primary Bayes tree idea.  However ... this is not a drawback but even leads to
better anytime classification performance."
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..index.entry import DirectoryEntry
from ..index.node import Node
from ..index.rstar import RStarTree
from ..stats.em import fit_gmm, hard_assignments
from ..core.config import BayesTreeConfig
from .base import BulkLoader

__all__ = ["EMTopDownBulkLoader"]


class EMTopDownBulkLoader(BulkLoader):
    """Recursive EM clustering of the training set into a Bayes tree."""

    name = "em_topdown"

    def __init__(
        self,
        config: Optional[BayesTreeConfig] = None,
        random_state: Optional[int] = None,
        max_em_iterations: int = 50,
    ) -> None:
        super().__init__(config)
        self.random_state = random_state
        self.max_em_iterations = max_em_iterations

    # -- splitting helpers -------------------------------------------------------------------
    def _split_single_cluster(self, points: np.ndarray) -> List[np.ndarray]:
        """Paper fallback: split by the two farthest elements.

        "In the rare case that the EM returns a single cluster, this cluster
        is split by picking the two farthest elements and assigning the
        remaining elements to the closest of the two."
        """
        if points.shape[0] <= 1:
            return [np.arange(points.shape[0])]
        # The exact farthest pair costs O(n^2); approximate it by taking the
        # two points farthest from the centroid in opposite directions, which
        # is the standard linear-time surrogate and sufficient here.
        centroid = points.mean(axis=0)
        distances = np.linalg.norm(points - centroid, axis=1)
        first = int(np.argmax(distances))
        second = int(np.argmax(np.linalg.norm(points - points[first], axis=1)))
        if first == second:
            second = (first + 1) % points.shape[0]
        to_first = np.linalg.norm(points - points[first], axis=1)
        to_second = np.linalg.norm(points - points[second], axis=1)
        assignment = to_first <= to_second
        group_a = np.where(assignment)[0]
        group_b = np.where(~assignment)[0]
        if len(group_a) == 0 or len(group_b) == 0:
            half = points.shape[0] // 2
            return [np.arange(half), np.arange(half, points.shape[0])]
        return [group_a, group_b]

    def _merge_small_groups(self, points: np.ndarray, groups: List[np.ndarray]) -> List[np.ndarray]:
        """Merge clusters smaller than the minimum leaf fill into their nearest sibling.

        EM occasionally produces clusters of one or two objects; keeping them
        would create directory entries whose cluster features have (near) zero
        variance, i.e. degenerate Gaussian summaries.  Merging them into the
        closest sibling keeps every subtree at a sensible size.
        """
        minimum = max(2, self.config.tree.leaf_min)
        groups = sorted(groups, key=len)
        merged: List[np.ndarray] = []
        small: List[np.ndarray] = []
        for group in groups:
            (small if len(group) < minimum else merged).append(group)
        if not merged:
            # Everything is tiny: collapse to a single group.
            return [np.concatenate(groups)] if len(groups) > 1 else groups
        centroids = [points[group].mean(axis=0) for group in merged]
        for group in small:
            center = points[group].mean(axis=0)
            nearest = int(np.argmin([np.linalg.norm(center - c) for c in centroids]))
            merged[nearest] = np.concatenate([merged[nearest], group])
            centroids[nearest] = points[merged[nearest]].mean(axis=0)
        return merged

    def _cluster_indices(self, points: np.ndarray, rng: np.random.Generator) -> List[np.ndarray]:
        """Partition point indices into at most ``max_fanout`` clusters via EM."""
        max_fanout = self.config.tree.max_fanout
        result = fit_gmm(points, max_fanout, rng, max_iterations=self.max_em_iterations)
        labels = hard_assignments(result)
        groups = [np.where(labels == j)[0] for j in range(len(result.mixture))]
        groups = [g for g in groups if len(g) > 0]
        groups = self._merge_small_groups(points, groups)

        if len(groups) == 1:
            return self._split_single_cluster(points)

        # "If the EM returns less than m clusters, the biggest resulting
        # cluster is split again such that the total number of resulting
        # clusters is at most M."
        min_fanout = self.config.tree.min_fanout
        while len(groups) < min_fanout:
            biggest = max(range(len(groups)), key=lambda i: len(groups[i]))
            indices = groups.pop(biggest)
            if len(indices) < 2:
                groups.append(indices)
                break
            sub = self._split_single_cluster(points[indices])
            for part in sub:
                groups.append(indices[part])
            if len(groups) > max_fanout:
                break
        return groups[:max_fanout] + (
            [np.concatenate(groups[max_fanout:])] if len(groups) > max_fanout else []
        )

    # -- recursive construction -----------------------------------------------------------------
    def _build_node(self, points: np.ndarray, label: Optional[object], rng: np.random.Generator) -> Node:
        """Recursively cluster ``points`` into a subtree; returns its root node."""
        leaf_capacity = self.config.tree.leaf_capacity
        if points.shape[0] <= leaf_capacity:
            return Node(level=0, entries=self._make_leaf_entries(points, label))

        groups = self._cluster_indices(points, rng)
        if len(groups) <= 1:
            # Clustering failed to partition (e.g. all points identical):
            # fall back to chunking into leaves to guarantee termination.
            children = [
                Node(level=0, entries=self._make_leaf_entries(points[i : i + leaf_capacity], label))
                for i in range(0, points.shape[0], leaf_capacity)
            ]
        else:
            children = [self._build_node(points[group], label, rng) for group in groups]

        level = max(child.level for child in children) + 1
        return Node(level=level, entries=[DirectoryEntry.for_node(child) for child in children])

    def build_index(self, points: np.ndarray, label: Optional[object] = None) -> RStarTree:
        points = np.asarray(points, dtype=float)
        rng = np.random.default_rng(self.random_state)
        root = self._build_node(points, label, rng)
        return RStarTree.from_root(root, dimension=points.shape[1], params=self.config.tree)
