"""Shared machinery for Bayes tree bulk loading strategies (paper §3).

Every bulk loader takes the complete training set of one class and builds a
Bayes tree in one go, instead of inserting the objects one by one (the
*iterative insertion* the paper compares against).  The loaders differ in how
they group objects into leaf nodes and how they build the directory on top;
what they share is captured here:

* the :class:`BulkLoader` interface (``build_index`` / ``build_tree``),
* helpers that turn groups of entries into nodes with correct MBRs and
  cluster features,
* a bottom-up packer that stacks directory levels until a single root is
  left, used by all ordering-based loaders (Hilbert, Z-curve, STR).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.bayes_tree import BayesTree
from ..core.config import BayesTreeConfig
from ..index.entry import DirectoryEntry, LeafEntry
from ..index.node import AnyEntry, Node
from ..index.rstar import RStarTree, TreeParameters

__all__ = ["BulkLoader", "chunk_sizes", "pack_entries_into_nodes", "stack_levels"]


def chunk_sizes(total: int, capacity: int, minimum: int) -> List[int]:
    """Split ``total`` items into chunks of at most ``capacity``, each >= ``minimum``.

    The classic packing problem of bulk loading: filling pages greedily would
    leave a last page that may be underfull, so the final two chunks are
    rebalanced when necessary.  ``total`` is assumed to be >= 1; a single
    chunk smaller than ``minimum`` is returned as-is (a root may be small).
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if capacity < 1 or minimum < 1 or minimum > capacity:
        raise ValueError("need 1 <= minimum <= capacity")
    if total <= capacity:
        return [total]
    sizes: List[int] = []
    remaining = total
    while remaining > 0:
        if remaining <= capacity:
            sizes.append(remaining)
            remaining = 0
        else:
            sizes.append(capacity)
            remaining -= capacity
    if len(sizes) >= 2 and sizes[-1] < minimum:
        deficit = minimum - sizes[-1]
        sizes[-2] -= deficit
        sizes[-1] += deficit
    return sizes


def pack_entries_into_nodes(
    entries: Sequence[AnyEntry], level: int, capacity: int, minimum: int
) -> List[Node]:
    """Pack an ordered entry sequence into nodes of the given level."""
    entries = list(entries)
    nodes: List[Node] = []
    start = 0
    for size in chunk_sizes(len(entries), capacity, minimum):
        nodes.append(Node(level=level, entries=entries[start : start + size]))
        start += size
    return nodes


def stack_levels(
    leaf_nodes: Sequence[Node],
    params: TreeParameters,
    order_nodes: Callable[[List[DirectoryEntry]], List[DirectoryEntry]],
) -> Node:
    """Build directory levels bottom-up until a single root node remains.

    ``order_nodes`` re-orders the directory entries of each new level (e.g. by
    the space-filling curve value of their means, as the paper's Hilbert bulk
    load does: "these steps are repeated using the mean vectors as
    representatives until all entries fit into one node, the root node").
    """
    nodes = list(leaf_nodes)
    level = 1
    while len(nodes) > 1:
        entries = [DirectoryEntry.for_node(node) for node in nodes]
        entries = order_nodes(entries)
        nodes = pack_entries_into_nodes(entries, level, params.max_fanout, params.min_fanout)
        level += 1
    return nodes[0]


class BulkLoader(ABC):
    """Interface of all Bayes tree bulk loading strategies."""

    #: Short identifier used in benchmark tables (matches the paper's names).
    name: str = "abstract"

    def __init__(self, config: Optional[BayesTreeConfig] = None) -> None:
        self.config = config or BayesTreeConfig()

    @abstractmethod
    def build_index(self, points: np.ndarray, label: Optional[object] = None) -> RStarTree:
        """Build the R*-tree index over the class's training points."""

    def build_tree(self, points: np.ndarray, label: Optional[object] = None) -> BayesTree:
        """Build a complete Bayes tree (index + kernel bandwidths) for one class."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        index = self.build_index(points, label=label)
        tree = BayesTree(dimension=points.shape[1], config=self.config)
        tree.adopt_index(index)
        return tree

    # -- shared helpers -----------------------------------------------------------------------
    def _make_leaf_entries(self, points: np.ndarray, label: Optional[object]) -> List[LeafEntry]:
        return [
            LeafEntry(point=point, label=label, kernel=self.config.kernel) for point in points
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
