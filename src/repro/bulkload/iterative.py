"""Iterative insertion — the baseline the bulk loads are compared against.

"The three proposed bulk loading techniques are compared to the previous
results from [16] (called Iterativ in the graphs)" (paper §3.2).  Iterative
insertion simply inserts the training objects one after another with the
regular R*-tree insertion routine, exactly what an online-learning stream
scenario does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..index.rstar import RStarTree
from ..core.config import BayesTreeConfig
from .base import BulkLoader

__all__ = ["IterativeInsertionLoader"]


class IterativeInsertionLoader(BulkLoader):
    """Insert all points one by one (the paper's "Iterativ" reference)."""

    name = "iterative"

    def __init__(
        self,
        config: Optional[BayesTreeConfig] = None,
        shuffle: bool = False,
        random_state: Optional[int] = None,
    ) -> None:
        super().__init__(config)
        self.shuffle = shuffle
        self.random_state = random_state

    def build_index(self, points: np.ndarray, label: Optional[object] = None) -> RStarTree:
        points = np.asarray(points, dtype=float)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            points = points[rng.permutation(points.shape[0])]
        index = RStarTree(dimension=points.shape[1], params=self.config.tree)
        for point in points:
            index.insert(point, label=label, kernel=self.config.kernel)
        return index
