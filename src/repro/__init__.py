"""repro — reproduction of "Using Index Structures for Anytime Stream Mining".

The package implements the Bayes tree (Kranen, VLDB 2009; Seidl et al., EDBT
2009): an R*-tree storing a hierarchy of Gaussian mixture models that enables
anytime Bayesian classification on data streams, together with the bulk
loading strategies the paper evaluates (Hilbert/Z-curve/STR packing, the
Goldberger mixture-reduction bulk load and the EM top-down bulk load), the
stream/evaluation harness that regenerates the paper's figures, and the
anytime-clustering extension sketched in its future-work section.

Quickstart
----------
>>> import numpy as np
>>> from repro import AnytimeBayesClassifier, make_dataset
>>> dataset = make_dataset("pendigits", size=600, random_state=0)
>>> classifier = AnytimeBayesClassifier()
>>> classifier = classifier.fit(dataset.features[:500], dataset.labels[:500])
>>> result = classifier.classify_anytime(dataset.features[500], max_nodes=20)
>>> result.predictions[0] == result.predictions[-1] or True  # anytime answers
True
"""

from typing import TYPE_CHECKING, Any

from .core import (
    AnytimeBayesClassifier,
    AnytimeClassification,
    BayesTree,
    BayesTreeConfig,
    Frontier,
    SingleTreeAnytimeClassifier,
    default_qbk_k,
    make_descent_strategy,
)
from .index import RStarTree, TreeParameters
from .persist import SnapshotError, SnapshotVersionError, load_forest, save_forest
from .serving import ServingEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .data import Dataset

__version__ = "0.1.0"

__all__ = [
    "AnytimeBayesClassifier",
    "AnytimeClassification",
    "BayesTree",
    "BayesTreeConfig",
    "Frontier",
    "SingleTreeAnytimeClassifier",
    "default_qbk_k",
    "make_descent_strategy",
    "RStarTree",
    "TreeParameters",
    "SnapshotError",
    "SnapshotVersionError",
    "load_forest",
    "save_forest",
    "ServingEngine",
    "make_dataset",
    "__version__",
]


def make_dataset(*args: Any, **kwargs: Any) -> "Dataset":
    """Convenience re-export of :func:`repro.data.make_dataset` (lazy import)."""
    from .data import make_dataset as _make_dataset

    return _make_dataset(*args, **kwargs)
