"""Gaussian naive Bayes baseline.

A single diagonal Gaussian per class — exactly the "simple method ... to
assume a certain distribution of the data" the paper's preliminaries contrast
with mixture and kernel densities (§2.1).  It also equals the Bayes tree
prediction when only the single coarsest entry of each class tree is read, so
it anchors the left end of the anytime accuracy curves.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

from ..stats.gaussian import Gaussian

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes:
    """Bayes classifier with one diagonal Gaussian per class."""

    def __init__(self, variance_floor: float = 1e-9) -> None:
        self.variance_floor = variance_floor
        self.models: Dict[Hashable, Gaussian] = {}
        self.priors: Dict[Hashable, float] = {}

    @property
    def is_fitted(self) -> bool:
        return bool(self.models)

    @property
    def classes(self) -> List[Hashable]:
        return list(self.models.keys())

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "GaussianNaiveBayes":
        points = np.asarray(points, dtype=float)
        labels = list(labels)
        if points.ndim != 2 or len(labels) != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        self.models = {}
        self.priors = {}
        total = points.shape[0]
        for label in sorted(set(labels), key=repr):
            mask = np.array([l == label for l in labels])
            class_points = points[mask]
            variance = np.maximum(class_points.var(axis=0), self.variance_floor)
            self.models[label] = Gaussian(mean=class_points.mean(axis=0), variance=variance)
            self.priors[label] = class_points.shape[0] / total
        return self

    def log_posterior(self, x: Sequence[float] | np.ndarray) -> Dict[Hashable, float]:
        """Unnormalised log posterior log P(c) + log p(x | c) per class."""
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        x = np.asarray(x, dtype=float)
        return {
            label: float(np.log(self.priors[label])) + model.log_pdf(x)
            for label, model in self.models.items()
        }

    def predict(self, x: Sequence[float] | np.ndarray) -> Hashable:
        scores = self.log_posterior(x)
        return max(sorted(scores.keys(), key=repr), key=lambda label: scores[label])

    def predict_batch(self, points: np.ndarray) -> List[Hashable]:
        return [self.predict(x) for x in np.asarray(points, dtype=float)]
