"""Gaussian naive Bayes baseline.

A single diagonal Gaussian per class — exactly the "simple method ... to
assume a certain distribution of the data" the paper's preliminaries contrast
with mixture and kernel densities (§2.1).  It also equals the Bayes tree
prediction when only the single coarsest entry of each class tree is read, so
it anchors the left end of the anytime accuracy curves.

The model is maintained from running per-class sufficient statistics
``(n, LS, SS)`` anchored at the class's first observation (the same
cancellation-safe origin trick as ``silverman_bandwidth_from_stats``), so
:meth:`GaussianNaiveBayes.partial_fit` supports prequential stream training —
including classes that appear for the first time mid-stream, which start as a
single-point Gaussian at the variance floor instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

import numpy as np

from ..stats.gaussian import Gaussian

__all__ = ["GaussianNaiveBayes"]


@dataclass
class _ClassStats:
    """Running ``(n, LS, SS)`` of one class, anchored at its first observation."""

    origin: np.ndarray
    count: int
    linear_sum: np.ndarray
    squared_sum: np.ndarray

    @classmethod
    def started_at(cls, point: np.ndarray) -> "_ClassStats":
        """Open the statistics with their anchoring first observation."""
        zero = np.zeros_like(point)
        return cls(origin=point.copy(), count=0, linear_sum=zero.copy(), squared_sum=zero.copy())

    def add(self, point: np.ndarray) -> None:
        """Fold one observation into the running sums (O(d))."""
        shifted = point - self.origin
        self.count += 1
        self.linear_sum += shifted
        self.squared_sum += shifted * shifted

    def gaussian(self, variance_floor: float) -> Gaussian:
        """The class-conditional diagonal Gaussian implied by the sums.

        A single-observation class has zero spread and collapses to the
        variance floor — a well-defined (if sharply peaked) density, so
        classes appearing mid-stream never poison the posterior.
        """
        mean_shifted = self.linear_sum / self.count
        variance = np.maximum(
            self.squared_sum / self.count - mean_shifted * mean_shifted, variance_floor
        )
        return Gaussian(mean=self.origin + mean_shifted, variance=variance)


class GaussianNaiveBayes:
    """Bayes classifier with one diagonal Gaussian per class."""

    def __init__(self, variance_floor: float = 1e-9) -> None:
        self.variance_floor = variance_floor
        self.models: Dict[Hashable, Gaussian] = {}
        self.priors: Dict[Hashable, float] = {}
        self._stats: Dict[Hashable, _ClassStats] = {}
        self._total: int = 0

    @property
    def is_fitted(self) -> bool:
        """True once at least one labelled observation has been seen."""
        return bool(self.models)

    @property
    def classes(self) -> List[Hashable]:
        """Known class labels (repr-sorted insertion from fit, arrival order after)."""
        return list(self.models.keys())

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "GaussianNaiveBayes":
        """Train from scratch on a labelled batch (replaces any previous model)."""
        points = np.asarray(points, dtype=float)
        labels = list(labels)
        if points.ndim != 2 or len(labels) != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        self.models = {}
        self.priors = {}
        self._stats = {}
        self._total = 0
        # Repr-sorted class order matches the historical fit; partial_fit
        # later appends genuinely new classes in arrival order.
        order = np.argsort(np.array([repr(label) for label in labels]), kind="stable")
        self.partial_fit(points[order], [labels[int(i)] for i in order])
        return self

    def partial_fit(
        self, points: np.ndarray, labels: Sequence[Hashable]
    ) -> "GaussianNaiveBayes":
        """Fold a labelled batch into the running per-class statistics.

        Classes never seen before — the mid-stream class-appearance case the
        scenario battery exercises — are opened on the spot instead of
        raising; their density starts as a floor-variance Gaussian at the
        first observation and widens as more objects arrive.  Cost is O(d)
        per observation plus one model refresh per touched class.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        labels = list(labels)
        if points.ndim != 2 or len(labels) != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        touched = []
        for point, label in zip(points, labels):
            stats = self._stats.get(label)
            if stats is None:
                stats = _ClassStats.started_at(point)
                self._stats[label] = stats
            stats.add(point)
            touched.append(label)
            self._total += 1
        for label in touched:
            self.models[label] = self._stats[label].gaussian(self.variance_floor)
        self.priors = {
            label: stats.count / self._total for label, stats in self._stats.items()
        }
        return self

    def log_posterior(self, x: Sequence[float] | np.ndarray) -> Dict[Hashable, float]:
        """Unnormalised log posterior log P(c) + log p(x | c) per class."""
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        x = np.asarray(x, dtype=float)
        return {
            label: float(np.log(self.priors[label])) + model.log_pdf(x)
            for label, model in self.models.items()
        }

    def predict(self, x: Sequence[float] | np.ndarray) -> Hashable:
        """Most probable class label for one feature vector."""
        scores = self.log_posterior(x)
        return max(sorted(scores.keys(), key=repr), key=lambda label: scores[label])

    def predict_batch(self, points: np.ndarray) -> List[Hashable]:
        """Most probable class label for each row of ``points``."""
        return [self.predict(x) for x in np.asarray(points, dtype=float)]
