"""Baseline classifiers the Bayes tree is compared against."""

from .kernel_bayes import KernelBayesClassifier
from .naive_bayes import GaussianNaiveBayes
from .nearest_neighbor import AnytimeNearestNeighbor

__all__ = ["KernelBayesClassifier", "GaussianNaiveBayes", "AnytimeNearestNeighbor"]
