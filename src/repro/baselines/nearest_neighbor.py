"""Anytime nearest-neighbour classifier baseline.

The paper's related work cites anytime nearest-neighbour classification (Ueno
et al., ICDM 2006) as one of the existing anytime classifiers; we provide a
simple version as an additional comparison point: the training objects are
scanned in a fixed (random but reproducible) order and the prediction after a
budget of ``t`` scanned objects is the majority label among the ``k`` nearest
of the objects seen so far — more time, more objects scanned, better answer.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, List, Optional, Sequence

import numpy as np

__all__ = ["AnytimeNearestNeighbor"]


class AnytimeNearestNeighbor:
    """k-NN whose scan over the training data can be interrupted anytime."""

    def __init__(self, k: int = 3, random_state: Optional[int] = None) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.random_state = random_state
        self.points: Optional[np.ndarray] = None
        self.labels: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """True once training objects are available to scan."""
        return self.points is not None

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "AnytimeNearestNeighbor":
        """Store the training set in a reproducibly shuffled scan order."""
        points = np.asarray(points, dtype=float)
        label_array = np.asarray(labels)
        if points.ndim != 2 or label_array.shape[0] != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        rng = np.random.default_rng(self.random_state)
        order = rng.permutation(points.shape[0])
        self.points = points[order]
        self.labels = label_array[order]
        return self

    def partial_fit(
        self, points: np.ndarray, labels: Sequence[Hashable]
    ) -> "AnytimeNearestNeighbor":
        """Append stream objects to the end of the scan order.

        Unlike :meth:`fit` (which shuffles once, reproducibly), incremental
        objects are appended in arrival order — the natural scan order of a
        stream, and the only one that keeps earlier anytime prefixes stable.
        Labels never seen before simply enter the candidate vote set, so
        classes appearing mid-stream are handled instead of raising; calling
        this on an unfitted classifier bootstraps it from the batch.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        label_array = np.asarray(labels)
        if points.ndim != 2 or label_array.shape[0] != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        if self.points is None or self.labels is None:
            self.points = points.copy()
            self.labels = label_array.copy()
        else:
            self.points = np.vstack([self.points, points])
            self.labels = np.concatenate([self.labels, label_array])
        return self

    def predict_anytime(self, x: Sequence[float] | np.ndarray, budget: int) -> Hashable:
        """Prediction after scanning ``budget`` training objects (at least one)."""
        points, labels = self.points, self.labels
        if points is None or labels is None:
            raise ValueError("classifier has not been fitted")
        if budget < 1:
            budget = 1
        x = np.asarray(x, dtype=float)
        scanned_points = points[: min(budget, points.shape[0])]
        scanned_labels = labels[: scanned_points.shape[0]]
        distances = np.linalg.norm(scanned_points - x, axis=1)
        nearest = np.argsort(distances, kind="stable")[: self.k]
        votes = Counter(scanned_labels[nearest].tolist())
        best_count = max(votes.values())
        candidates = sorted([label for label, count in votes.items() if count == best_count], key=repr)
        return candidates[0]

    def predict(self, x: Sequence[float] | np.ndarray) -> Hashable:
        """Prediction using the complete training set (the classic k-NN answer)."""
        assert self.points is not None
        return self.predict_anytime(x, budget=self.points.shape[0])

    def predict_batch(self, points: np.ndarray, budget: Optional[int] = None) -> List[Hashable]:
        """Predict each row, optionally under a shared anytime scan budget."""
        points = np.asarray(points, dtype=float)
        if budget is None:
            return [self.predict(x) for x in points]
        return [self.predict_anytime(x, budget) for x in points]
