"""Full kernel-density Bayes classifier.

The "infinite time" reference: the Bayes tree converges to exactly this
classifier when every node has been read (the frontier consists of all leaf
kernels), so it upper-bounds the anytime accuracy curves and is used in the
benchmarks as the asymptote of Figures 2-4.

Scoring runs in log space through :func:`repro.stats.kernel.log_kernel_density_batch`
(one vectorised call per class instead of a Python loop over training
objects), which keeps the posterior finite in the high-dimensional scenarios
where a linear-space sum of kernel pdf values underflows to an all-zero
density.  :meth:`KernelBayesClassifier.partial_fit` appends stream objects to
the per-class kernel sets — classes appearing mid-stream simply open a new
one-kernel density instead of raising.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

from ..stats.kernel import kernel_density_batch, log_kernel_density_batch, silverman_bandwidth

__all__ = ["KernelBayesClassifier"]


class KernelBayesClassifier:
    """Bayes classifier with a full kernel density estimate per class."""

    def __init__(self, kernel: str = "gaussian", bandwidth_scale: float = 1.0) -> None:
        if bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        self.kernel = kernel
        self.bandwidth_scale = bandwidth_scale
        self.class_points: Dict[Hashable, np.ndarray] = {}
        self.bandwidths: Dict[Hashable, np.ndarray] = {}
        self.priors: Dict[Hashable, float] = {}

    @property
    def is_fitted(self) -> bool:
        """True once at least one labelled observation has been seen."""
        return bool(self.class_points)

    @property
    def classes(self) -> List[Hashable]:
        """Known class labels in model insertion order."""
        return list(self.class_points.keys())

    def _refresh_bandwidth(self, label: Hashable) -> None:
        """Re-derive one class's Silverman bandwidth from its current points."""
        class_points = self.class_points[label]
        if class_points.shape[0] > 1:
            bandwidth = silverman_bandwidth(class_points) * self.bandwidth_scale
        else:
            bandwidth = np.ones(class_points.shape[1]) * self.bandwidth_scale
        self.bandwidths[label] = bandwidth

    def _refresh_priors(self) -> None:
        """Recompute class priors from the stored per-class point counts."""
        total = sum(points.shape[0] for points in self.class_points.values())
        self.priors = {
            label: points.shape[0] / total for label, points in self.class_points.items()
        }

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "KernelBayesClassifier":
        """Train from scratch on a labelled batch (replaces any previous model)."""
        points = np.asarray(points, dtype=float)
        labels = list(labels)
        if points.ndim != 2 or len(labels) != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        self.class_points = {}
        self.bandwidths = {}
        self.priors = {}
        for label in sorted(set(labels), key=repr):
            mask = np.array([l == label for l in labels])
            self.class_points[label] = points[mask]
            self._refresh_bandwidth(label)
        self._refresh_priors()
        return self

    def partial_fit(
        self, points: np.ndarray, labels: Sequence[Hashable]
    ) -> "KernelBayesClassifier":
        """Append a labelled batch of stream objects to the kernel sets.

        Every object becomes one more kernel of its class density (exactly
        how the Bayes tree's leaf level grows); the touched classes' Silverman
        bandwidths and all priors are refreshed.  Classes never seen before —
        the mid-stream class-appearance case — are opened as new single-kernel
        densities instead of raising.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        labels = list(labels)
        if points.ndim != 2 or len(labels) != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        touched = sorted(set(labels), key=repr)
        for label in touched:
            mask = np.array([l == label for l in labels])
            new_points = points[mask]
            existing = self.class_points.get(label)
            if existing is None:
                self.class_points[label] = new_points.copy()
            else:
                self.class_points[label] = np.vstack([existing, new_points])
            self._refresh_bandwidth(label)
        self._refresh_priors()
        return self

    def class_log_density(self, x: Sequence[float] | np.ndarray, label: Hashable) -> float:
        """Log kernel density estimate ``log p(x | c)`` for one class.

        Unknown labels have zero density everywhere (``-inf``) rather than
        raising — a query can legitimately ask about a class that has not
        appeared in the stream yet.
        """
        x = np.asarray(x, dtype=float)
        if label not in self.class_points:
            return float("-inf")
        return float(
            log_kernel_density_batch(
                x, self.class_points[label], self.bandwidths[label], kernel=self.kernel
            )
        )

    def class_density(self, x: Sequence[float] | np.ndarray, label: Hashable) -> float:
        """Kernel density estimate p(x | c) for one class (0.0 when unknown)."""
        x = np.asarray(x, dtype=float)
        if label not in self.class_points:
            return 0.0
        return float(
            kernel_density_batch(
                x, self.class_points[label], self.bandwidths[label], kernel=self.kernel
            )
        )

    def log_posterior(self, x: Sequence[float] | np.ndarray) -> Dict[Hashable, float]:
        """Unnormalised log posterior ``log P(c) + log p(x | c)`` per class."""
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        return {
            label: float(np.log(self.priors[label])) + self.class_log_density(x, label)
            for label in self.class_points
        }

    def posterior(self, x: Sequence[float] | np.ndarray) -> Dict[Hashable, float]:
        """Unnormalised posterior P(c) * p(x | c) per class (may underflow; see log_posterior)."""
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        return {
            label: self.priors[label] * self.class_density(x, label) for label in self.class_points
        }

    def predict(self, x: Sequence[float] | np.ndarray) -> Hashable:
        """Most probable class label for one feature vector (log-space scoring)."""
        scores = self.log_posterior(x)
        return max(sorted(scores.keys(), key=repr), key=lambda label: scores[label])

    def predict_batch(self, points: np.ndarray) -> List[Hashable]:
        """Most probable class label per row, one vectorised density call per class."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (m, d) array")
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        labels = sorted(self.class_points.keys(), key=repr)
        scores = np.empty((points.shape[0], len(labels)))
        for column, label in enumerate(labels):
            scores[:, column] = float(np.log(self.priors[label])) + log_kernel_density_batch(
                points, self.class_points[label], self.bandwidths[label], kernel=self.kernel
            )
        # argmax over repr-sorted labels: first maximum wins, matching the
        # scalar predict()'s deterministic tie break.
        best = np.argmax(scores, axis=1)
        return [labels[int(i)] for i in best]
