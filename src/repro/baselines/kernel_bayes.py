"""Full kernel-density Bayes classifier.

The "infinite time" reference: the Bayes tree converges to exactly this
classifier when every node has been read (the frontier consists of all leaf
kernels), so it upper-bounds the anytime accuracy curves and is used in the
benchmarks as the asymptote of Figures 2-4.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

from ..stats.kernel import make_kernel, silverman_bandwidth

__all__ = ["KernelBayesClassifier"]


class KernelBayesClassifier:
    """Bayes classifier with a full kernel density estimate per class."""

    def __init__(self, kernel: str = "gaussian", bandwidth_scale: float = 1.0) -> None:
        if bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        self.kernel = kernel
        self.bandwidth_scale = bandwidth_scale
        self.class_points: Dict[Hashable, np.ndarray] = {}
        self.bandwidths: Dict[Hashable, np.ndarray] = {}
        self.priors: Dict[Hashable, float] = {}

    @property
    def is_fitted(self) -> bool:
        return bool(self.class_points)

    @property
    def classes(self) -> List[Hashable]:
        return list(self.class_points.keys())

    def fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> "KernelBayesClassifier":
        points = np.asarray(points, dtype=float)
        labels = list(labels)
        if points.ndim != 2 or len(labels) != points.shape[0]:
            raise ValueError("points must be (n, d) with one label per row")
        self.class_points = {}
        self.bandwidths = {}
        self.priors = {}
        total = points.shape[0]
        for label in sorted(set(labels), key=repr):
            mask = np.array([l == label for l in labels])
            class_points = points[mask]
            self.class_points[label] = class_points
            if class_points.shape[0] > 1:
                bandwidth = silverman_bandwidth(class_points) * self.bandwidth_scale
            else:
                bandwidth = np.ones(points.shape[1]) * self.bandwidth_scale
            self.bandwidths[label] = bandwidth
            self.priors[label] = class_points.shape[0] / total
        return self

    def class_density(self, x: Sequence[float] | np.ndarray, label: Hashable) -> float:
        """Kernel density estimate p(x | c) for one class."""
        x = np.asarray(x, dtype=float)
        points = self.class_points[label]
        bandwidth = self.bandwidths[label]
        total = 0.0
        for point in points:
            total += make_kernel(self.kernel, point, bandwidth).pdf(x)
        return total / points.shape[0]

    def posterior(self, x: Sequence[float] | np.ndarray) -> Dict[Hashable, float]:
        """Unnormalised posterior P(c) * p(x | c) per class."""
        if not self.is_fitted:
            raise ValueError("classifier has not been fitted")
        return {
            label: self.priors[label] * self.class_density(x, label) for label in self.class_points
        }

    def predict(self, x: Sequence[float] | np.ndarray) -> Hashable:
        scores = self.posterior(x)
        return max(sorted(scores.keys(), key=repr), key=lambda label: scores[label])

    def predict_batch(self, points: np.ndarray) -> List[Hashable]:
        return [self.predict(x) for x in np.asarray(points, dtype=float)]
