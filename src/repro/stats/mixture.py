"""Gaussian mixture models.

A *frontier* of the Bayes tree (paper Def. 3) defines a Gaussian mixture model
whose components are node entries weighted by the fraction of objects they
represent.  This module provides the mixture abstraction used both by the tree
and by the bulk-loading algorithms (Goldberger reduction, EM top-down).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

from .gaussian import Gaussian

__all__ = ["GaussianMixture"]


@dataclass
class GaussianMixture:
    """A finite mixture of diagonal-covariance Gaussian components."""

    components: List[Gaussian] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.components = list(self.components)
        if self.components:
            dim = self.components[0].dimension
            for component in self.components:
                if component.dimension != dim:
                    raise ValueError("all mixture components must share a dimension")

    # -- basic container behaviour -------------------------------------------------
    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self) -> Iterator[Gaussian]:
        return iter(self.components)

    def __getitem__(self, index: int) -> Gaussian:
        return self.components[index]

    @property
    def dimension(self) -> int:
        if not self.components:
            raise ValueError("empty mixture has no dimension")
        return self.components[0].dimension

    @property
    def weights(self) -> np.ndarray:
        """Vector of component weights in component order."""
        return np.array([c.weight for c in self.components], dtype=float)

    @property
    def total_weight(self) -> float:
        return float(sum(c.weight for c in self.components))

    # -- construction helpers ------------------------------------------------------
    @staticmethod
    def from_points(points: np.ndarray, bandwidth: np.ndarray | None = None) -> "GaussianMixture":
        """Kernel-density style mixture: one equally weighted component per point.

        If ``bandwidth`` is None the components are degenerate (zero variance)
        and should only be used as an intermediate representation.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        n, d = points.shape
        if bandwidth is None:
            variance = np.zeros(d)
        else:
            bandwidth = np.asarray(bandwidth, dtype=float)
            variance = bandwidth ** 2
        weight = 1.0 / n if n else 0.0
        components = [Gaussian(mean=p, variance=variance.copy(), weight=weight) for p in points]
        return GaussianMixture(components)

    def normalised(self) -> "GaussianMixture":
        """Return a copy whose weights sum to one."""
        total = self.total_weight
        if total <= 0:
            raise ValueError("cannot normalise a mixture with non-positive total weight")
        return GaussianMixture([c.with_weight(c.weight / total) for c in self.components])

    # -- densities ------------------------------------------------------------------
    def pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Mixture density at ``x`` (weights used as given, not re-normalised)."""
        x = np.asarray(x, dtype=float)
        return float(sum(c.weight * c.pdf(x) for c in self.components))

    def log_pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Numerically stable mixture log density at ``x``."""
        x = np.asarray(x, dtype=float)
        if not self.components:
            return -math.inf
        log_terms = np.array(
            [
                (math.log(c.weight) if c.weight > 0 else -math.inf) + c.log_pdf(x)
                for c in self.components
            ]
        )
        finite = log_terms[np.isfinite(log_terms)]
        if finite.size == 0:
            return -math.inf
        peak = finite.max()
        return float(peak + math.log(np.sum(np.exp(finite - peak))))

    def responsibilities(self, x: Sequence[float] | np.ndarray) -> np.ndarray:
        """Posterior probability of each component given ``x``."""
        x = np.asarray(x, dtype=float)
        densities = np.array([c.weight * c.pdf(x) for c in self.components], dtype=float)
        total = densities.sum()
        if total <= 0:
            return np.full(len(self.components), 1.0 / max(len(self.components), 1))
        return densities / total

    # -- sampling --------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` samples from the (normalised) mixture."""
        if not self.components:
            raise ValueError("cannot sample from an empty mixture")
        weights = self.weights
        weights = weights / weights.sum()
        choices = rng.choice(len(self.components), size=size, p=weights)
        samples = np.empty((size, self.dimension))
        for i, component_index in enumerate(choices):
            samples[i] = self.components[component_index].sample(rng, 1)[0]
        return samples

    # -- summary statistics ------------------------------------------------------------
    def mean(self) -> np.ndarray:
        """Overall mean of the (normalised) mixture."""
        weights = self.weights
        weights = weights / weights.sum()
        return np.sum([w * c.mean for w, c in zip(weights, self.components)], axis=0)

    def merged(self) -> Gaussian:
        """Moment-matched single Gaussian representing the whole mixture."""
        weights = self.weights
        total = weights.sum()
        if total <= 0:
            raise ValueError("cannot merge a mixture with non-positive total weight")
        weights = weights / total
        mean = np.sum([w * c.mean for w, c in zip(weights, self.components)], axis=0)
        second_moment = np.sum(
            [w * (c.variance + c.mean ** 2) for w, c in zip(weights, self.components)],
            axis=0,
        )
        variance = np.maximum(second_moment - mean ** 2, 0.0)
        return Gaussian(mean=mean, variance=variance, weight=float(total))
