"""Expectation-Maximisation for diagonal-covariance Gaussian mixtures.

The EMTopDown bulk load (paper §3.1) repeatedly runs EM on (subsets of) the
training data to split it into at most ``M`` clusters, where ``M`` is the tree
fanout.  The paper relies on a standard EM implementation (Dempster, Laird &
Rubin, 1977); we implement it from scratch here with the couple of practical
details the bulk load needs:

* k-means++-style seeding so runs are reproducible given a seed,
* empty-cluster handling (an empty cluster is re-seeded on the point with the
  lowest likelihood),
* the possibility that EM effectively returns *fewer* clusters than requested
  (components whose weight collapses are dropped), which the bulk load
  compensates for by re-splitting the biggest cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .gaussian import MIN_VARIANCE, Gaussian
from .mixture import GaussianMixture

__all__ = ["EMResult", "fit_gmm", "kmeans_plus_plus_centers", "hard_assignments"]


@dataclass
class EMResult:
    """Outcome of an EM run.

    Attributes
    ----------
    mixture:
        The fitted Gaussian mixture (weights sum to one, components whose
        weight collapsed below ``min_weight`` removed).
    responsibilities:
        (n, k) array of posterior component memberships for the training
        points, aligned with ``mixture.components``.
    log_likelihood:
        Final per-point average log likelihood.
    iterations:
        Number of EM iterations performed.
    converged:
        Whether the log-likelihood improvement dropped below the tolerance.
    """

    mixture: GaussianMixture
    responsibilities: np.ndarray
    log_likelihood: float
    iterations: int
    converged: bool


def kmeans_plus_plus_centers(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Choose ``k`` initial centers with the k-means++ heuristic."""
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if k <= 0:
        raise ValueError("k must be positive")
    if n == 0:
        raise ValueError("cannot seed centers from an empty point set")
    k = min(k, n)
    centers = [points[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(
            [np.sum((points - center) ** 2, axis=1) for center in centers], axis=0
        )
        total = distances.sum()
        if total <= 0:
            # All remaining points coincide with an existing center; pick any.
            centers.append(points[rng.integers(n)])
            continue
        probabilities = distances / total
        centers.append(points[rng.choice(n, p=probabilities)])
    return np.array(centers)


def _log_density_matrix(points: np.ndarray, means: np.ndarray, variances: np.ndarray) -> np.ndarray:
    """(n, k) matrix of per-component log densities, vectorised."""
    variances = np.maximum(variances, MIN_VARIANCE)
    # points: (n, d), means/variances: (k, d)
    diff = points[:, None, :] - means[None, :, :]
    log_norm = -0.5 * np.sum(np.log(2.0 * math.pi * variances), axis=1)  # (k,)
    quad = -0.5 * np.sum(diff * diff / variances[None, :, :], axis=2)  # (n, k)
    return log_norm[None, :] + quad


def fit_gmm(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    tolerance: float = 1e-4,
    min_weight: float = 1e-6,
    variance_floor: float = 1e-6,
) -> EMResult:
    """Fit a ``k``-component diagonal GMM to ``points`` with EM.

    Components whose mixing weight collapses below ``min_weight`` are removed
    from the returned mixture, so the result may contain fewer than ``k``
    components — exactly the situation the EMTopDown bulk load has to handle
    by re-splitting the biggest cluster.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    n, d = points.shape
    k = max(1, min(k, n))

    means = kmeans_plus_plus_centers(points, k, rng)
    k = means.shape[0]
    global_variance = np.maximum(points.var(axis=0), variance_floor)
    variances = np.tile(global_variance, (k, 1))
    weights = np.full(k, 1.0 / k)

    previous_ll = -math.inf
    converged = False
    iterations = 0
    responsibilities = np.full((n, k), 1.0 / k)

    while iterations < max_iterations:
        iterations += 1
        # E step ------------------------------------------------------------------
        log_densities = _log_density_matrix(points, means, variances)
        log_weighted = log_densities + np.log(np.maximum(weights, 1e-300))[None, :]
        peak = log_weighted.max(axis=1, keepdims=True)
        log_norm = peak + np.log(np.sum(np.exp(log_weighted - peak), axis=1, keepdims=True))
        responsibilities = np.exp(log_weighted - log_norm)
        log_likelihood = float(np.mean(log_norm))

        # M step ------------------------------------------------------------------
        counts = responsibilities.sum(axis=0)
        for j in range(k):
            if counts[j] <= min_weight * n:
                # Re-seed a collapsed component on the worst-explained point.
                worst = int(np.argmin(log_norm[:, 0]))
                means[j] = points[worst]
                variances[j] = global_variance
                counts[j] = 1.0
                responsibilities[:, j] = 0.0
                responsibilities[worst, j] = 1.0
            else:
                means[j] = responsibilities[:, j] @ points / counts[j]
                diff = points - means[j]
                variances[j] = np.maximum(
                    responsibilities[:, j] @ (diff * diff) / counts[j], variance_floor
                )
        weights = counts / counts.sum()

        if abs(log_likelihood - previous_ll) < tolerance:
            converged = True
            previous_ll = log_likelihood
            break
        previous_ll = log_likelihood

    keep = weights > min_weight
    if not np.all(keep):
        means = means[keep]
        variances = variances[keep]
        weights = weights[keep]
        weights = weights / weights.sum()
        responsibilities = responsibilities[:, keep]
        row_sums = responsibilities.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        responsibilities = responsibilities / row_sums

    mixture = GaussianMixture(
        [
            Gaussian(mean=means[j].copy(), variance=variances[j].copy(), weight=float(weights[j]))
            for j in range(means.shape[0])
        ]
    )
    return EMResult(
        mixture=mixture,
        responsibilities=responsibilities,
        log_likelihood=previous_ll,
        iterations=iterations,
        converged=converged,
    )


def hard_assignments(result: EMResult) -> np.ndarray:
    """Most likely component index per training point."""
    return np.argmax(result.responsibilities, axis=1)
