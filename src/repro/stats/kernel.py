"""Kernel density estimators used at the Bayes tree leaf level.

Section 2.1 of the paper stores one *kernel estimator* per training object at
leaf level and mixes kernels with Gaussian components higher up in the tree.
The paper uses Gaussian kernels with the data-independent bandwidth rule of
Silverman (1986); the future-work section (4.1) suggests evaluating
Epanechnikov kernels as well, which we also provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .gaussian import MIN_VARIANCE, Gaussian

__all__ = [
    "silverman_bandwidth",
    "silverman_bandwidth_from_stats",
    "GaussianKernel",
    "EpanechnikovKernel",
    "log_epanechnikov_pdf_batch",
    "kernel_density_batch",
    "log_kernel_density_batch",
    "make_kernel",
    "KERNEL_NAMES",
]


def log_epanechnikov_pdf_batch(
    x: np.ndarray, centers: np.ndarray, bandwidths: np.ndarray
) -> np.ndarray:
    """Log densities of many product Epanechnikov kernels.

    Mirrors :func:`repro.stats.gaussian.log_gaussian_pdf_batch`: ``x`` is one
    query ``(d,)`` or a batch ``(m, d)``; ``centers`` and ``bandwidths`` are
    ``(n, d)``.  Queries outside a kernel's support get ``-inf`` (log of the
    exact zero density), which composes cleanly with log-sum-exp mixing.
    Query batches are processed in chunks with the same memory bound as the
    Gaussian path.
    """
    from .gaussian import _BATCH_CHUNK_SCALARS

    x = np.asarray(x, dtype=float)
    centers = np.asarray(centers, dtype=float)
    bandwidths = np.asarray(bandwidths, dtype=float)
    if centers.ndim != 2 or centers.shape != bandwidths.shape:
        raise ValueError("centers and bandwidths must be matching (n, d) arrays")
    single = x.ndim == 1
    queries = x[None, :] if single else x
    if queries.ndim != 2 or queries.shape[1] != centers.shape[1]:
        raise ValueError(
            f"queries must have shape (m, {centers.shape[1]}), got {x.shape}"
        )
    m, (n, d) = queries.shape[0], centers.shape
    out = np.empty((m, n))
    step = max(1, _BATCH_CHUNK_SCALARS // max(1, n * d))
    for start in range(0, m, step):
        chunk = queries[start : start + step]
        u = (chunk[:, None, :] - centers[None, :, :]) / bandwidths
        per_dim = 0.75 * (1.0 - u * u) / bandwidths
        inside = np.all(np.abs(u) <= 1.0, axis=2)
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.sum(np.log(np.maximum(per_dim, 0.0)), axis=2)
        out[start : start + len(chunk)] = np.where(inside, logs, -np.inf)
    return out[0] if single else out


def _silverman_factor(n: float, d: int) -> float:
    """The data-independent factor of Silverman's rule of thumb."""
    return (4.0 / (d + 2.0)) ** (1.0 / (d + 4.0)) * n ** (-1.0 / (d + 4.0))


def _fill_zero_spread(sigma: np.ndarray) -> np.ndarray:
    """Replace zero-spread per-dimension sigmas with a data-scale fallback.

    A dimension with no spread (a constant feature, or duplicate points) has
    ``sigma = 0`` and Silverman's rule would produce a degenerate zero-width
    kernel.  Falling back to a *unit* sigma — the historical behaviour — is
    wrong on any dataset whose scale is far from 1 (a constant feature on a
    1e-6-scale dataset got a kernel a million times wider than the data).
    Instead, zero dimensions inherit the mean of the positive per-dimension
    sigmas, which keeps the fallback at the data's own scale; the unit sigma
    only remains when *every* dimension is constant (no scale information at
    all).
    """
    positive = sigma[sigma > 0]
    fallback = float(positive.mean()) if positive.size else 1.0
    return np.where(sigma > 0, sigma, fallback)


def silverman_bandwidth(points: np.ndarray) -> np.ndarray:
    """Per-dimension bandwidth following Silverman's rule of thumb.

    For ``n`` observations in ``d`` dimensions the rule is

    ``h_i = sigma_i * (4 / (d + 2)) ** (1 / (d + 4)) * n ** (-1 / (d + 4))``

    where ``sigma_i`` is the per-dimension standard deviation.  This is the
    "common data independent method according to [18]" referenced in the
    paper (Silverman, 1986).  Zero-spread dimensions fall back to the mean
    positive sigma (see :func:`_fill_zero_spread`).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    n, d = points.shape
    sigma = _fill_zero_spread(points.std(axis=0))
    return sigma * _silverman_factor(n, d)


def silverman_bandwidth_from_stats(
    n: float, linear_sum: np.ndarray, squared_sum: np.ndarray
) -> np.ndarray:
    """Silverman's rule evaluated from running sufficient statistics, in O(d).

    ``(n, LS, SS)`` are the cluster-feature-style summaries of the training
    set (count, per-dimension sum and sum of squares); the per-dimension
    sigma is recovered as ``sqrt(SS/n - (LS/n)^2)`` (clamped at zero against
    cancellation).  This is what lets the Bayes tree keep its bandwidth
    up to date in constant time per streamed insert instead of re-scanning
    the full training set.  Same zero-spread fallback as
    :func:`silverman_bandwidth`.

    The ``SS/n - mean^2`` form loses all spread information when the data's
    mean is large relative to its spread (catastrophic cancellation in
    float64).  Accumulate the sums around a fixed origin near the data —
    e.g. the first observation, as ``BayesTree`` does — rather than around
    zero; variances are shift-invariant, so the result is unchanged.
    """
    linear_sum = np.asarray(linear_sum, dtype=float)
    squared_sum = np.asarray(squared_sum, dtype=float)
    if n <= 0:
        raise ValueError("n must be positive")
    mean = linear_sum / n
    variance = np.maximum(squared_sum / n - mean * mean, 0.0)
    sigma = _fill_zero_spread(np.sqrt(variance))
    return sigma * _silverman_factor(n, linear_sum.shape[0])


@dataclass(frozen=True)
class GaussianKernel:
    """Gaussian kernel estimator centred at a training object.

    The kernel is an isotropic-per-dimension Gaussian with bandwidth vector
    ``h``; it is exactly a diagonal Gaussian with variance ``h**2`` which is
    what lets the Bayes tree mix kernels and node Gaussians in one model.
    """

    center: np.ndarray
    bandwidth: np.ndarray

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float)
        bandwidth = np.asarray(self.bandwidth, dtype=float)
        if bandwidth.ndim == 0:
            bandwidth = np.full_like(center, float(bandwidth))
        if center.shape != bandwidth.shape:
            raise ValueError("center and bandwidth must have the same shape")
        if np.any(bandwidth <= 0):
            raise ValueError("bandwidth must be strictly positive")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "bandwidth", bandwidth)

    @property
    def dimension(self) -> int:
        return self.center.shape[0]

    def pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Kernel density contribution at ``x`` (integrates to one)."""
        return self.as_gaussian().pdf(x)

    def as_gaussian(self, weight: float = 1.0) -> Gaussian:
        """View this kernel as a Gaussian component (variance = h**2)."""
        return Gaussian(mean=self.center, variance=self.bandwidth ** 2, weight=weight)


@dataclass(frozen=True)
class EpanechnikovKernel:
    """Product Epanechnikov kernel estimator.

    ``K(u) = 0.75 * (1 - u^2)`` for ``|u| <= 1`` per dimension, with the same
    bandwidth vector convention as :class:`GaussianKernel`.  Listed in the
    paper's future work as an alternative to the Gaussian kernel.
    """

    center: np.ndarray
    bandwidth: np.ndarray

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float)
        bandwidth = np.asarray(self.bandwidth, dtype=float)
        if bandwidth.ndim == 0:
            bandwidth = np.full_like(center, float(bandwidth))
        if center.shape != bandwidth.shape:
            raise ValueError("center and bandwidth must have the same shape")
        if np.any(bandwidth <= 0):
            raise ValueError("bandwidth must be strictly positive")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "bandwidth", bandwidth)

    @property
    def dimension(self) -> int:
        return self.center.shape[0]

    def pdf(self, x: Sequence[float] | np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        u = (x - self.center) / self.bandwidth
        inside = np.abs(u) <= 1.0
        if not np.all(inside):
            return 0.0
        per_dim = 0.75 * (1.0 - u * u) / self.bandwidth
        return float(np.prod(per_dim))

    def as_gaussian(self, weight: float = 1.0) -> Gaussian:
        """Moment-matched Gaussian view (variance of Epanechnikov is h^2/5).

        The Bayes tree's cluster-feature arithmetic only understands
        Gaussians, so non-Gaussian kernels are summarised by their first two
        moments when they are aggregated into inner-node entries.
        """
        return Gaussian(
            mean=self.center,
            variance=np.maximum(self.bandwidth ** 2 / 5.0, MIN_VARIANCE),
            weight=weight,
        )


KERNEL_NAMES = ("gaussian", "epanechnikov")


def log_kernel_density_batch(
    queries: np.ndarray,
    centers: np.ndarray,
    bandwidth: np.ndarray,
    kernel: str = "gaussian",
) -> np.ndarray:
    """Log kernel density estimate ``log( mean_i K_h(x - p_i) )`` at many queries.

    ``centers`` is the ``(n, d)`` training set of one density, ``bandwidth``
    the shared ``(d,)`` bandwidth vector (a scalar is broadcast), ``queries``
    one ``(d,)`` vector or an ``(m, d)`` batch.  The mean over kernels is
    taken with log-sum-exp, so the result is finite wherever any kernel
    contributes — the high-dimensional regime where a linear-space sum of
    pdf values underflows to an all-zero density is exactly where the full
    kernel-Bayes baseline needs this path (RL001 keeps the exp confined to
    ``stats/``).
    """
    centers = np.asarray(centers, dtype=float)
    if centers.ndim != 2 or centers.shape[0] == 0:
        raise ValueError("centers must be a non-empty (n, d) array")
    bandwidth = np.asarray(bandwidth, dtype=float)
    if bandwidth.ndim == 0:
        bandwidth = np.full(centers.shape[1], float(bandwidth))
    if bandwidth.shape != (centers.shape[1],):
        raise ValueError("bandwidth must be a (d,) vector matching the centers")
    if np.any(bandwidth <= 0):
        raise ValueError("bandwidth must be strictly positive")
    spread = np.broadcast_to(bandwidth, centers.shape)
    if kernel == "gaussian":
        from .gaussian import log_gaussian_pdf_batch

        log_kernels = log_gaussian_pdf_batch(queries, centers, spread ** 2)
    elif kernel == "epanechnikov":
        log_kernels = log_epanechnikov_pdf_batch(queries, centers, spread)
    else:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}")
    from .gaussian import logsumexp

    result = logsumexp(log_kernels, axis=-1) - np.log(centers.shape[0])
    return np.asarray(result)


def kernel_density_batch(
    queries: np.ndarray,
    centers: np.ndarray,
    bandwidth: np.ndarray,
    kernel: str = "gaussian",
) -> np.ndarray:
    """Linear-space kernel density estimate at many queries.

    ``exp`` of :func:`log_kernel_density_batch` — the probability-space API
    boundary for callers that report densities directly (underflows to 0.0
    where the log density falls below float range; use the log variant for
    classification posteriors).
    """
    return np.exp(log_kernel_density_batch(queries, centers, bandwidth, kernel=kernel))


def make_kernel(
    name: str, center: np.ndarray, bandwidth: np.ndarray
) -> "GaussianKernel | EpanechnikovKernel":
    """Factory for kernel estimators by name (``gaussian`` or ``epanechnikov``)."""
    if name == "gaussian":
        return GaussianKernel(center=center, bandwidth=bandwidth)
    if name == "epanechnikov":
        return EpanechnikovKernel(center=center, bandwidth=bandwidth)
    raise ValueError(f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}")
