"""Multivariate Gaussian densities with diagonal covariance.

The Bayes tree (Kranen, VLDB 2009) represents every node entry by the mean
and per-dimension variance of the objects in its subtree, i.e. a diagonal
(axis-aligned) multivariate normal distribution.  This module provides that
density, both as a light-weight value object (:class:`Gaussian`) and as
vectorised free functions used in inner loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Gaussian",
    "gaussian_pdf",
    "log_gaussian_pdf",
    "MIN_VARIANCE",
]

#: Variances below this value are clamped before evaluating a density.  The
#: paper's kernels at leaf level have a data driven bandwidth; in degenerate
#: synthetic cases (duplicate points, constant features) the empirical
#: variance can collapse to zero, which would make the density undefined.
MIN_VARIANCE = 1e-9


def _as_vector(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be a 1-d vector, got shape {array.shape}")
    return array


def log_gaussian_pdf(x: np.ndarray, mean: np.ndarray, variance: np.ndarray) -> float:
    """Log density of a diagonal-covariance Gaussian at ``x``.

    Parameters
    ----------
    x, mean, variance:
        Vectors of identical dimensionality.  ``variance`` holds the
        per-dimension variances (the diagonal of the covariance matrix).
    """
    variance = np.maximum(variance, MIN_VARIANCE)
    diff = x - mean
    return float(
        -0.5 * np.sum(np.log(2.0 * math.pi * variance))
        - 0.5 * np.sum(diff * diff / variance)
    )


def gaussian_pdf(x: np.ndarray, mean: np.ndarray, variance: np.ndarray) -> float:
    """Density of a diagonal-covariance Gaussian at ``x``."""
    return math.exp(log_gaussian_pdf(np.asarray(x, float), np.asarray(mean, float), np.asarray(variance, float)))


@dataclass(frozen=True)
class Gaussian:
    """A weighted diagonal-covariance Gaussian component.

    Attributes
    ----------
    mean:
        Component mean vector.
    variance:
        Per-dimension variance vector (diagonal covariance).
    weight:
        Mixing weight; components inside a mixture normally sum to one but the
        class does not enforce that on its own.
    """

    mean: np.ndarray
    variance: np.ndarray
    weight: float = 1.0

    def __post_init__(self) -> None:
        mean = _as_vector(self.mean, "mean")
        variance = _as_vector(self.variance, "variance")
        if mean.shape != variance.shape:
            raise ValueError(
                f"mean and variance must have the same shape, got {mean.shape} vs {variance.shape}"
            )
        if np.any(variance < 0):
            raise ValueError("variance must be non-negative")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "variance", np.maximum(variance, 0.0))

    @property
    def dimension(self) -> int:
        """Number of dimensions of the component."""
        return self.mean.shape[0]

    def pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Unweighted density at ``x``."""
        return gaussian_pdf(np.asarray(x, float), self.mean, self.variance)

    def log_pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Unweighted log density at ``x``."""
        return log_gaussian_pdf(np.asarray(x, float), self.mean, self.variance)

    def weighted_pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Density at ``x`` multiplied by the component weight."""
        return self.weight * self.pdf(x)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` samples from the component."""
        std = np.sqrt(np.maximum(self.variance, MIN_VARIANCE))
        return rng.normal(self.mean, std, size=(size, self.dimension))

    def with_weight(self, weight: float) -> "Gaussian":
        """Return a copy of this component with a different weight."""
        return Gaussian(mean=self.mean.copy(), variance=self.variance.copy(), weight=weight)

    @staticmethod
    def from_points(points: np.ndarray, weight: float = 1.0) -> "Gaussian":
        """Fit a single Gaussian to a set of points by moments.

        Uses the biased (maximum likelihood) variance estimator, matching the
        cluster-feature arithmetic of the Bayes tree (SS/n - (LS/n)^2).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        mean = points.mean(axis=0)
        variance = points.var(axis=0)
        return Gaussian(mean=mean, variance=variance, weight=weight)
