"""Multivariate Gaussian densities with diagonal covariance.

The Bayes tree (Kranen, VLDB 2009) represents every node entry by the mean
and per-dimension variance of the objects in its subtree, i.e. a diagonal
(axis-aligned) multivariate normal distribution.  This module provides that
density, both as a light-weight value object (:class:`Gaussian`) and as
vectorised free functions used in inner loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Gaussian",
    "gaussian_pdf",
    "log_gaussian_pdf",
    "log_gaussian_pdf_batch",
    "logsumexp",
    "probabilities_from_log",
    "safe_exp",
    "MIN_VARIANCE",
]


def safe_exp(value: float) -> float:
    """``math.exp`` saturating to 0.0 / inf instead of raising.

    Linear-space views of log densities can legitimately exceed the float
    range in both directions (tiny bandwidths push log densities above ~709);
    ``math.exp`` raises ``OverflowError`` there, which would turn a valid
    query into a crash.
    """
    if value == -math.inf:
        return 0.0
    try:
        return math.exp(value)
    except OverflowError:
        return math.inf

#: Variances below this value are clamped before evaluating a density.  The
#: paper's kernels at leaf level have a data driven bandwidth; in degenerate
#: synthetic cases (duplicate points, constant features) the empirical
#: variance can collapse to zero, which would make the density undefined.
MIN_VARIANCE = 1e-9


def _as_vector(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be a 1-d vector, got shape {array.shape}")
    return array


def log_gaussian_pdf(x: np.ndarray, mean: np.ndarray, variance: np.ndarray) -> float:
    """Log density of a diagonal-covariance Gaussian at ``x``.

    Parameters
    ----------
    x, mean, variance:
        Vectors of identical dimensionality.  ``variance`` holds the
        per-dimension variances (the diagonal of the covariance matrix).
    """
    variance = np.maximum(variance, MIN_VARIANCE)
    diff = x - mean
    return float(
        -0.5 * np.sum(np.log(2.0 * math.pi * variance))
        - 0.5 * np.sum(diff * diff / variance)
    )


def gaussian_pdf(x: np.ndarray, mean: np.ndarray, variance: np.ndarray) -> float:
    """Density of a diagonal-covariance Gaussian at ``x``."""
    return math.exp(log_gaussian_pdf(np.asarray(x, float), np.asarray(mean, float), np.asarray(variance, float)))


#: Chunk size (in scalars of the broadcast ``(m, n, d)`` temporary) used by the
#: batched log density; keeps peak memory of large query batches bounded while
#: still amortising the numpy dispatch overhead.
_BATCH_CHUNK_SCALARS = 4_000_000


def log_gaussian_pdf_batch(
    x: np.ndarray, means: np.ndarray, variances: np.ndarray
) -> np.ndarray:
    """Log densities of many diagonal Gaussians, optionally at many queries.

    Parameters
    ----------
    x:
        Either one query vector of shape ``(d,)`` or a batch of queries of
        shape ``(m, d)``.
    means, variances:
        Component parameters of shape ``(n, d)`` — one row per Gaussian.

    Returns
    -------
    np.ndarray
        Shape ``(n,)`` for a single query, ``(m, n)`` for a query batch, with
        ``out[i, j] = log N(x_i; means[j], diag(variances[j]))``.

    The per-component terms are computed with the same ``(x - mu)^2 / var``
    formula as :func:`log_gaussian_pdf`, so a batched evaluation agrees with
    the scalar one to floating-point round-off.
    """
    x = np.asarray(x, dtype=float)
    means = np.asarray(means, dtype=float)
    variances = np.maximum(np.asarray(variances, dtype=float), MIN_VARIANCE)
    if means.ndim != 2 or means.shape != variances.shape:
        raise ValueError("means and variances must be matching (n, d) arrays")
    single = x.ndim == 1
    queries = x[None, :] if single else x
    if queries.ndim != 2 or queries.shape[1] != means.shape[1]:
        raise ValueError(
            f"queries must have shape (m, {means.shape[1]}), got {x.shape}"
        )
    # Normalisation term is query independent: -0.5 * sum(log(2 pi var)).
    norm = -0.5 * np.sum(np.log(2.0 * math.pi * variances), axis=1)
    m, n = queries.shape[0], means.shape[0]
    if n == 0:
        empty = np.empty((m, 0))
        return empty[0] if single else empty
    out = np.empty((m, n))
    step = max(1, _BATCH_CHUNK_SCALARS // max(1, n * means.shape[1]))
    for start in range(0, m, step):
        chunk = queries[start : start + step]
        diff = chunk[:, None, :] - means[None, :, :]
        out[start : start + len(chunk)] = norm - 0.5 * np.sum(
            diff * diff / variances, axis=2
        )
    return out[0] if single else out


def logsumexp(a: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Numerically stable ``log(sum(exp(a)))`` along ``axis``.

    Handles empty inputs and all ``-inf`` slices (both yield ``-inf``) without
    emitting numpy warnings, which makes it safe for log densities of queries
    arbitrarily far from the data.
    """
    a = np.asarray(a, dtype=float)
    if a.size == 0:
        if axis is None:
            return float("-inf")
        shape = list(a.shape)
        del shape[axis]
        return np.full(shape, -np.inf)
    amax = np.max(a, axis=axis, keepdims=True)
    # Replace -inf maxima by 0 so the subtraction below never produces NaN.
    shift = np.where(np.isfinite(amax), amax, 0.0)
    with np.errstate(divide="ignore"):
        summed = np.log(np.sum(np.exp(a - shift), axis=axis, keepdims=True))
    result = summed + shift
    if axis is None:
        return float(result.reshape(()))
    return np.squeeze(result, axis=axis)


def probabilities_from_log(log_values: np.ndarray) -> np.ndarray:
    """Normalised linear-space probabilities of a vector of log weights.

    ``exp(v - logsumexp(v))`` — the one sanctioned way to leave log space
    for a posterior: subtracting the log normaliser first keeps the largest
    term at ``exp(0)`` so the result never underflows to an all-zero vector
    (the pre-log-space engine's high-dimension failure mode).  All ``-inf``
    inputs yield an all-zero vector rather than NaN; callers decide on a
    fallback (the classifier uses a uniform posterior).
    """
    log_values = np.asarray(log_values, dtype=float)
    normaliser = logsumexp(log_values)
    if not np.isfinite(normaliser):
        return np.zeros_like(log_values)
    return np.exp(log_values - normaliser)


@dataclass(frozen=True)
class Gaussian:
    """A weighted diagonal-covariance Gaussian component.

    Attributes
    ----------
    mean:
        Component mean vector.
    variance:
        Per-dimension variance vector (diagonal covariance).
    weight:
        Mixing weight; components inside a mixture normally sum to one but the
        class does not enforce that on its own.
    """

    mean: np.ndarray
    variance: np.ndarray
    weight: float = 1.0

    def __post_init__(self) -> None:
        mean = _as_vector(self.mean, "mean")
        variance = _as_vector(self.variance, "variance")
        if mean.shape != variance.shape:
            raise ValueError(
                f"mean and variance must have the same shape, got {mean.shape} vs {variance.shape}"
            )
        if np.any(variance < 0):
            raise ValueError("variance must be non-negative")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "variance", np.maximum(variance, 0.0))

    @property
    def dimension(self) -> int:
        """Number of dimensions of the component."""
        return self.mean.shape[0]

    def pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Unweighted density at ``x``."""
        return gaussian_pdf(np.asarray(x, float), self.mean, self.variance)

    def log_pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Unweighted log density at ``x``."""
        return log_gaussian_pdf(np.asarray(x, float), self.mean, self.variance)

    def weighted_pdf(self, x: Sequence[float] | np.ndarray) -> float:
        """Density at ``x`` multiplied by the component weight."""
        return self.weight * self.pdf(x)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` samples from the component."""
        std = np.sqrt(np.maximum(self.variance, MIN_VARIANCE))
        return rng.normal(self.mean, std, size=(size, self.dimension))

    def with_weight(self, weight: float) -> "Gaussian":
        """Return a copy of this component with a different weight."""
        return Gaussian(mean=self.mean.copy(), variance=self.variance.copy(), weight=weight)

    @staticmethod
    def from_points(points: np.ndarray, weight: float = 1.0) -> "Gaussian":
        """Fit a single Gaussian to a set of points by moments.

        Uses the biased (maximum likelihood) variance estimator, matching the
        cluster-feature arithmetic of the Bayes tree (SS/n - (LS/n)^2).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        mean = points.mean(axis=0)
        variance = points.var(axis=0)
        return Gaussian(mean=mean, variance=variance, weight=weight)
