"""Statistical substrate: Gaussians, kernels, mixtures, KL divergence and EM."""

from .em import EMResult, fit_gmm, hard_assignments, kmeans_plus_plus_centers
from .gaussian import (
    MIN_VARIANCE,
    Gaussian,
    gaussian_pdf,
    log_gaussian_pdf,
    logsumexp,
    probabilities_from_log,
)
from .kernel import (
    KERNEL_NAMES,
    EpanechnikovKernel,
    GaussianKernel,
    kernel_density_batch,
    log_kernel_density_batch,
    make_kernel,
    silverman_bandwidth,
    silverman_bandwidth_from_stats,
)
from .kl import kl_gaussian, kl_matching_distance, kl_mixture_monte_carlo
from .mixture import GaussianMixture

__all__ = [
    "EMResult",
    "fit_gmm",
    "hard_assignments",
    "kmeans_plus_plus_centers",
    "MIN_VARIANCE",
    "Gaussian",
    "gaussian_pdf",
    "log_gaussian_pdf",
    "logsumexp",
    "probabilities_from_log",
    "KERNEL_NAMES",
    "EpanechnikovKernel",
    "GaussianKernel",
    "kernel_density_batch",
    "log_kernel_density_batch",
    "make_kernel",
    "silverman_bandwidth",
    "silverman_bandwidth_from_stats",
    "kl_gaussian",
    "kl_matching_distance",
    "kl_mixture_monte_carlo",
    "GaussianMixture",
]
