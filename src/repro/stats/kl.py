"""Kullback-Leibler divergences used by the Goldberger bulk load.

The Goldberger bulk-loading approach (paper §3.1, following Goldberger &
Roweis, NIPS 2004) measures the quality of a coarse mixture ``g``
approximating a fine mixture ``f`` by

``d(f, g) = sum_i alpha_i * min_j KL(f_i, g_j)``        (paper Def. 4)

which only requires the closed-form KL divergence between individual Gaussian
components.  Because the Bayes tree stores diagonal covariances, we implement
the diagonal-Gaussian KL in closed form.
"""

from __future__ import annotations


import numpy as np

from .gaussian import MIN_VARIANCE, Gaussian
from .mixture import GaussianMixture

__all__ = [
    "kl_gaussian",
    "kl_matching_distance",
    "kl_mixture_monte_carlo",
]


def kl_gaussian(p: Gaussian, q: Gaussian) -> float:
    """Closed-form KL divergence KL(p || q) between diagonal Gaussians."""
    if p.dimension != q.dimension:
        raise ValueError("components must have the same dimension")
    vp = np.maximum(p.variance, MIN_VARIANCE)
    vq = np.maximum(q.variance, MIN_VARIANCE)
    diff = q.mean - p.mean
    return float(
        0.5
        * np.sum(np.log(vq / vp) + (vp + diff * diff) / vq - 1.0)
    )


def kl_matching_distance(fine: GaussianMixture, coarse: GaussianMixture) -> float:
    """Goldberger matching distance d(f, g) of paper Definition 4.

    Each fine component is matched to its KL-closest coarse component and the
    per-component divergences are combined weighted by the fine weights.
    Weights of ``fine`` are used as given (they are expected to sum to one).
    """
    if len(coarse) == 0:
        raise ValueError("coarse mixture must contain at least one component")
    total = 0.0
    for component in fine:
        best = min(kl_gaussian(component, candidate) for candidate in coarse)
        total += component.weight * best
    return float(total)


def kl_mixture_monte_carlo(
    p: GaussianMixture,
    q: GaussianMixture,
    rng: np.random.Generator,
    samples: int = 2000,
) -> float:
    """Monte-Carlo estimate of KL(p || q) between two mixtures.

    There is no closed form for mixture-to-mixture KL; the Goldberger distance
    above is the practical surrogate used in bulk loading.  The Monte-Carlo
    estimate is provided for evaluation purposes (e.g. checking that reduced
    models stay close to the original) and follows the accelerated sampling
    scheme of Chen et al. (ICASSP 2008) in its simplest form.
    """
    draws = p.normalised().sample(rng, samples)
    log_p = np.array([p.normalised().log_pdf(x) for x in draws])
    log_q = np.array([q.normalised().log_pdf(x) for x in draws])
    return float(np.mean(log_p - log_q))
