"""Temporal decay for the index layer: logical clocks and decayed summaries.

Paper §4.2: "Exploiting their temporal multiplicity we can decrease the
influence of older data in the current representation by an exponential decay
function.  Moreover, this allows to reuse node entries if their contribution
is too insignificant due to their age."

The decay function is ``2 ** (-decay_rate * elapsed_time)`` — exactly the
exponential decay later used by ClusTree (Kranen et al., 2011).  Because all
three cluster-feature summaries ``(n, LS, SS)`` scale by the *same* factor,
decayed entries keep their mean and variance and only lose weight, which is
what lets the whole query engine run unchanged on decayed statistics.

Two building blocks live here:

* :class:`DecayClock` — one logical clock per tree.  It pairs the decay rate
  ``lambda`` with the current logical time; the index substrate stamps new
  observations with ``clock.now`` and lazily ages stored summaries to the
  clock when they are read or updated.  ``decay_rate = 0`` disables decay
  entirely: every factor is exactly ``1.0`` and all code paths are
  bit-identical to the non-decayed tree.
* :class:`DecayedClusterFeature` — a cluster feature paired with the
  timestamp of its last update, aged lazily before reads and updates.  It is
  shared by the anytime-clustering extension (``repro.clustering``) and the
  Bayes tree's running training statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..stats.gaussian import Gaussian
from .cluster_feature import ClusterFeature

__all__ = ["LOG_HALF", "DecayClock", "DecayedClusterFeature", "decay_factor"]

#: ``ln(1/2)`` — the per-unit log decay of a half-life-one process.
LOG_HALF = -math.log(2.0)


def decay_factor(decay_rate: float, elapsed: float) -> float:
    """Multiplicative weight loss ``2 ** (-decay_rate * elapsed)``.

    Exactly ``1.0`` when the rate is zero or no time passed, so disabled
    decay never perturbs a single bit of the undecayed statistics.
    """
    if decay_rate == 0.0 or elapsed <= 0.0:
        return 1.0
    return 2.0 ** (-decay_rate * elapsed)


@dataclass
class DecayClock:
    """Logical clock of one tree: decay rate plus the current logical time.

    The clock only ever moves forward (:meth:`advance` clamps), matching the
    monotone arrival times of a stream.  It is *shared* between a Bayes tree
    and its index substrate, so insertion-path updates and query-time reads
    agree on "now" without threading a timestamp through every call.
    """

    decay_rate: float = 0.0
    now: float = 0.0

    def __post_init__(self) -> None:
        if self.decay_rate < 0:
            raise ValueError("decay_rate must be non-negative")

    @property
    def enabled(self) -> bool:
        """True when decay actually happens (a positive rate)."""
        return self.decay_rate > 0.0

    def advance(self, now: float) -> float:
        """Move the clock forward to ``now`` (never backwards); returns it."""
        now = float(now)
        if now > self.now:
            self.now = now
        return self.now

    def factor(self, elapsed: float) -> float:
        """Decay accumulated over ``elapsed`` time units."""
        return decay_factor(self.decay_rate, elapsed)

    def weight_at(self, timestamp: float) -> float:
        """Decayed weight of a unit observation stamped at ``timestamp``."""
        return decay_factor(self.decay_rate, self.now - timestamp)

    def horizon(self, threshold: float) -> float:
        """Time for a fresh observation's weight to decay below ``threshold``.

        ``log2(1/threshold) / decay_rate`` — the characteristic length of the
        sliding horizon the tree effectively remembers.  Infinite when decay
        is disabled or the threshold is non-positive (nothing ever becomes
        insignificant).
        """
        if not self.enabled or threshold <= 0.0:
            return math.inf
        return math.log2(1.0 / threshold) / self.decay_rate


class DecayedClusterFeature:
    """Cluster feature whose weight decays exponentially with time.

    The summaries are valued *as of* ``last_update``; :meth:`decay_to` ages
    them to a later time by multiplying all of ``(n, LS, SS)`` with the decay
    factor (idempotent for equal timestamps, an exact no-op for a zero rate).

    An explicit ``__init__`` (rather than a dataclass field defaulting to
    ``None``) keeps ``feature`` non-optional after construction: callers may
    omit it, but every attribute access sees a real :class:`ClusterFeature`.
    """

    dimension: int
    decay_rate: float
    feature: ClusterFeature
    last_update: float

    def __init__(
        self,
        dimension: int,
        decay_rate: float = 0.01,
        feature: Optional[ClusterFeature] = None,
        last_update: float = 0.0,
    ) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        if decay_rate < 0:
            raise ValueError("decay_rate must be non-negative")
        if feature is None:
            feature = ClusterFeature.zero(dimension)
        if feature.dimension != dimension:
            raise ValueError("feature dimensionality mismatch")
        self.dimension = dimension
        self.decay_rate = decay_rate
        self.feature = feature
        self.last_update = last_update

    # -- decay handling -------------------------------------------------------------------
    def decay_factor(self, now: float) -> float:
        """Multiplicative decay accumulated since the last update."""
        return decay_factor(self.decay_rate, now - self.last_update)

    def decay_to(self, now: float) -> None:
        """Age the summaries to time ``now`` (idempotent for equal timestamps)."""
        if now < self.last_update:
            raise ValueError("time must not run backwards")
        factor = self.decay_factor(now)
        if factor != 1.0:
            self.feature = self.feature.scaled(factor)
        self.last_update = now

    # -- updates ----------------------------------------------------------------------------
    def add_point(self, point: Sequence[float] | np.ndarray, now: float, weight: float = 1.0) -> None:
        """Insert a point at time ``now`` (decaying the existing content first)."""
        self.decay_to(now)
        self.feature.add_point(np.asarray(point, dtype=float), weight=weight)

    def absorb(self, other: "DecayedClusterFeature", now: float) -> None:
        """Merge another decayed CF into this one (both aged to ``now`` first)."""
        if other.dimension != self.dimension:
            raise ValueError("cannot absorb a cluster feature of different dimension")
        self.decay_to(now)
        other_copy = other.copy()
        other_copy.decay_to(now)
        self.feature = self.feature + other_copy.feature

    def clear(self, now: Optional[float] = None) -> None:
        """Reset to the empty feature (used when a buffer is taken along)."""
        self.feature = ClusterFeature.zero(self.dimension)
        if now is not None:
            self.last_update = now

    def copy(self) -> "DecayedClusterFeature":
        return DecayedClusterFeature(
            dimension=self.dimension,
            decay_rate=self.decay_rate,
            feature=self.feature.copy(),
            last_update=self.last_update,
        )

    # -- views --------------------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.feature.is_empty

    def weight(self, now: Optional[float] = None) -> float:
        """Decayed number of represented objects at time ``now`` (or the last update)."""
        if now is None:
            return self.feature.n
        return self.feature.n * self.decay_factor(now)

    def mean(self) -> np.ndarray:
        return self.feature.mean()

    def variance(self) -> np.ndarray:
        return self.feature.variance()

    def to_gaussian(self, weight: Optional[float] = None) -> Gaussian:
        return self.feature.to_gaussian(weight=weight)
