"""R*-tree node split heuristics.

The Bayes tree "extends the R*-tree" (paper §2.2), so overflowing nodes are
split with the R* topological split (Beckmann et al., SIGMOD 1990):

1. *Choose split axis*: for every dimension, sort the entries by their lower
   and by their upper MBR boundary and consider all legal distributions into
   two groups; the axis with the minimum total margin is chosen.
2. *Choose split index*: along the chosen axis, the distribution with the
   minimum overlap between the two group MBRs is chosen (ties broken by the
   minimum combined area).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .node import AnyEntry

__all__ = ["SplitResult", "rstar_split"]


@dataclass
class SplitResult:
    """The two entry groups produced by a node split."""

    first: List[AnyEntry]
    second: List[AnyEntry]


def _distribution_stats(
    lowers: np.ndarray, uppers: np.ndarray, order: np.ndarray, min_entries: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Margins, overlaps and areas of every legal split of one entry ordering.

    Group MBRs of all distributions are derived at once from prefix/suffix
    running bounds of the ordered ``(n, d)`` boundary arrays — O(n·d) for the
    whole ordering instead of O(n²·d) union recomputations per distribution.
    Split ``k`` (``k = min_entries .. n - min_entries``) puts the first ``k``
    ordered entries into the first group.
    """
    lo = lowers[order]
    up = uppers[order]
    prefix_lo = np.minimum.accumulate(lo, axis=0)
    prefix_up = np.maximum.accumulate(up, axis=0)
    suffix_lo = np.minimum.accumulate(lo[::-1], axis=0)[::-1]
    suffix_up = np.maximum.accumulate(up[::-1], axis=0)[::-1]

    sizes = np.arange(min_entries, len(order) - min_entries + 1)
    first_lo, first_up = prefix_lo[sizes - 1], prefix_up[sizes - 1]
    second_lo, second_up = suffix_lo[sizes], suffix_up[sizes]

    first_extent = first_up - first_lo
    second_extent = second_up - second_lo
    margins = first_extent.sum(axis=1) + second_extent.sum(axis=1)
    areas = first_extent.prod(axis=1) + second_extent.prod(axis=1)
    sides = np.minimum(first_up, second_up) - np.maximum(first_lo, second_lo)
    overlaps = np.where((sides <= 0).any(axis=1), 0.0, sides.prod(axis=1))
    return margins, overlaps, areas


def rstar_split(entries: Sequence[AnyEntry], min_entries: int) -> SplitResult:
    """Split an overflowing entry list into two groups using the R* heuristic.

    Parameters
    ----------
    entries:
        The ``M + 1`` entries of the overflowing node.
    min_entries:
        Minimum number of entries each resulting group must contain.
    """
    entries = list(entries)
    if len(entries) < 2 * min_entries:
        raise ValueError(
            f"cannot split {len(entries)} entries with a minimum group size of {min_entries}"
        )
    lowers = np.stack([entry.mbr.lower for entry in entries])
    uppers = np.stack([entry.mbr.upper for entry in entries])
    dimension = lowers.shape[1]

    def orderings(axis: int) -> List[np.ndarray]:
        # Stable sorts by the lower and by the upper boundary, matching the
        # original sorted(..., key=...) tie behaviour.
        return [
            np.argsort(lowers[:, axis], kind="stable"),
            np.argsort(uppers[:, axis], kind="stable"),
        ]

    # 1. choose the split axis by minimum total margin.
    best_axis = 0
    best_margin = np.inf
    for axis in range(dimension):
        margin = 0.0
        for order in orderings(axis):
            margins, _, _ = _distribution_stats(lowers, uppers, order, min_entries)
            margin += float(margins.sum())
        if margin < best_margin:
            best_margin = margin
            best_axis = axis

    # 2. choose the distribution on that axis by minimum overlap, then area.
    best_key: Tuple[float, float] | None = None
    best_order: np.ndarray | None = None
    best_size = 0
    for order in orderings(best_axis):
        _, overlaps, areas = _distribution_stats(lowers, uppers, order, min_entries)
        for index, first_size in enumerate(
            range(min_entries, len(entries) - min_entries + 1)
        ):
            candidate = (float(overlaps[index]), float(areas[index]))
            if best_key is None or candidate < best_key:
                best_key = candidate
                best_order = order
                best_size = first_size
    assert best_order is not None
    ordered = [entries[index] for index in best_order]
    return SplitResult(first=ordered[:best_size], second=ordered[best_size:])
