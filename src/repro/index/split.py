"""R*-tree node split heuristics.

The Bayes tree "extends the R*-tree" (paper §2.2), so overflowing nodes are
split with the R* topological split (Beckmann et al., SIGMOD 1990):

1. *Choose split axis*: for every dimension, sort the entries by their lower
   and by their upper MBR boundary and consider all legal distributions into
   two groups; the axis with the minimum total margin is chosen.
2. *Choose split index*: along the chosen axis, the distribution with the
   minimum overlap between the two group MBRs is chosen (ties broken by the
   minimum combined area).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .entry import DirectoryEntry, LeafEntry
from .mbr import MBR
from .node import AnyEntry

__all__ = ["SplitResult", "rstar_split"]


@dataclass
class SplitResult:
    """The two entry groups produced by a node split."""

    first: List[AnyEntry]
    second: List[AnyEntry]


def _group_mbr(entries: Sequence[AnyEntry]) -> MBR:
    return MBR.union_of(entry.mbr for entry in entries)


def _distributions(
    sorted_entries: List[AnyEntry], min_entries: int
) -> List[Tuple[List[AnyEntry], List[AnyEntry]]]:
    """All legal (first, second) group splits of an ordered entry list."""
    total = len(sorted_entries)
    splits = []
    for first_size in range(min_entries, total - min_entries + 1):
        splits.append((sorted_entries[:first_size], sorted_entries[first_size:]))
    return splits


def rstar_split(entries: Sequence[AnyEntry], min_entries: int) -> SplitResult:
    """Split an overflowing entry list into two groups using the R* heuristic.

    Parameters
    ----------
    entries:
        The ``M + 1`` entries of the overflowing node.
    min_entries:
        Minimum number of entries each resulting group must contain.
    """
    entries = list(entries)
    if len(entries) < 2 * min_entries:
        raise ValueError(
            f"cannot split {len(entries)} entries with a minimum group size of {min_entries}"
        )
    dimension = entries[0].mbr.dimension

    # 1. choose the split axis by minimum total margin.
    best_axis = 0
    best_margin = np.inf
    for axis in range(dimension):
        margin = 0.0
        for key in (lambda e: e.mbr.lower[axis], lambda e: e.mbr.upper[axis]):
            ordered = sorted(entries, key=key)
            for first, second in _distributions(ordered, min_entries):
                margin += _group_mbr(first).margin() + _group_mbr(second).margin()
        if margin < best_margin:
            best_margin = margin
            best_axis = axis

    # 2. choose the distribution on that axis by minimum overlap, then area.
    best: Tuple[float, float, SplitResult] | None = None
    for key in (lambda e: e.mbr.lower[best_axis], lambda e: e.mbr.upper[best_axis]):
        ordered = sorted(entries, key=key)
        for first, second in _distributions(ordered, min_entries):
            mbr_first = _group_mbr(first)
            mbr_second = _group_mbr(second)
            overlap = mbr_first.intersection_area(mbr_second)
            area = mbr_first.area() + mbr_second.area()
            candidate = (overlap, area, SplitResult(first=list(first), second=list(second)))
            if best is None or candidate[:2] < best[:2]:
                best = candidate
    assert best is not None
    return best[2]
