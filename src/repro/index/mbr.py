"""Minimum bounding rectangles (MBRs).

Every Bayes tree node entry stores "the minimum bounding rectangle enclosing
the objects stored in the subtree" (paper Def. 1), exactly as in R-trees
(Guttman, SIGMOD 1984) and the R*-tree.  The geometric quantities defined here
(area, margin, enlargement, overlap, point distance) are the ones the R*
insertion and split heuristics need, and the geometric descent priority of the
Bayes tree ("distance from the query object to the MBR", paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["MBR"]


@dataclass
class MBR:
    """Axis-aligned minimum bounding rectangle in d dimensions."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=float)
        upper = np.asarray(self.upper, dtype=float)
        if lower.ndim != 1 or lower.shape != upper.shape:
            raise ValueError("lower and upper must be 1-d vectors of equal length")
        if (lower > upper).any():
            raise ValueError("lower bound must not exceed upper bound in any dimension")
        self.lower = lower
        self.upper = upper

    # -- constructors ---------------------------------------------------------------
    @staticmethod
    def _trusted(lower: np.ndarray, upper: np.ndarray) -> "MBR":
        """Construct without validation from float arrays known to be a valid box.

        The R*-tree insertion and split machinery builds thousands of boxes per
        insert from unions/intersections whose invariants hold by construction;
        this bypasses the dataclass validation on that hot path.  Callers own
        the arrays (they must not alias mutable state).
        """
        mbr = object.__new__(MBR)
        mbr.lower = lower
        mbr.upper = upper
        return mbr

    @staticmethod
    def from_point(point: Sequence[float] | np.ndarray) -> "MBR":
        """Degenerate MBR covering a single point."""
        point = np.asarray(point, dtype=float)
        return MBR._trusted(point.copy(), point.copy())

    @staticmethod
    def from_points(points: np.ndarray) -> "MBR":
        """Smallest MBR covering all rows of ``points``."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        return MBR._trusted(points.min(axis=0), points.max(axis=0))

    @staticmethod
    def union_of(rectangles: Iterable["MBR"]) -> "MBR":
        """Smallest MBR covering all given rectangles."""
        rectangles = list(rectangles)
        if not rectangles:
            raise ValueError("cannot take the union of zero rectangles")
        lower = np.min([r.lower for r in rectangles], axis=0)
        upper = np.max([r.upper for r in rectangles], axis=0)
        return MBR._trusted(lower, upper)

    # -- basic geometry ---------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.lower.shape[0]

    @property
    def center(self) -> np.ndarray:
        return (self.lower + self.upper) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths."""
        return self.upper - self.lower

    def area(self) -> float:
        """Volume of the rectangle (product of side lengths)."""
        return float((self.upper - self.lower).prod())

    def margin(self) -> float:
        """Sum of side lengths (the R* 'margin' criterion)."""
        return float((self.upper - self.lower).sum())

    def copy(self) -> "MBR":
        return MBR._trusted(self.lower.copy(), self.upper.copy())

    # -- relations -------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR covering both rectangles."""
        return MBR._trusted(
            np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper)
        )

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to include ``other`` (R-tree insertion criterion)."""
        return self.union(other).area() - self.area()

    def intersection_area(self, other: "MBR") -> float:
        """Area of the overlap region with ``other`` (zero if disjoint)."""
        sides = np.minimum(self.upper, other.upper) - np.maximum(self.lower, other.lower)
        if (sides <= 0).any():
            return 0.0
        return float(sides.prod())

    def contains_point(self, point: Sequence[float] | np.ndarray) -> bool:
        point = np.asarray(point, dtype=float)
        return bool(np.all(point >= self.lower) and np.all(point <= self.upper))

    def contains(self, other: "MBR") -> bool:
        return bool(np.all(other.lower >= self.lower) and np.all(other.upper <= self.upper))

    def include_point(self, point: Sequence[float] | np.ndarray) -> "MBR":
        """Smallest MBR covering this rectangle and ``point``."""
        point = np.asarray(point, dtype=float)
        return MBR._trusted(np.minimum(self.lower, point), np.maximum(self.upper, point))

    # -- distances -------------------------------------------------------------------
    def min_distance(self, point: Sequence[float] | np.ndarray) -> float:
        """Euclidean MINDIST from ``point`` to the rectangle (0 if inside).

        This is the geometric priority measure the paper evaluates for the
        global-best descent strategy.
        """
        point = np.asarray(point, dtype=float)
        below = np.maximum(self.lower - point, 0.0)
        above = np.maximum(point - self.upper, 0.0)
        gaps = np.maximum(below, above)
        return float(np.sqrt((gaps * gaps).sum()))

    def center_distance(self, point: Sequence[float] | np.ndarray) -> float:
        """Euclidean distance from ``point`` to the rectangle center."""
        point = np.asarray(point, dtype=float)
        return float(np.linalg.norm(self.center - point))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(np.array_equal(self.lower, other.lower) and np.array_equal(self.upper, other.upper))
