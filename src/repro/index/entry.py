"""Node entries of the Bayes tree / R*-tree substrate.

Paper Definition 1: an entry stores the MBR of the objects in its subtree, a
pointer to the subtree and the cluster feature (n, LS, SS) of those objects.
Leaf nodes store the observations themselves (d-dimensional kernels), which we
model as :class:`LeafEntry` carrying the raw point, its class label and the
kernel bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..stats.gaussian import Gaussian
from .cluster_feature import ClusterFeature
from .decay import decay_factor
from .mbr import MBR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .decay import DecayClock
    from .node import Node

__all__ = ["LeafEntry", "DirectoryEntry"]


@dataclass(eq=False)
class LeafEntry:
    """A stored observation: a d-dimensional kernel estimator at leaf level.

    Attributes
    ----------
    point:
        The observation vector (also the kernel center).
    label:
        Optional class label; kept so a single tree can hold several classes
        (the structural modification discussed in paper §4.1).
    bandwidth:
        Kernel bandwidth vector ``h``.  May be ``None`` while the tree is
        being built and filled in once the training set bandwidth is known.
    kernel:
        Name of the kernel family (``"gaussian"`` or ``"epanechnikov"``).
    timestamp:
        Logical insertion time of the observation (0.0 when the owning tree
        keeps no clock).  Immutable: the decayed weight is always re-derived
        from it, so repeated aging never accumulates round-off.
    weight:
        Decayed view of the observation's unit weight,
        ``2 ** (-decay_rate * (now - timestamp))``, refreshed by
        :meth:`decay_to`.  Stays exactly 1.0 in undecayed trees.
    """

    point: np.ndarray
    label: Optional[object] = None
    bandwidth: Optional[np.ndarray] = None
    kernel: str = "gaussian"
    timestamp: float = 0.0
    weight: float = 1.0

    #: Duck-typed entry kind shared with the flat-forest entry proxies
    #: (:mod:`repro.core.flat`): the query path branches on this attribute
    #: instead of ``isinstance`` so compiled entries participate unchanged.
    is_directory = False

    def __post_init__(self) -> None:
        self.point = np.asarray(self.point, dtype=float)
        if self.point.ndim != 1:
            raise ValueError("point must be a 1-d vector")
        if self.bandwidth is not None:
            self.bandwidth = np.asarray(self.bandwidth, dtype=float)
            if self.bandwidth.shape != self.point.shape:
                raise ValueError("bandwidth must have the same shape as point")
        self._mbr: Optional[MBR] = None

    @property
    def dimension(self) -> int:
        return self.point.shape[0]

    @property
    def n_objects(self) -> float:
        """Decayed weight of this observation (exactly one without decay)."""
        return self.weight

    def decay_to(self, now: float, rate: float) -> None:
        """Refresh the decayed weight view for logical time ``now``.

        Computed directly from the immutable insertion timestamp (not by
        incremental scaling), so the result is exact, idempotent, and agrees
        bit-for-bit with the vectorised timestamp-based weighting of the
        packed leaf arrays.
        """
        self.weight = decay_factor(rate, now - self.timestamp)

    @property
    def mbr(self) -> MBR:
        """Degenerate MBR covering just the stored point (cached; the point is
        immutable once the entry is part of a tree)."""
        mbr = self._mbr
        if mbr is None:
            mbr = MBR.from_point(self.point)
            self._mbr = mbr
        return mbr

    @property
    def cluster_feature(self) -> ClusterFeature:
        return ClusterFeature.from_point(self.point, weight=self.weight)

    def is_tree_managed(self, kernel: str) -> bool:
        """True when this kernel fully follows its tree's shared parameters.

        Tree-managed entries carry no private bandwidth copy and use the
        tree's configured kernel family; they can be evaluated through the
        broadcast fast paths (packed leaf arrays) and serialized as bare
        ``(point, timestamp)`` rows.  Entries stamped with explicit per-entry
        parameters force the exact per-entry paths instead.
        """
        return self.bandwidth is None and self.kernel == kernel

    def resolve_bandwidth(self, fallback: Optional[np.ndarray] = None) -> np.ndarray:
        """This entry's bandwidth, or the tree-shared ``fallback``.

        A per-entry ``bandwidth`` (set explicitly at construction) wins;
        tree-managed entries leave it ``None`` and resolve the shared,
        epoch-tagged bandwidth of their Bayes tree at evaluation time instead
        of carrying a stamped copy.
        """
        if self.bandwidth is not None:
            return self.bandwidth
        if fallback is not None:
            return fallback
        raise ValueError("leaf entry has no bandwidth assigned yet")

    def to_gaussian(self, weight: float = 1.0, bandwidth: Optional[np.ndarray] = None) -> Gaussian:
        """Kernel estimator viewed as a Gaussian component.

        For a Gaussian kernel this is exact (variance ``h**2``); for an
        Epanechnikov kernel the Gaussian is moment matched (variance
        ``h**2 / 5``), which is only used when the entry is aggregated — the
        density evaluation path uses :meth:`density` instead.
        """
        h = self.resolve_bandwidth(bandwidth)
        if self.kernel == "epanechnikov":
            variance = h ** 2 / 5.0
        else:
            variance = h ** 2
        return Gaussian(mean=self.point, variance=variance, weight=weight)

    def density(
        self, x: Sequence[float] | np.ndarray, bandwidth: Optional[np.ndarray] = None
    ) -> float:
        """Kernel density contribution of this observation at ``x``.

        ``bandwidth`` supplies the tree-shared kernel bandwidth for entries
        that do not carry their own copy.
        """
        from ..stats.kernel import make_kernel

        return make_kernel(self.kernel, self.point, self.resolve_bandwidth(bandwidth)).pdf(x)


@dataclass(eq=False)
class DirectoryEntry:
    """An inner-node entry: MBR + subtree pointer + cluster feature (Def. 1).

    ``last_update`` is the logical time the cluster feature is valued at;
    decayed trees age it lazily with :meth:`decay_to` before reads and
    updates (paper §4.2).  Undecayed trees never touch it.
    """

    mbr: MBR
    cluster_feature: ClusterFeature
    child: "Node"
    last_update: float = 0.0

    #: See :attr:`LeafEntry.is_directory` — duck-typed entry kind used by the
    #: frontier/descent machinery (shared with the flat-forest proxies).
    is_directory = True

    @property
    def dimension(self) -> int:
        return self.mbr.dimension

    @property
    def n_objects(self) -> float:
        """(Decayed) total weight of the leaf observations in the subtree."""
        return self.cluster_feature.n

    def decay_to(self, now: float, rate: float) -> None:
        """Age the subtree summary to logical time ``now``.

        Scales all of ``(n, LS, SS)`` by ``2 ** (-rate * elapsed)`` in place —
        the decayed cluster-feature view of Definition 1.  Mean and variance
        are invariant under the common factor, so aged directory Gaussians
        keep their shape and only lose mixture weight.
        """
        if now < self.last_update:
            raise ValueError("time must not run backwards")
        self.cluster_feature.scale_in_place(decay_factor(rate, now - self.last_update))
        self.last_update = now

    def to_gaussian(
        self, weight: float | None = None, variance_inflation: Optional[np.ndarray] = None
    ) -> Gaussian:
        """Gaussian summarising the entry's subtree.

        The mean and variance come from the cluster feature (``LS/n`` and
        ``SS/n - (LS/n)^2``, paper Def. 1).  ``variance_inflation`` — normally
        the squared kernel bandwidth of the tree — is added to the variance so
        the entry is the exact moment match of the mixture of kernels stored
        in its subtree; without it, entries over very few objects degenerate
        to near-delta spikes.
        """
        gaussian = self.cluster_feature.to_gaussian(weight=weight)
        if variance_inflation is None:
            return gaussian
        return Gaussian(
            mean=gaussian.mean,
            variance=gaussian.variance + np.asarray(variance_inflation, dtype=float),
            weight=gaussian.weight,
        )

    def density(
        self, x: Sequence[float] | np.ndarray, variance_inflation: Optional[np.ndarray] = None
    ) -> float:
        """Unweighted Gaussian density of the subtree summary at ``x``."""
        return self.to_gaussian(weight=1.0, variance_inflation=variance_inflation).pdf(x)

    def refresh(self, clock: Optional["DecayClock"] = None) -> None:
        """Recompute MBR and CF bottom-up from the child node.

        Used after splits and by the bulk loaders, which build subtrees first
        and derive the parent entries afterwards.  With a ``clock``, the
        recomputed feature is the decayed view at ``clock.now`` (children are
        aged to the common time first).
        """
        self.mbr = self.child.compute_mbr()
        self.cluster_feature = self.child.compute_cluster_feature(clock=clock)
        if clock is not None:
            self.last_update = clock.now

    @staticmethod
    def for_node(node: "Node", clock: Optional["DecayClock"] = None) -> "DirectoryEntry":
        """Create an entry summarising ``node`` (decayed to ``clock.now`` if given)."""
        return DirectoryEntry(
            mbr=node.compute_mbr(),
            cluster_feature=node.compute_cluster_feature(clock=clock),
            child=node,
            last_update=0.0 if clock is None else clock.now,
        )
