"""Index substrate: MBRs, cluster features, entries, nodes and the R*-tree."""

from .cluster_feature import ClusterFeature
from .decay import DecayClock, DecayedClusterFeature, decay_factor
from .entry import DirectoryEntry, LeafEntry
from .mbr import MBR
from .node import AnyEntry, Node
from .rstar import RStarTree, TreeParameters
from .split import SplitResult, rstar_split

__all__ = [
    "ClusterFeature",
    "DecayClock",
    "DecayedClusterFeature",
    "decay_factor",
    "DirectoryEntry",
    "LeafEntry",
    "MBR",
    "AnyEntry",
    "Node",
    "RStarTree",
    "TreeParameters",
    "SplitResult",
    "rstar_split",
]
