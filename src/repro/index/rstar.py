"""R*-tree with cluster features — the index substrate of the Bayes tree.

This is the balanced multidimensional index of paper Definition 2: inner nodes
hold between ``m`` and ``M`` directory entries, leaf nodes between ``l`` and
``L`` observations, every entry carries the MBR, subtree pointer and cluster
feature of Definition 1, and all leaves are on the same level.

Insertion follows the R*-tree (Beckmann et al., 1990):

* *ChooseSubtree* descends into the child whose MBR needs the least overlap
  enlargement (at the level above the leaves) or the least area enlargement
  (higher up), with ties broken by area.
* Overflows are first handled by *forced reinsertion* of the entries farthest
  from the node's center (once per level per insertion), then by the R*
  topological split.
* Cluster features and MBRs are maintained along the full insertion path, so
  every directory entry always summarises its subtree exactly — that property
  is what makes the frontier mixture models of the Bayes tree consistent.

The class is deliberately agnostic of classification; the Bayes tree in
``repro.core`` wraps it with kernels, descent strategies and the anytime
classifier logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .cluster_feature import ClusterFeature
from .decay import DecayClock
from .entry import DirectoryEntry, LeafEntry
from .mbr import MBR
from .node import AnyEntry, Node
from .split import rstar_split

__all__ = ["RStarTree", "TreeParameters"]


@dataclass(frozen=True)
class TreeParameters:
    """Fanout and capacity parameters (m, M, l, L) of paper Definition 2."""

    max_fanout: int = 8
    min_fanout: int = 3
    leaf_capacity: int = 8
    leaf_min: int = 3
    reinsert_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")
        if not (1 <= self.min_fanout <= self.max_fanout // 2):
            raise ValueError("min_fanout must satisfy 1 <= m <= M/2")
        if self.leaf_capacity < 2:
            raise ValueError("leaf_capacity must be at least 2")
        if not (1 <= self.leaf_min <= self.leaf_capacity // 2):
            raise ValueError("leaf_min must satisfy 1 <= l <= L/2")
        if not (0.0 <= self.reinsert_fraction < 1.0):
            raise ValueError("reinsert_fraction must be in [0, 1)")

    def capacity(self, node: Node) -> Tuple[int, int]:
        """(min, max) number of entries allowed in ``node``."""
        if node.is_leaf:
            return self.leaf_min, self.leaf_capacity
        return self.min_fanout, self.max_fanout


class RStarTree:
    """Balanced R*-tree over weighted points with cluster-feature maintenance."""

    def __init__(
        self,
        dimension: int,
        params: TreeParameters | None = None,
        clock: Optional[DecayClock] = None,
    ) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.params = params or TreeParameters()
        #: Shared logical clock driving exponential decay (paper §4.2); None
        #: (or a zero rate) keeps the classic never-forgetting tree.  The
        #: owning Bayes tree shares this object so insertions and queries
        #: agree on the current logical time.
        self.clock = clock
        self.root: Node = Node(level=0)
        self._size = 0
        #: Monotonically increasing structure tag, bumped by every insertion;
        #: callers (e.g. the Bayes tree's packed-parameter caches) use it to
        #: detect that entries or summaries may have changed.
        self.version = 0

    @property
    def _decaying(self) -> bool:
        """True when a clock with a positive decay rate is attached."""
        return self.clock is not None and self.clock.enabled

    # -- basic properties -------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (a tree holding only the empty root has height 1)."""
        return self.root.level + 1

    def is_empty(self) -> bool:
        return self._size == 0

    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        return self.root.iter_leaf_entries()

    def iter_nodes(self) -> Iterator[Node]:
        return self.root.iter_nodes()

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    # -- insertion ----------------------------------------------------------------------
    def insert(
        self,
        point: Sequence[float] | np.ndarray,
        label: Optional[object] = None,
        bandwidth: Optional[np.ndarray] = None,
        kernel: str = "gaussian",
    ) -> LeafEntry:
        """Insert an observation and return its leaf entry.

        The entry is stamped with the clock's current logical time, so its
        weight decays as the clock advances (no-op without a clock).
        """
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise ValueError(f"point must have shape ({self.dimension},), got {point.shape}")
        entry = LeafEntry(
            point=point,
            label=label,
            bandwidth=bandwidth,
            kernel=kernel,
            timestamp=0.0 if self.clock is None else self.clock.now,
        )
        self._insert_entry(entry, target_level=0, reinserted_levels=set())
        self._size += 1
        self.version += 1
        return entry

    def extend(self, points: np.ndarray, labels: Optional[Sequence[object]] = None) -> None:
        """Insert several observations one by one (the paper's iterative insertion)."""
        points = np.asarray(points, dtype=float)
        for i, point in enumerate(points):
            self.insert(point, label=None if labels is None else labels[i])

    # The insertion machinery -------------------------------------------------------------
    def _insert_entry(self, entry: AnyEntry, target_level: int, reinserted_levels: set) -> None:
        if self._decaying:
            # Freshly inserted points have factor 1; forced-reinserted or
            # expiry-surviving entries are aged so their summaries carry the
            # same logical timestamp as the path CFs they are merged into.
            entry.decay_to(self.clock.now, self.clock.decay_rate)
        path = self._choose_path(entry, target_level)
        node = path[-1][0]
        node.entries.append(entry)
        node._bounds_cache = None
        self._adjust_path(path, entry)
        self._handle_overflow(path, reinserted_levels)

    def _choose_path(self, entry: AnyEntry, target_level: int) -> List[Tuple[Node, Optional[DirectoryEntry]]]:
        """Descend from the root to the node at ``target_level`` best suited for ``entry``.

        Returns the list of (node, parent_entry) pairs from the root to the
        chosen node; the root's parent entry is ``None``.
        """
        path: List[Tuple[Node, Optional[DirectoryEntry]]] = [(self.root, None)]
        node = self.root
        while node.level > target_level:
            parent_entry = self._choose_subtree(node, entry)
            node = parent_entry.child
            path.append((node, parent_entry))
        return path

    def _choose_subtree(self, node: Node, entry: AnyEntry) -> DirectoryEntry:
        """R* ChooseSubtree among the directory entries of ``node``.

        The geometric criteria of all candidates are evaluated with stacked
        boundary arrays in a handful of vectorised operations; only the final
        lexicographic argmin (first minimum wins, matching ``min``) iterates
        in Python over the at most ``max_fanout + 1`` candidates.
        """
        candidates: List[DirectoryEntry] = node.entries  # type: ignore[assignment]
        entry_mbr = entry.mbr
        bounds = node._bounds_cache
        if bounds is None:
            bounds = (
                np.stack([candidate.mbr.lower for candidate in candidates]),
                np.stack([candidate.mbr.upper for candidate in candidates]),
            )
            node._bounds_cache = bounds
        lowers, uppers = bounds
        areas = (uppers - lowers).prod(axis=1)
        enlarged_lo = np.minimum(lowers, entry_mbr.lower)
        enlarged_up = np.maximum(uppers, entry_mbr.upper)
        enlargements = (enlarged_up - enlarged_lo).prod(axis=1) - areas

        if node.level == 1:
            # children are leaves: minimise overlap enlargement.  The overlap
            # of candidate j's rectangle with every other candidate is one
            # (m, m, d) broadcast, before and after including the new entry.
            def pairwise_overlap(los: np.ndarray, ups: np.ndarray) -> np.ndarray:
                sides = np.minimum(ups[:, None, :], uppers[None, :, :]) - np.maximum(
                    los[:, None, :], lowers[None, :, :]
                )
                return np.where((sides <= 0).any(axis=2), 0.0, sides.prod(axis=2))

            before = pairwise_overlap(lowers, uppers)
            after = pairwise_overlap(enlarged_lo, enlarged_up)
            np.fill_diagonal(before, 0.0)
            np.fill_diagonal(after, 0.0)
            overlap_deltas = after.sum(axis=1) - before.sum(axis=1)
            keys = list(zip(overlap_deltas, enlargements, areas))
        else:
            keys = [
                (enlargements[i], areas[i], candidate.n_objects)
                for i, candidate in enumerate(candidates)
            ]
        return candidates[min(range(len(candidates)), key=keys.__getitem__)]

    def _adjust_path(self, path: List[Tuple[Node, Optional[DirectoryEntry]]], entry: AnyEntry) -> None:
        """Extend MBRs and cluster features of all ancestors of the inserted entry."""
        entry_cf = entry.cluster_feature
        entry_mbr = entry.mbr
        decaying = self._decaying
        for depth, (_node, parent_entry) in enumerate(path):
            if parent_entry is None:
                continue
            parent_entry.mbr = parent_entry.mbr.union(entry_mbr)
            if decaying:
                # Age the ancestor summary to "now" before merging, so both
                # summands are valued at the same logical time (the lazy
                # decay update of the §4.2 extension).
                parent_entry.decay_to(self.clock.now, self.clock.decay_rate)
            parent_entry.cluster_feature.add_feature(entry_cf)
            # Keep the holder node's cached ChooseSubtree bounds exact: the
            # union above only widens this one entry's box.
            holder = path[depth - 1][0]
            cache = holder._bounds_cache
            if cache is not None:
                index = holder.entries.index(parent_entry)
                np.minimum(cache[0][index], entry_mbr.lower, out=cache[0][index])
                np.maximum(cache[1][index], entry_mbr.upper, out=cache[1][index])

    def _handle_overflow(
        self, path: List[Tuple[Node, Optional[DirectoryEntry]]], reinserted_levels: set
    ) -> None:
        """Resolve overflowing nodes bottom-up along the insertion path."""
        for depth in range(len(path) - 1, -1, -1):
            node, parent_entry = path[depth]
            _, max_entries = self.params.capacity(node)
            if len(node.entries) <= max_entries:
                continue
            can_reinsert = (
                node is not self.root
                and node.level not in reinserted_levels
                and self.params.reinsert_fraction > 0.0
            )
            if can_reinsert:
                reinserted_levels.add(node.level)
                self._reinsert(node, path[: depth + 1], reinserted_levels)
            else:
                self._split_node(path, depth)
                # splitting may push the parent over capacity; continue upwards.

    def _reinsert(
        self,
        node: Node,
        path_prefix: List[Tuple[Node, Optional[DirectoryEntry]]],
        reinserted_levels: set,
    ) -> None:
        """R* forced reinsert: remove the farthest entries and insert them again."""
        center = node.compute_mbr().center
        count = max(1, int(round(self.params.reinsert_fraction * len(node.entries))))
        centers = np.stack([e.mbr.lower + e.mbr.upper for e in node.entries]) * 0.5
        deltas = centers - center
        # Stable descending order by center distance (ties keep entry order),
        # matching sorted(..., reverse=True) on the distances.
        order = np.argsort(-(deltas * deltas).sum(axis=1), kind="stable")
        to_reinsert = [node.entries[index] for index in order[:count]]
        removed_ids = {id(e) for e in to_reinsert}
        node.entries = [e for e in node.entries if id(e) not in removed_ids]
        # The removal shrinks the summaries of all ancestors along the path;
        # refresh them bottom-up (each refresh is O(fanout)) and drop the
        # cached ChooseSubtree bounds of every touched node.
        for prefix_node, _ in path_prefix:
            prefix_node._bounds_cache = None
        for _, parent_entry in reversed(path_prefix):
            if parent_entry is not None:
                parent_entry.refresh(clock=self.clock)
        for entry in to_reinsert:
            self._insert_entry(entry, target_level=node.level, reinserted_levels=reinserted_levels)

    def _split_node(self, path: List[Tuple[Node, Optional[DirectoryEntry]]], depth: int) -> None:
        """Split the overflowing node at ``path[depth]`` and update its parent."""
        node, parent_entry = path[depth]
        min_entries, _ = self.params.capacity(node)
        result = rstar_split(node.entries, min_entries)
        node.entries = result.first
        node._bounds_cache = None
        sibling = Node(level=node.level, entries=result.second)

        if parent_entry is None:
            # Node is the root: grow the tree by one level.
            new_root = Node(level=node.level + 1)
            new_root.entries = [
                DirectoryEntry.for_node(node, clock=self.clock),
                DirectoryEntry.for_node(sibling, clock=self.clock),
            ]
            self.root = new_root
            return

        parent_entry.refresh(clock=self.clock)
        parent_node = path[depth - 1][0]
        parent_node.entries.append(DirectoryEntry.for_node(sibling, clock=self.clock))
        parent_node._bounds_cache = None
        # Ancestors of the parent keep their (now conservative) MBRs; the CFs
        # are still exact because the observations below them did not change.

    # -- decay maintenance -------------------------------------------------------------------
    def decay_entries_to(self, now: float) -> None:
        """Age every stored summary to logical time ``now`` (one pre-order walk).

        After the sweep all directory cluster features and leaf weights are
        valued at the same timestamp, so mixture weights read off
        ``entry.n_objects`` are exact decayed weights.  A no-op without an
        enabled clock; the Bayes tree calls this lazily (once per logical
        time / structure change) before packing query parameters.
        """
        if not self._decaying:
            return
        rate = self.clock.decay_rate
        for node in self.iter_nodes():
            for entry in node.entries:
                entry.decay_to(now, rate)

    def rebuilt_with(self, entries: Sequence[LeafEntry]) -> "RStarTree":
        """Fresh tree over the given (already stamped) leaf entries.

        Used by the expiry sweep: survivors keep their insertion timestamps
        and labels and are re-inserted through the regular R* machinery, so
        every structural invariant holds by construction.  The version tag
        continues from this tree's, keeping downstream caches sound.
        """
        tree = RStarTree(self.dimension, params=self.params, clock=self.clock)
        for entry in entries:
            tree._insert_entry(entry, target_level=0, reinserted_levels=set())
            tree._size += 1
        tree.version = self.version + 1
        return tree

    # -- structural serialization (snapshot support) -----------------------------------------
    def export_structure(self) -> Tuple[Dict[str, np.ndarray], List[LeafEntry]]:
        """Flatten the exact node/entry topology into plain numpy arrays.

        Returns ``(arrays, leaf_entries)``: the arrays describe every node
        (pre-order ids) and every directory entry *verbatim* — MBR bounds,
        the current (possibly decayed) cluster feature and its valuation
        timestamp — and ``leaf_entries`` lists the stored observations in the
        same pre-order traversal.  Together with :meth:`from_structure` this
        round-trips a tree without replaying a single insertion, so the
        restored topology, entry order and summary values are bit-identical
        to the saved ones (``repro.persist`` builds its snapshot container on
        top of this).
        """
        nodes = list(self.iter_nodes())
        node_ids = {id(node): index for index, node in enumerate(nodes)}
        dimension = self.dimension
        leaf_entries: List[LeafEntry] = []
        dir_child: List[int] = []
        dir_lower: List[np.ndarray] = []
        dir_upper: List[np.ndarray] = []
        dir_cf_n: List[float] = []
        dir_cf_ls: List[np.ndarray] = []
        dir_cf_ss: List[np.ndarray] = []
        dir_last_update: List[float] = []
        for node in nodes:
            for entry in node.entries:
                if node.is_leaf:
                    leaf_entries.append(entry)  # type: ignore[arg-type]
                else:
                    dir_child.append(node_ids[id(entry.child)])  # type: ignore[union-attr]
                    dir_lower.append(entry.mbr.lower)  # type: ignore[union-attr]
                    dir_upper.append(entry.mbr.upper)  # type: ignore[union-attr]
                    feature = entry.cluster_feature
                    dir_cf_n.append(feature.n)
                    dir_cf_ls.append(feature.linear_sum)
                    dir_cf_ss.append(feature.squared_sum)
                    dir_last_update.append(entry.last_update)  # type: ignore[union-attr]

        def stack(rows: List[np.ndarray]) -> np.ndarray:
            if not rows:
                return np.empty((0, dimension))
            return np.stack(rows).astype(float)

        arrays = {
            "node_levels": np.array([node.level for node in nodes], dtype=np.int64),
            "node_counts": np.array([len(node.entries) for node in nodes], dtype=np.int64),
            "dir_child": np.array(dir_child, dtype=np.int64),
            "dir_mbr_lower": stack(dir_lower),
            "dir_mbr_upper": stack(dir_upper),
            "dir_cf_n": np.array(dir_cf_n, dtype=float),
            "dir_cf_ls": stack(dir_cf_ls),
            "dir_cf_ss": stack(dir_cf_ss),
            "dir_last_update": np.array(dir_last_update, dtype=float),
        }
        return arrays, leaf_entries

    @classmethod
    def from_structure(
        cls,
        arrays: Dict[str, np.ndarray],
        leaf_entries: Sequence[LeafEntry],
        dimension: int,
        params: TreeParameters | None = None,
        clock: Optional[DecayClock] = None,
        version: int = 1,
    ) -> "RStarTree":
        """Rebuild a tree from :meth:`export_structure` output.

        ``leaf_entries`` must be the observations in the exported pre-order;
        the caller owns their construction (the persist layer re-creates them
        from the packed per-observation arrays).  Entry order within every
        node is preserved exactly, which keeps all order-sensitive float
        reductions downstream (packed parameter arrays, log-sum-exp) on the
        same summation order as the saved tree.
        """
        node_levels = np.asarray(arrays["node_levels"], dtype=np.int64)
        node_counts = np.asarray(arrays["node_counts"], dtype=np.int64)
        if node_levels.shape != node_counts.shape or node_levels.size == 0:
            raise ValueError("malformed structure arrays: node tables disagree")
        nodes = [Node(level=int(level)) for level in node_levels]
        dir_child = np.asarray(arrays["dir_child"], dtype=np.int64)
        dir_cursor = 0
        leaf_cursor = 0
        for position, node in enumerate(nodes):
            count = int(node_counts[position])
            if node.is_leaf:
                node.entries = list(leaf_entries[leaf_cursor : leaf_cursor + count])
                if len(node.entries) != count:
                    raise ValueError("malformed structure arrays: missing leaf entries")
                leaf_cursor += count
                continue
            for offset in range(dir_cursor, dir_cursor + count):
                child_index = int(dir_child[offset])
                if not (0 <= child_index < len(nodes)):
                    raise ValueError("malformed structure arrays: child index out of range")
                node.entries.append(
                    DirectoryEntry(
                        mbr=MBR(
                            lower=np.array(arrays["dir_mbr_lower"][offset], dtype=float),
                            upper=np.array(arrays["dir_mbr_upper"][offset], dtype=float),
                        ),
                        cluster_feature=ClusterFeature(
                            n=float(arrays["dir_cf_n"][offset]),
                            linear_sum=np.array(arrays["dir_cf_ls"][offset], dtype=float),
                            squared_sum=np.array(arrays["dir_cf_ss"][offset], dtype=float),
                        ),
                        child=nodes[child_index],
                        last_update=float(arrays["dir_last_update"][offset]),
                    )
                )
            dir_cursor += count
        if leaf_cursor != len(leaf_entries) or dir_cursor != dir_child.shape[0]:
            raise ValueError("malformed structure arrays: entry streams not fully consumed")
        tree = cls(dimension=dimension, params=params, clock=clock)
        tree.root = nodes[0]
        tree._size = len(leaf_entries)
        tree.version = version
        return tree

    # -- validation -------------------------------------------------------------------------
    def validate(self, enforce_fanout: bool = True, require_balance: bool = True) -> None:
        """Check all structural invariants; raises ``AssertionError`` on violation."""
        if self.is_empty():
            return
        self.root.check_invariants(
            min_fanout=self.params.min_fanout,
            max_fanout=self.params.max_fanout,
            leaf_min=self.params.leaf_min,
            leaf_max=self.params.leaf_capacity,
            is_root=True,
            enforce_fanout=enforce_fanout,
            require_balance=require_balance,
            clock=self.clock,
        )
        leaf_count = sum(1 for _ in self.iter_leaf_entries())
        if leaf_count != self._size:
            raise AssertionError(f"tree stores {leaf_count} observations, expected {self._size}")
        leaf_levels = {node.level for node in self.iter_nodes() if node.is_leaf}
        if leaf_levels and leaf_levels != {0}:
            raise AssertionError("all leaves must be at level 0")

    # -- construction from prebuilt structure (bulk loading) --------------------------------
    @classmethod
    def from_root(cls, root: Node, dimension: int, params: TreeParameters | None = None) -> "RStarTree":
        """Wrap an externally built node hierarchy (used by the bulk loaders).

        The stored size is the exact number of leaf entries.  It is *not*
        derived from ``root.n_objects``: cluster features may carry non-unit
        weights (e.g. decayed or otherwise weighted summaries), in which case
        the rounded weight total disagrees with the number of stored
        observations.
        """
        tree = cls(dimension=dimension, params=params)
        tree.root = root
        tree._size = sum(1 for _ in root.iter_leaf_entries())
        return tree
