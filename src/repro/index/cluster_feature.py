"""Cluster features (CF = (n, LS, SS)).

Paper Definition 1 stores for every node entry "the cluster feature
CF = (n_s, LS, SS) of the objects in T_s containing the number n_s of objects,
their linear sum LS and their squared sum SS".  From a CF the entry's Gaussian
is recovered as ``mu = LS / n`` and ``sigma^2 = SS / n - (LS / n)^2``.

Cluster features are additive (the CF of a union is the sum of the CFs), which
is what makes bottom-up directory construction and incremental insertion
cheap, and — as the future-work section points out — what enables the
anytime-clustering extension (temporal decay just scales the three summaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..stats.gaussian import Gaussian

__all__ = ["ClusterFeature"]


@dataclass(eq=False)
class ClusterFeature:
    """Additive sufficient statistics (n, LS, SS) of a set of vectors."""

    n: float
    linear_sum: np.ndarray
    squared_sum: np.ndarray

    def __post_init__(self) -> None:
        linear_sum = np.asarray(self.linear_sum, dtype=float)
        squared_sum = np.asarray(self.squared_sum, dtype=float)
        if linear_sum.ndim != 1 or linear_sum.shape != squared_sum.shape:
            raise ValueError("linear_sum and squared_sum must be 1-d vectors of equal length")
        if self.n < 0:
            raise ValueError("n must be non-negative")
        self.linear_sum = linear_sum
        self.squared_sum = squared_sum
        self.n = float(self.n)

    # -- constructors ---------------------------------------------------------------
    @staticmethod
    def zero(dimension: int) -> "ClusterFeature":
        """Empty cluster feature of the given dimensionality."""
        return ClusterFeature(n=0.0, linear_sum=np.zeros(dimension), squared_sum=np.zeros(dimension))

    @staticmethod
    def from_point(point: Sequence[float] | np.ndarray, weight: float = 1.0) -> "ClusterFeature":
        """CF of a single (optionally weighted) point."""
        point = np.asarray(point, dtype=float)
        return ClusterFeature(n=weight, linear_sum=weight * point, squared_sum=weight * point * point)

    @staticmethod
    def from_points(points: np.ndarray) -> "ClusterFeature":
        """CF of a set of points (rows)."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        return ClusterFeature(
            n=float(points.shape[0]),
            linear_sum=points.sum(axis=0),
            squared_sum=(points * points).sum(axis=0),
        )

    @staticmethod
    def from_weighted_points(points: np.ndarray, weights: np.ndarray) -> "ClusterFeature":
        """CF of weighted points: ``(sum w, sum w*x, sum w*x^2)``.

        The decayed view of a set of observations is exactly this with
        ``w_i = 2 ** (-decay_rate * age_i)``; shared by the index nodes and
        the Bayes tree's running-statistics rebuild so the two can never
        drift apart.
        """
        points = np.asarray(points, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if weights.shape != (points.shape[0],):
            raise ValueError("weights must be a vector with one weight per point")
        return ClusterFeature(
            n=float(weights.sum()),
            linear_sum=(weights[:, None] * points).sum(axis=0),
            squared_sum=(weights[:, None] * points * points).sum(axis=0),
        )

    @staticmethod
    def sum_of(features: Iterable["ClusterFeature"]) -> "ClusterFeature":
        """Additive combination of several cluster features."""
        features = list(features)
        if not features:
            raise ValueError("cannot sum zero cluster features")
        total = features[0].copy()
        for feature in features[1:]:
            total = total + feature
        return total

    # -- algebra ----------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.linear_sum.shape[0]

    def copy(self) -> "ClusterFeature":
        return ClusterFeature(n=self.n, linear_sum=self.linear_sum.copy(), squared_sum=self.squared_sum.copy())

    def __add__(self, other: "ClusterFeature") -> "ClusterFeature":
        if self.dimension != other.dimension:
            raise ValueError("cluster features must have the same dimension")
        return ClusterFeature(
            n=self.n + other.n,
            linear_sum=self.linear_sum + other.linear_sum,
            squared_sum=self.squared_sum + other.squared_sum,
        )

    def add_point(self, point: Sequence[float] | np.ndarray, weight: float = 1.0) -> None:
        """In-place insertion of a point (used on the insertion path)."""
        point = np.asarray(point, dtype=float)
        self.n += weight
        self.linear_sum = self.linear_sum + weight * point
        self.squared_sum = self.squared_sum + weight * point * point

    def add_feature(self, other: "ClusterFeature") -> None:
        """In-place additive merge of ``other`` (the R* insertion-path update).

        Unlike ``__add__`` this mutates the receiver without allocating a new
        feature; ``other`` is only read.
        """
        if self.dimension != other.dimension:
            raise ValueError("cluster features must have the same dimension")
        self.n += other.n
        self.linear_sum += other.linear_sum
        self.squared_sum += other.squared_sum

    def scaled(self, factor: float) -> "ClusterFeature":
        """Return a copy with all three summaries multiplied by ``factor``.

        Exponential temporal decay of the anytime-clustering extension is
        exactly this operation (paper §4.2, "decrease the influence of older
        data ... by an exponential decay function").
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return ClusterFeature(
            n=self.n * factor,
            linear_sum=self.linear_sum * factor,
            squared_sum=self.squared_sum * factor,
        )

    def scale_in_place(self, factor: float) -> None:
        """Multiply all three summaries by ``factor`` without allocating.

        The decayed ``(n, LS, SS)`` view of an aged entry is exactly the
        stored feature scaled by ``2 ** (-decay_rate * elapsed)``; because the
        same factor hits every summary, the mean and variance are preserved
        and only the weight shrinks.  Used on the R* insertion and sync paths,
        which age directory summaries in place before touching them.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        if factor == 1.0:
            return
        self.n *= factor
        self.linear_sum *= factor
        self.squared_sum *= factor

    # -- derived statistics --------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.n <= 0

    def mean(self) -> np.ndarray:
        """``LS / n``."""
        if self.is_empty:
            raise ValueError("empty cluster feature has no mean")
        return self.linear_sum / self.n

    def variance(self) -> np.ndarray:
        """``SS / n - (LS / n)^2`` clamped to be non-negative."""
        if self.is_empty:
            raise ValueError("empty cluster feature has no variance")
        mean = self.mean()
        return np.maximum(self.squared_sum / self.n - mean * mean, 0.0)

    def radius(self) -> float:
        """Root-mean-square deviation from the centroid (BIRCH-style radius)."""
        return float(np.sqrt(np.sum(self.variance())))

    def to_gaussian(self, weight: float | None = None) -> Gaussian:
        """Gaussian with the CF's mean and variance.

        ``weight`` defaults to ``n``; frontiers re-normalise by the total
        number of represented objects (paper Def. 3).
        """
        return Gaussian(mean=self.mean(), variance=self.variance(), weight=self.n if weight is None else weight)
