"""Nodes of the Bayes tree / R*-tree substrate.

A node is either a leaf (stores :class:`LeafEntry` observations, i.e. the
kernels) or an inner node (stores :class:`DirectoryEntry` summaries of its
child nodes).  The tree is balanced: all leaves are at level 0 and the level
of an inner node is one more than the level of its children (paper Def. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

import numpy as np

from .cluster_feature import ClusterFeature
from .decay import DecayClock
from .entry import DirectoryEntry, LeafEntry
from .mbr import MBR

__all__ = ["Node", "AnyEntry"]

AnyEntry = Union[LeafEntry, DirectoryEntry]


@dataclass(eq=False)
class Node:
    """A Bayes tree node holding either observations or directory entries."""

    level: int
    entries: List[AnyEntry] = field(default_factory=list)

    #: Precomputed ``(means, scales, kinds, n_objects)`` of this node's
    #: entries, or ``None``.  Object-graph nodes leave it ``None`` (their
    #: parameters depend on the evolving bandwidth/decay state and are packed
    #: per query); compiled flat-forest nodes (:mod:`repro.core.flat`) carry
    #: zero-copy column slices here and the frontier consumes them directly.
    #: A plain class attribute, not a dataclass field, so node construction
    #: and equality semantics are untouched.
    packed_params = None

    def __post_init__(self) -> None:
        # Stacked (lowers, uppers) arrays over this node's entry MBRs, lazily
        # built and maintained by the R* insertion machinery (ChooseSubtree
        # hot path); None means "rebuild from the entries on next use".
        self._bounds_cache = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[AnyEntry]:
        return iter(self.entries)

    # -- aggregates ------------------------------------------------------------------
    def compute_mbr(self) -> MBR:
        """MBR over all entries of this node."""
        if not self.entries:
            raise ValueError("cannot compute the MBR of an empty node")
        if self.is_leaf:
            return MBR.from_points(np.stack([entry.point for entry in self.entries]))
        return MBR.union_of(entry.mbr for entry in self.entries)

    def compute_cluster_feature(self, clock: Optional[DecayClock] = None) -> ClusterFeature:
        """Cluster feature over all entries of this node.

        With an enabled ``clock``, every entry is first aged to ``clock.now``
        and the result is the decayed ``(n, LS, SS)`` view at that common
        time: leaf observations contribute their decayed weights, directory
        summaries are scaled — additivity holds because all summands carry
        the same logical timestamp.
        """
        if not self.entries:
            raise ValueError("cannot compute the cluster feature of an empty node")
        decayed = clock is not None and clock.enabled
        if self.is_leaf:
            if not decayed:
                return ClusterFeature.from_points(np.stack([entry.point for entry in self.entries]))
            for entry in self.entries:
                entry.decay_to(clock.now, clock.decay_rate)
            return ClusterFeature.from_weighted_points(
                np.stack([entry.point for entry in self.entries]),
                np.array([entry.weight for entry in self.entries]),
            )
        if decayed:
            for entry in self.entries:
                entry.decay_to(clock.now, clock.decay_rate)
        return ClusterFeature.sum_of(entry.cluster_feature for entry in self.entries)

    @property
    def n_objects(self) -> float:
        """Total number of observations stored below this node."""
        return float(sum(entry.n_objects for entry in self.entries))

    # -- traversal -------------------------------------------------------------------
    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        """Yield every observation stored in the subtree rooted at this node."""
        if self.is_leaf:
            for entry in self.entries:
                yield entry  # type: ignore[misc]
        else:
            for entry in self.entries:
                yield from entry.child.iter_leaf_entries()  # type: ignore[union-attr]

    def iter_nodes(self) -> Iterator["Node"]:
        """Yield this node and all its descendants (pre-order)."""
        yield self
        if not self.is_leaf:
            for entry in self.entries:
                yield from entry.child.iter_nodes()  # type: ignore[union-attr]

    def height(self) -> int:
        """Number of levels in the subtree rooted here (leaf = 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(entry.child.height() for entry in self.entries)  # type: ignore[union-attr]

    def check_invariants(
        self,
        *,
        min_fanout: int,
        max_fanout: int,
        leaf_min: int | None = None,
        leaf_max: int | None = None,
        is_root: bool = False,
        enforce_fanout: bool = True,
        require_balance: bool = True,
        clock: Optional[DecayClock] = None,
    ) -> None:
        """Raise ``AssertionError`` if structural invariants are violated.

        Checks (used heavily by the test-suite):

        * fanout / leaf capacity bounds (relaxed for the root, and optional,
          because some bulk loaders deliberately produce unbalanced fanouts),
        * entry MBRs contain their child subtrees,
        * levels decrease by one towards the leaves (balance; optional because
          the EM top-down bulk load may build unbalanced trees, paper §3.1),
        * cluster features add up along the hierarchy — for decayed trees
          (an enabled ``clock``) everything is aged to the common logical
          time ``clock.now`` first, under which additivity is exact again.
        """
        leaf_min = min_fanout if leaf_min is None else leaf_min
        leaf_max = max_fanout if leaf_max is None else leaf_max
        lower, upper = (leaf_min, leaf_max) if self.is_leaf else (min_fanout, max_fanout)
        if enforce_fanout and not is_root and not (lower <= len(self.entries) <= upper):
            raise AssertionError(
                f"node at level {self.level} has {len(self.entries)} entries, "
                f"expected between {lower} and {upper}"
            )
        if is_root and len(self.entries) == 0:
            raise AssertionError("root node must contain at least one entry")
        if enforce_fanout and is_root and len(self.entries) > upper:
            raise AssertionError(
                f"root node has {len(self.entries)} entries, expected at most {upper}"
            )
        if self.is_leaf:
            return
        decayed = clock is not None and clock.enabled
        for entry in self.entries:
            child = entry.child  # type: ignore[union-attr]
            if require_balance and child.level != self.level - 1:
                raise AssertionError("child level must be exactly one below the parent level")
            if not require_balance and child.level >= self.level:
                raise AssertionError("child level must be below the parent level")
            child_mbr = child.compute_mbr()
            if not entry.mbr.contains(child_mbr):
                raise AssertionError("entry MBR does not contain the child subtree")
            if decayed:
                entry.decay_to(clock.now, clock.decay_rate)
            child_cf = child.compute_cluster_feature(clock=clock)
            if not np.isclose(child_cf.n, entry.cluster_feature.n):
                raise AssertionError("entry cluster feature count is stale")
            if not np.allclose(child_cf.linear_sum, entry.cluster_feature.linear_sum, atol=1e-6):
                raise AssertionError("entry cluster feature linear sum is stale")
            child.check_invariants(
                min_fanout=min_fanout,
                max_fanout=max_fanout,
                leaf_min=leaf_min,
                leaf_max=leaf_max,
                enforce_fanout=enforce_fanout,
                require_balance=require_balance,
                clock=clock,
            )
