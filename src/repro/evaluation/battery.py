"""Scenario battery: every classifier through every scenario, reproducibly.

The battery drives the anytime Bayes forest plus the three ``baselines/``
classifiers through the streams materialised from
:mod:`repro.scenarios`, with a three-phase protocol per scenario:

1. **warm start** — the labelled objects in the leading ``warmup_fraction``
   of the stream train the initial model (the history a deployed system has
   on hand before going live);
2. **prequential live region** — test-then-train in small chunks: each
   object is first classified under its *arrival budget* (the node budget
   implied by the scenario's arrival process), then labels whose delivery
   time has passed are folded in via ``partial_fit``.  Label delay and
   partial labelling are honoured exactly: a delayed label trains the model
   only after its delivery position, a withheld label never does;
3. **frozen holdout** — the trailing ``holdout_fraction`` is classified at
   every budget of a fixed grid without further learning, yielding the
   anytime-accuracy-vs-budget curve per classifier.

Budget-insensitive baselines (naive Bayes, kernel Bayes) are evaluated once
and their accuracy replicated across the grid — they appear in the curves as
flat lines, which is exactly the paper's point: they cannot trade answer
quality for time.  The per-scenario win/loss summary marks the forest as
winning a ``(scenario, budget)`` cell when it is at least as accurate as the
best baseline at that budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import AnytimeNearestNeighbor, GaussianNaiveBayes, KernelBayesClassifier
from ..core.classifier import AnytimeBayesClassifier
from ..scenarios import ScenarioStream, build_scenario, scenario_names
from .experiment import DEFAULT_EXPERIMENT_CONFIG
from .metrics import accuracy

__all__ = [
    "CLASSIFIER_KINDS",
    "BUDGET_GRID",
    "ScenarioOutcome",
    "BatteryResult",
    "run_scenario_battery",
    "format_win_loss_table",
]

#: Classifier line-up every scenario is run through.
CLASSIFIER_KINDS: Tuple[str, ...] = ("bayes_forest", "naive_bayes", "kernel_bayes", "anytime_knn")

#: Node-budget grid of the holdout anytime-accuracy curves.
BUDGET_GRID: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Objects an exhaustive k-NN scan covers per "node" of budget — the leaf
#: capacity of the default experiment tree, so a budget of ``b`` nodes is
#: comparable work for both classifier families.
KNN_SCAN_PER_NODE = 8


class _Adapter:
    """Uniform train/predict facade over one classifier kind."""

    #: Whether predictions react to the node budget at all.
    budget_sensitive = True

    def __init__(self) -> None:
        self.fitted = False

    def warm_start(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        """Train the initial model from the warm-up batch."""
        if len(labels) == 0:
            return
        self._fit(points, labels)
        self.fitted = True

    def learn(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        """Fold newly delivered labels into the model."""
        if len(labels) == 0:
            return
        if not self.fitted:
            self.warm_start(points, labels)
            return
        self._partial_fit(points, labels)

    def predict_budgeted(self, points: np.ndarray, budgets: np.ndarray) -> List[Optional[Hashable]]:
        """Predict each row under its own node budget (``None`` when unfitted)."""
        if not self.fitted:
            return [None] * points.shape[0]
        return self._predict(points, np.maximum(budgets, 1))

    def _fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        raise NotImplementedError

    def _partial_fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        raise NotImplementedError

    def _predict(self, points: np.ndarray, budgets: np.ndarray) -> List[Optional[Hashable]]:
        raise NotImplementedError


class _ForestAdapter(_Adapter):
    """The anytime Bayes forest under its configured experiment parameters."""

    def __init__(self, config: Any = None) -> None:
        super().__init__()
        self.classifier = AnytimeBayesClassifier(config=config or DEFAULT_EXPERIMENT_CONFIG)

    def _fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        self.classifier.fit(points, labels)

    def _partial_fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        for point, label in zip(points, labels):
            self.classifier.partial_fit(point, label)

    def _predict(self, points: np.ndarray, budgets: np.ndarray) -> List[Optional[Hashable]]:
        results = self.classifier.classify_anytime_batch(points, max_nodes=budgets, record_history=False)
        return [result.final_prediction for result in results]


class _NaiveBayesAdapter(_Adapter):
    """Gaussian naive Bayes — the budget-insensitive left anchor."""

    budget_sensitive = False

    def __init__(self) -> None:
        super().__init__()
        self.classifier = GaussianNaiveBayes()

    def _fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        self.classifier.fit(points, labels)

    def _partial_fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        self.classifier.partial_fit(points, labels)

    def _predict(self, points: np.ndarray, budgets: np.ndarray) -> List[Optional[Hashable]]:
        return list(self.classifier.predict_batch(points))


class _KernelBayesAdapter(_Adapter):
    """Full kernel-density Bayes — the budget-insensitive asymptote."""

    budget_sensitive = False

    def __init__(self) -> None:
        super().__init__()
        self.classifier = KernelBayesClassifier()

    def _fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        self.classifier.fit(points, labels)

    def _partial_fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        self.classifier.partial_fit(points, labels)

    def _predict(self, points: np.ndarray, budgets: np.ndarray) -> List[Optional[Hashable]]:
        return list(self.classifier.predict_batch(points))


class _KnnAdapter(_Adapter):
    """Anytime nearest neighbour; node budgets map to scanned objects."""

    def __init__(self) -> None:
        super().__init__()
        self.classifier = AnytimeNearestNeighbor(random_state=0)

    def _fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        self.classifier.fit(points, labels)

    def _partial_fit(self, points: np.ndarray, labels: Sequence[Hashable]) -> None:
        self.classifier.partial_fit(points, labels)

    def _predict(self, points: np.ndarray, budgets: np.ndarray) -> List[Optional[Hashable]]:
        return [
            self.classifier.predict_anytime(point, int(budget) * KNN_SCAN_PER_NODE)
            for point, budget in zip(points, budgets)
        ]


def _make_adapters(config: Any = None) -> Dict[str, _Adapter]:
    """Fresh adapter per classifier kind (one line-up per scenario)."""
    return {
        "bayes_forest": _ForestAdapter(config=config),
        "naive_bayes": _NaiveBayesAdapter(),
        "kernel_bayes": _KernelBayesAdapter(),
        "anytime_knn": _KnnAdapter(),
    }


@dataclass(frozen=True)
class ScenarioOutcome:
    """Everything the battery measured on one scenario.

    ``curves`` maps classifier kind to ``[(budget, accuracy), ...]`` on the
    frozen holdout; ``prequential`` maps classifier kind to the test-then-
    train accuracy over the live region under arrival budgets; ``spec`` and
    ``fingerprint`` are the provenance the published report embeds.
    """

    scenario: str
    spec: Dict[str, Any]
    fingerprint: str
    size: int
    labeled_count: int
    curves: Dict[str, List[Tuple[int, float]]]
    prequential: Dict[str, float]

    @property
    def forest_auc(self) -> float:
        """Mean holdout accuracy of the forest across the budget grid."""
        curve = self.curves["bayes_forest"]
        return float(np.mean([acc for _, acc in curve]))

    def win_cells(self) -> List[Tuple[int, bool]]:
        """Per-budget: did the forest match or beat every baseline?"""
        cells: List[Tuple[int, bool]] = []
        baselines = [kind for kind in self.curves if kind != "bayes_forest"]
        for position, (budget, forest_acc) in enumerate(self.curves["bayes_forest"]):
            best = max(self.curves[kind][position][1] for kind in baselines)
            cells.append((budget, forest_acc >= best - 1e-9))
        return cells

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (the report's per-scenario payload)."""
        return {
            "scenario": self.scenario,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "size": self.size,
            "labeled_count": self.labeled_count,
            "curves": {
                kind: [[int(b), float(a)] for b, a in curve] for kind, curve in self.curves.items()
            },
            "prequential": {kind: float(value) for kind, value in self.prequential.items()},
            "forest_auc": self.forest_auc,
        }


@dataclass(frozen=True)
class BatteryResult:
    """The full battery run: one :class:`ScenarioOutcome` per scenario."""

    outcomes: List[ScenarioOutcome]
    budgets: Tuple[int, ...]
    size_scale: float
    config_note: str = field(default="default experiment config")

    @property
    def forest_win_rate(self) -> float:
        """Fraction of ``(scenario, budget)`` cells the forest wins (weakly)."""
        cells = [won for outcome in self.outcomes for _, won in outcome.win_cells()]
        return float(np.mean(cells)) if cells else 0.0

    def outcome(self, scenario: str) -> ScenarioOutcome:
        """Look up one scenario's outcome by name."""
        for candidate in self.outcomes:
            if candidate.scenario == scenario:
                return candidate
        raise KeyError(f"scenario {scenario!r} not part of this battery run")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation consumed by the report generator."""
        return {
            "budgets": list(self.budgets),
            "size_scale": self.size_scale,
            "config_note": self.config_note,
            "forest_win_rate": self.forest_win_rate,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


def _prequential_pass(
    adapters: Dict[str, _Adapter],
    stream: ScenarioStream,
    live_start: int,
    live_end: int,
    chunk: int,
) -> Dict[str, float]:
    """Test-then-train over ``[live_start, live_end)`` under arrival budgets.

    Labels are delivered between chunks once their delivery position has
    passed (within-chunk delivery is coalesced to the chunk boundary — the
    standard chunked-prequential approximation); holdout labels, beyond
    ``live_end``, are never delivered so the holdout stays frozen.
    """
    schedule = [
        (available, index)
        for available, index in stream.label_deliveries()
        if live_start <= index < live_end
    ]
    cursor = 0
    correct: Dict[str, int] = {kind: 0 for kind in adapters}
    total = 0
    for start in range(live_start, live_end, chunk):
        end = min(start + chunk, live_end)
        points = stream.features[start:end]
        budgets = stream.budgets[start:end]
        truth = stream.labels[start:end]
        total += end - start
        for kind, adapter in adapters.items():
            predictions = adapter.predict_budgeted(points, budgets)
            correct[kind] += int(
                sum(1 for predicted, actual in zip(predictions, truth) if predicted == actual)
            )
        due_indexes: List[int] = []
        while cursor < len(schedule) and schedule[cursor][0] < end:
            due_indexes.append(schedule[cursor][1])
            cursor += 1
        if due_indexes:
            train_points = stream.features[due_indexes]
            train_labels = [stream.labels[index] for index in due_indexes]
            for adapter in adapters.values():
                adapter.learn(train_points, train_labels)
    if total == 0:
        return {kind: 0.0 for kind in adapters}
    return {kind: correct[kind] / total for kind in adapters}


def _holdout_curves(
    adapters: Dict[str, _Adapter],
    stream: ScenarioStream,
    holdout_start: int,
    budgets: Tuple[int, ...],
) -> Dict[str, List[Tuple[int, float]]]:
    """Frozen-model anytime-accuracy curve per classifier on the holdout."""
    points = stream.features[holdout_start:]
    truth = list(stream.labels[holdout_start:])
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for kind, adapter in adapters.items():
        if adapter.budget_sensitive:
            curve: List[Tuple[int, float]] = []
            for budget in budgets:
                constant = np.full(points.shape[0], budget, dtype=np.int64)
                predictions = adapter.predict_budgeted(points, constant)
                curve.append((budget, accuracy(predictions, truth)))
            curves[kind] = curve
        else:
            constant = np.full(points.shape[0], budgets[-1], dtype=np.int64)
            predictions = adapter.predict_budgeted(points, constant)
            flat = accuracy(predictions, truth)
            curves[kind] = [(budget, flat) for budget in budgets]
    return curves


def run_scenario_battery(
    names: Optional[Sequence[str]] = None,
    size_scale: float = 1.0,
    config: Any = None,
    budgets: Tuple[int, ...] = BUDGET_GRID,
    warmup_fraction: float = 0.25,
    holdout_fraction: float = 0.2,
    chunk: int = 32,
) -> BatteryResult:
    """Run the scenario battery and return all curves and metrics.

    ``names`` defaults to every registered scenario; pass
    :data:`repro.scenarios.SMOKE_SCENARIOS` with a small ``size_scale`` for
    the CI smoke variant.  The run is deterministic: streams come from
    seeded specs and every classifier in the line-up is seeded or
    deterministic, so the same arguments always yield the same
    :class:`BatteryResult`.
    """
    if not (0.0 < warmup_fraction < 1.0) or not (0.0 < holdout_fraction < 1.0):
        raise ValueError("warmup_fraction and holdout_fraction must be in (0, 1)")
    if warmup_fraction + holdout_fraction >= 1.0:
        raise ValueError("warmup and holdout fractions must leave a live region")
    if chunk < 1:
        raise ValueError("chunk must be positive")
    selected = list(names) if names is not None else scenario_names()
    outcomes: List[ScenarioOutcome] = []
    for name in selected:
        stream = build_scenario(name, size_scale=size_scale)
        size = stream.size
        warmup_end = max(1, int(size * warmup_fraction))
        holdout_start = max(warmup_end, int(size * (1.0 - holdout_fraction)))
        adapters = _make_adapters(config=config)
        warm_indexes = [
            index for index in range(warmup_end) if int(stream.label_available_at[index]) >= 0
        ]
        if warm_indexes:
            warm_points = stream.features[warm_indexes]
            warm_labels = [stream.labels[index] for index in warm_indexes]
            for adapter in adapters.values():
                adapter.warm_start(warm_points, warm_labels)
        prequential = _prequential_pass(adapters, stream, warmup_end, holdout_start, chunk)
        curves = _holdout_curves(adapters, stream, holdout_start, budgets)
        outcomes.append(
            ScenarioOutcome(
                scenario=name,
                spec=stream.spec.to_dict(),
                fingerprint=stream.fingerprint(),
                size=size,
                labeled_count=stream.labeled_count,
                curves=curves,
                prequential=prequential,
            )
        )
    return BatteryResult(outcomes=outcomes, budgets=tuple(budgets), size_scale=float(size_scale))


def format_win_loss_table(result: BatteryResult) -> str:
    """Human-readable win/loss summary (one row per scenario)."""
    lines = ["scenario              wins  cells  forest_auc  best_preq"]
    for outcome in result.outcomes:
        cells = outcome.win_cells()
        wins = sum(1 for _, won in cells if won)
        best = max(outcome.prequential.items(), key=lambda item: (item[1], item[0]))
        lines.append(
            f"{outcome.scenario:<20}  {wins:>4}  {len(cells):>5}  {outcome.forest_auc:>10.3f}"
            f"  {best[0]} ({best[1]:.3f})"
        )
    lines.append(f"forest win rate: {result.forest_win_rate:.3f}")
    return "\n".join(lines)
