"""Per-request latency/budget trace capture for serving experiments.

The async front-end's open-loop driver
(:func:`repro.serving.frontend.drive_open_loop`) emits one plain record dict
per stream item; :class:`RequestTrace` collects such records — or records
appended live via :meth:`RequestTrace.record` — and derives the serving-side
quality numbers: latency percentiles, accuracy of the served predictions,
the mean node budget the adaptive policy granted, and the rejection mix.
Everything is JSON-able so benchmark reports (``BENCH_pr5.json``) can embed
whole traces or their summaries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from .metrics import accuracy, latency_percentiles

__all__ = ["RequestRecord", "RequestTrace"]


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one serving request.

    Attributes
    ----------
    index:
        The stream/object index of the request.
    status:
        ``"ok"`` for served requests; ``"deadline"``, ``"quota"``,
        ``"rejected"`` or ``"closed"`` for requests that failed at the
        front-end (``"quota"`` = the tenant's ``requests_per_sec`` quota,
        ``"rejected"`` = queue-full backpressure).
    arrival_time:
        The request's (abstract) arrival timestamp, if known.
    label:
        The true label, if known — enables accuracy over the trace.
    prediction:
        The served prediction (``None`` unless ``status == "ok"``).
    node_budget:
        The node budget the request was served with: the adaptive policy's
        choice, the caller's fixed value, or ``None`` for full refinement.
    latency_s:
        Enqueue-to-result wall-clock seconds (``None`` for failed requests).
    tenant:
        The tenant whose model served the request, when the trace comes from
        multi-tenant serving (``None`` for single-tenant traces — the
        pre-multi-tenant record shape is unchanged).
    """

    index: int
    status: str = "ok"
    arrival_time: Optional[float] = None
    label: Optional[Hashable] = None
    prediction: Optional[Hashable] = None
    node_budget: Optional[int] = None
    latency_s: Optional[float] = None
    tenant: Optional[str] = None


class RequestTrace:
    """An ordered collection of :class:`RequestRecord` with summary views."""

    def __init__(self, records: Iterable[RequestRecord] = ()) -> None:
        self._records: List[RequestRecord] = list(records)

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "RequestTrace":
        """Build a trace from plain record dicts (the open-loop driver's output)."""
        return cls(RequestRecord(**record) for record in records)

    def record(self, **fields: Any) -> None:
        """Append one record (same fields as :class:`RequestRecord`)."""
        self._records.append(RequestRecord(**fields))

    @property
    def records(self) -> List[RequestRecord]:
        """The collected records, in insertion order (a copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def served(self) -> List[RequestRecord]:
        """The successfully served (``status == "ok"``) records."""
        return [record for record in self._records if record.status == "ok"]

    def status_counts(self) -> Dict[str, int]:
        """How many requests ended in each status."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def by_tenant(self) -> "Dict[Optional[str], RequestTrace]":
        """Split the trace into per-tenant sub-traces (insertion order kept).

        Untagged records group under the ``None`` key, so single-tenant
        traces come back unchanged as ``{None: trace}``.
        """
        groups: "Dict[Optional[str], List[RequestRecord]]" = {}
        for record in self._records:
            groups.setdefault(record.tenant, []).append(record)
        return {tenant: RequestTrace(records) for tenant, records in groups.items()}

    def completion_rate(self) -> Optional[float]:
        """Fraction of requests that were served (``None`` for empty traces).

        The starvation-bench headline number: a background tenant's
        completion rate under a hot co-tenant's storm measures whether the
        admission layer actually protected it.
        """
        if not self._records:
            return None
        return len(self.served()) / len(self._records)

    def rejection_mix(self) -> Dict[str, float]:
        """Share of requests per non-``"ok"`` status (empty when all served).

        Fractions of the *total* request count, keyed by status — the
        front-end's per-tenant rejection mix as seen from the client side
        (``{"quota": 0.2, "rejected": 0.05}`` reads "20% quota breaches,
        5% queue-full").
        """
        total = len(self._records)
        if not total:
            return {}
        counts = self.status_counts()
        return {
            status: count / total for status, count in sorted(counts.items()) if status != "ok"
        }

    def latency_summary(self, percentiles: Sequence[float] = (50.0, 99.0)) -> Dict[str, float]:
        """Latency percentiles (ms) over the served requests.

        Raises :class:`ValueError` when no request was served (no sample).
        """
        samples = [record.latency_s for record in self.served() if record.latency_s is not None]
        return latency_percentiles(samples, percentiles=percentiles)

    def mean_node_budget(self) -> Optional[float]:
        """Mean granted node budget over served budgeted requests (else ``None``)."""
        budgets = [record.node_budget for record in self.served() if record.node_budget is not None]
        if not budgets:
            return None
        return float(np.mean(budgets))

    def accuracy(self) -> Optional[float]:
        """Accuracy of the served predictions against known labels (else ``None``)."""
        scored = [record for record in self.served() if record.label is not None]
        if not scored:
            return None
        return accuracy(
            [record.prediction for record in scored], [record.label for record in scored]
        )

    def summary(self) -> dict:
        """One JSON-able summary: counts, latency, accuracy, mean budget."""
        served = self.served()
        summary = {
            "requests": len(self._records),
            "served": len(served),
            "status_counts": self.status_counts(),
            "completion_rate": self.completion_rate(),
            "rejection_mix": self.rejection_mix(),
            "accuracy": self.accuracy(),
            "mean_node_budget": self.mean_node_budget(),
        }
        if served:
            summary["latency_ms"] = self.latency_summary()
        tenants = self.by_tenant()
        if len(tenants) > 1:
            # Multi-tenant trace: nest one summary per tenant (tagged only).
            # Only genuinely mixed traces nest — a uniformly tagged trace is
            # its own single-tenant summary, and each sub-trace here is one
            # tenant's group, so the recursion stops after one level.
            summary["tenants"] = {
                tenant: sub.summary() for tenant, sub in tenants.items() if tenant is not None
            }
        return summary

    def to_jsonable(self) -> List[dict]:
        """The full trace as a list of plain dicts (JSON-able)."""
        return [asdict(record) for record in self._records]
