"""Classification metrics used in the evaluation harness."""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "anytime_curve_summary"]


def accuracy(predictions: Sequence[Hashable], labels: Sequence[Hashable]) -> float:
    """Fraction of predictions equal to the true labels."""
    predictions = list(predictions)
    labels = list(labels)
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must have the same length")
    if not labels:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float(np.mean([p == l for p, l in zip(predictions, labels)]))


def confusion_matrix(
    predictions: Sequence[Hashable], labels: Sequence[Hashable]
) -> Tuple[np.ndarray, List[Hashable]]:
    """Confusion matrix ``C[i, j]`` = #objects of true class i predicted as class j."""
    predictions = list(predictions)
    labels = list(labels)
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must have the same length")
    classes = sorted(set(labels) | set(predictions), key=repr)
    index = {label: i for i, label in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=int)
    for prediction, label in zip(predictions, labels):
        matrix[index[label], index[prediction]] += 1
    return matrix, classes


def anytime_curve_summary(curve: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of an accuracy-vs-nodes curve.

    * ``initial`` — accuracy using only the root models (node 0),
    * ``final`` — accuracy at the largest evaluated budget,
    * ``best`` — maximum over the curve,
    * ``mean`` — average accuracy over the node axis (the area under the
      anytime curve, the scalar we use to rank bulk-loading strategies).
    """
    curve = np.asarray(list(curve), dtype=float)
    if curve.size == 0:
        raise ValueError("curve must contain at least one value")
    return {
        "initial": float(curve[0]),
        "final": float(curve[-1]),
        "best": float(curve.max()),
        "mean": float(curve.mean()),
    }
