"""Classification metrics used in the evaluation harness."""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "anytime_curve_summary",
    "sliding_window_accuracy",
    "fading_accuracy",
    "latency_percentiles",
    "classification_trace_hash",
]


def accuracy(predictions: Sequence[Hashable], labels: Sequence[Hashable]) -> float:
    """Fraction of predictions equal to the true labels."""
    predictions = list(predictions)
    labels = list(labels)
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must have the same length")
    if not labels:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float(np.mean([p == l for p, l in zip(predictions, labels)]))


def confusion_matrix(
    predictions: Sequence[Hashable], labels: Sequence[Hashable]
) -> Tuple[np.ndarray, List[Hashable]]:
    """Confusion matrix ``C[i, j]`` = #objects of true class i predicted as class j."""
    predictions = list(predictions)
    labels = list(labels)
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must have the same length")
    classes = sorted(set(labels) | set(predictions), key=repr)
    index = {label: i for i, label in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=int)
    for prediction, label in zip(predictions, labels):
        matrix[index[label], index[prediction]] += 1
    return matrix, classes


def _prequential_outcomes(outcomes: Sequence[float]) -> np.ndarray:
    """Validate and coerce a 0/1 (or bool) prequential outcome sequence."""
    array = np.asarray(list(outcomes), dtype=float)
    if array.ndim != 1:
        raise ValueError("outcomes must be a 1-d sequence")
    return array


def sliding_window_accuracy(outcomes: Sequence[float], window: int) -> np.ndarray:
    """Prequential accuracy over a sliding count window.

    ``result[t]`` is the mean outcome of the last ``window`` evaluated
    objects up to and including ``t`` (fewer while the window fills).  The
    sliding window forgets abruptly, which makes it the standard lens for
    *drift recovery*: after a concept change the curve first collapses and
    then climbs back as the classifier adapts — the climb-back speed is the
    recovery time (Gama et al., "On evaluating stream learning algorithms").
    """
    outcomes = _prequential_outcomes(outcomes)
    if window < 1:
        raise ValueError("window must be positive")
    cumulative = np.concatenate([[0.0], np.cumsum(outcomes)])
    t = np.arange(1, outcomes.size + 1)
    start = np.maximum(t - window, 0)
    return (cumulative[t] - cumulative[start]) / (t - start)


def fading_accuracy(outcomes: Sequence[float], fading_factor: float = 0.99) -> np.ndarray:
    """Prequential accuracy with exponential fading (Gama's alpha-fading).

    ``result[t] = S_t / N_t`` with ``S_t = outcome_t + alpha * S_{t-1}`` and
    ``N_t = 1 + alpha * N_{t-1}``: every past outcome loses influence by the
    factor ``alpha`` per step, the streaming analogue of the Bayes forest's
    ``2 ** (-lambda * dt)`` statistic decay.  ``alpha = 1`` degenerates to
    the running mean (never forgets).
    """
    outcomes = _prequential_outcomes(outcomes)
    if not (0.0 < fading_factor <= 1.0):
        raise ValueError("fading_factor must be in (0, 1]")
    result = np.empty(outcomes.size)
    hits = 0.0
    norm = 0.0
    for t, outcome in enumerate(outcomes):
        hits = outcome + fading_factor * hits
        norm = 1.0 + fading_factor * norm
        result[t] = hits / norm
    return result


def anytime_curve_summary(curve: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of an accuracy-vs-nodes curve.

    * ``initial`` — accuracy using only the root models (node 0),
    * ``final`` — accuracy at the largest evaluated budget,
    * ``best`` — maximum over the curve,
    * ``mean`` — average accuracy over the node axis (the area under the
      anytime curve, the scalar we use to rank bulk-loading strategies).
    """
    array = np.asarray(list(curve), dtype=float)
    if array.size == 0:
        raise ValueError("curve must contain at least one value")
    return {
        "initial": float(array[0]),
        "final": float(array[-1]),
        "best": float(array.max()),
        "mean": float(array.mean()),
    }


def latency_percentiles(
    samples_seconds: Sequence[float], percentiles: Sequence[float] = (50.0, 99.0)
) -> Dict[str, float]:
    """Latency percentiles (in milliseconds) of a sample of request timings.

    Returns ``{"p50": ..., "p99": ...}`` style keys for the requested
    percentiles plus ``"mean"`` — the serving benchmark's summary of a batch
    latency distribution.  Percentile interpolation is numpy's default
    (linear), computed on the raw sample.
    """
    samples = np.asarray(list(samples_seconds), dtype=float)
    if samples.size == 0:
        raise ValueError("need at least one latency sample")
    if samples.min() < 0:
        raise ValueError("latencies must be non-negative")
    result = {
        f"p{percentile:g}": float(np.percentile(samples, percentile) * 1e3)
        for percentile in percentiles
    }
    result["mean"] = float(samples.mean() * 1e3)
    return result


def classification_trace_hash(results: Iterable) -> str:
    """Order-sensitive SHA-256 over a sequence of anytime classifications.

    Hashes, for every :class:`~repro.core.classifier.AnytimeClassification`,
    the per-step predictions, the exact float bits of every recorded log
    posterior (labels in repr-sorted order) and the node-read count.  Two
    classifiers produce the same hash iff their refinement traces agree bit
    for bit — the equality the snapshot layer promises between a restored
    forest and the never-persisted one.
    """
    digest = hashlib.sha256()
    for result in results:
        digest.update(repr(result.predictions).encode("utf-8"))
        digest.update(np.int64(result.nodes_read).tobytes())
        for log_posterior in result.log_posteriors:
            for label in sorted(log_posterior.keys(), key=repr):
                digest.update(repr(label).encode("utf-8"))
                digest.update(np.float64(log_posterior[label]).tobytes())
    return digest.hexdigest()
