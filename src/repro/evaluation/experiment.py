"""Experiment runners that regenerate the paper's figures and tables.

Every figure of the evaluation section corresponds to one function here; the
benchmark files under ``benchmarks/`` are thin wrappers that call these
runners, print the same series the paper plots and assert the qualitative
orderings listed in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import BayesTreeConfig
from ..data.synthetic import DATASET_SPECS, Dataset, make_dataset, make_drift_stream
from ..index.rstar import TreeParameters
from .anytime_eval import CrossValidatedCurve, cross_validated_anytime_curve
from .metrics import anytime_curve_summary

__all__ = [
    "ExperimentConfig",
    "BulkloadExperimentResult",
    "run_bulkload_experiment",
    "StreamExperimentResult",
    "run_stream_experiment",
    "DriftRecoveryResult",
    "run_drift_recovery_experiment",
    "table1_rows",
    "format_curve_table",
]


#: Tree parameters used by the experiment harness.  The paper derives a fanout
#: of a few dozen entries from its 2 KiB pages; with the scaled-down synthetic
#: data a smaller fanout keeps the number of nodes comparable to the paper's
#: x-axis of 0..100 node reads.
DEFAULT_EXPERIMENT_CONFIG = BayesTreeConfig(
    tree=TreeParameters(max_fanout=8, min_fanout=3, leaf_capacity=8, leaf_min=3)
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one accuracy-vs-nodes experiment."""

    dataset: str
    size: int = 1200
    max_nodes: int = 100
    n_folds: int = 4
    strategies: Tuple[str, ...] = ("em_topdown", "hilbert", "goldberger", "iterative")
    descents: Tuple[str, ...] = ("glo",)
    qbk_k: Optional[int] = None
    max_test_objects: Optional[int] = 40
    random_state: int = 0
    tree_config: BayesTreeConfig = DEFAULT_EXPERIMENT_CONFIG


@dataclass
class BulkloadExperimentResult:
    """Curves of one experiment, keyed by (strategy, descent)."""

    config: ExperimentConfig
    curves: Dict[Tuple[str, str], CrossValidatedCurve] = field(default_factory=dict)

    def mean_curve(self, strategy: str, descent: str = "glo") -> np.ndarray:
        """Cross-validated mean anytime curve of one (strategy, descent) cell."""
        return self.curves[(strategy, descent)].mean_curve

    def summary(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per-(strategy, descent) summary stats of the mean anytime curves."""
        return {key: anytime_curve_summary(curve.mean_curve) for key, curve in self.curves.items()}

    def mean_accuracy(self, strategy: str, descent: str = "glo") -> float:
        """Average accuracy over the node axis (area under the anytime curve)."""
        return float(self.mean_curve(strategy, descent).mean())


def run_bulkload_experiment(config: ExperimentConfig) -> BulkloadExperimentResult:
    """Run the bulk-loading comparison of Figures 2-4 for one data set."""
    dataset = make_dataset(config.dataset, size=config.size, random_state=config.random_state)
    result = BulkloadExperimentResult(config=config)
    for strategy in config.strategies:
        for descent in config.descents:
            curve = cross_validated_anytime_curve(
                dataset,
                strategy=strategy,
                descent=descent,
                max_nodes=config.max_nodes,
                n_folds=config.n_folds,
                config=config.tree_config,
                qbk_k=config.qbk_k,
                random_state=config.random_state,
                max_test_objects=config.max_test_objects,
            )
            result.curves[(strategy, descent)] = curve
    return result


@dataclass
class StreamExperimentResult:
    """Outcome of one test-then-train stream experiment."""

    accuracy: float
    accuracy_by_budget: Dict[int, float]
    mean_nodes_read: float
    objects: int
    learned_objects: int


def run_stream_experiment(
    dataset: Dataset,
    warmup: int = 64,
    limit: Optional[int] = None,
    nodes_per_time_unit: float = 10.0,
    chunk_size: int = 64,
    tree_config: Optional[BayesTreeConfig] = None,
    random_state: int = 0,
) -> StreamExperimentResult:
    """Prequential (test-then-train) evaluation on a replayed stream.

    The classifier warm-starts on the first ``warmup`` stream objects and
    then processes the rest with the micro-batched anytime stream driver:
    each object is classified under its arrival budget before its label is
    learned, with labels applied at ``chunk_size`` boundaries (deferred-label
    protocol; see ``repro.stream.run_anytime_stream``).  This is the paper's
    combined anytime-classification + incremental-online-learning scenario as
    one reusable experiment.
    """
    from ..core.classifier import AnytimeBayesClassifier
    from ..stream import DataStream, run_anytime_stream

    if warmup < 1:
        raise ValueError("warmup must be positive")
    stream = DataStream(
        dataset, nodes_per_time_unit=nodes_per_time_unit, random_state=random_state
    )
    items = stream.items(None if limit is None else warmup + limit)
    if len(items) <= warmup:
        raise ValueError("stream must contain more objects than the warmup")
    head, tail = items[:warmup], items[warmup:]
    classifier = AnytimeBayesClassifier(config=tree_config or DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(
        np.stack([item.features for item in head]), [item.label for item in head]
    )
    result = run_anytime_stream(
        classifier, tail, online_learning=True, chunk_size=chunk_size
    )
    learned = sum(tree.n_objects for tree in classifier.trees.values()) - warmup
    return StreamExperimentResult(
        accuracy=result.accuracy,
        accuracy_by_budget=result.accuracy_by_budget(),
        mean_nodes_read=result.mean_nodes_read,
        objects=len(result.steps),
        learned_objects=int(learned),
    )


@dataclass
class DriftRecoveryResult:
    """Decayed-vs-plain comparison on one drifting stream.

    ``post_drift_accuracy`` values are means of the sliding-window
    prequential accuracy over the post-drift region (after a settling gap of
    half a window, so the window holds post-drift outcomes only).
    """

    drift_position: int
    window: int
    decayed_curve: np.ndarray
    plain_curve: np.ndarray
    decayed_post_drift_accuracy: float
    plain_post_drift_accuracy: float
    decayed_stored_objects: int
    plain_stored_objects: int

    @property
    def recovery_gain(self) -> float:
        """How much post-drift accuracy the exponential decay buys."""
        return self.decayed_post_drift_accuracy - self.plain_post_drift_accuracy


def run_drift_recovery_experiment(
    size: int = 600,
    warmup: int = 64,
    window: int = 100,
    decay_rate: float = 0.02,
    expiry_threshold: float = 1e-3,
    drift: str = "sudden",
    chunk_size: int = 32,
    nodes_per_time_unit: float = 20.0,
    tree_config: Optional[BayesTreeConfig] = None,
    random_state: int = 0,
) -> DriftRecoveryResult:
    """Measure drift recovery of the decayed forest against a plain one.

    Both classifiers are warm-started with timestamped ``partial_fit`` on the
    first ``warmup`` stream objects and then run the same deferred-label
    test-then-train protocol over a sudden-drift stream (the class regions
    swap at the midpoint, so a never-forgetting model is maximally misled).
    The streams are replayed *in order* (no shuffling — shuffling would
    destroy the drift) and the items' arrival timestamps drive the decay.
    """
    from ..core.classifier import AnytimeBayesClassifier
    from ..stream import DataStream, run_anytime_stream

    # The concept change sits at the second segment's start — ceil division,
    # matching data.synthetic._concept_schedule.
    segment_length = -(-size // 2)
    if not (0 < warmup < segment_length):
        raise ValueError("warmup must lie strictly before the concept change (size/2)")
    if segment_length + window // 2 >= size:
        raise ValueError("window leaves no settled post-drift region; shrink it or grow size")
    base = tree_config or DEFAULT_EXPERIMENT_CONFIG
    dataset = make_drift_stream(
        size=size, drift=drift, n_segments=2, random_state=random_state
    )
    curves: Dict[str, np.ndarray] = {}
    stored: Dict[str, int] = {}
    for name, config in (
        ("plain", replace(base, decay_rate=0.0, expiry_threshold=0.0)),
        ("decayed", replace(base, decay_rate=decay_rate, expiry_threshold=expiry_threshold)),
    ):
        classifier = AnytimeBayesClassifier(config=config)
        stream = DataStream(
            dataset, shuffle=False, nodes_per_time_unit=nodes_per_time_unit
        )
        items = stream.items()
        for item in items[:warmup]:
            classifier.partial_fit(item.features, item.label, timestamp=item.arrival_time)
        result = run_anytime_stream(
            classifier, items[warmup:], online_learning=True, chunk_size=chunk_size
        )
        curves[name] = result.sliding_window_accuracy(window)
        stored[name] = int(sum(tree.n_objects for tree in classifier.trees.values()))
    drift_position = segment_length - warmup  # index of the concept change in the curves
    settled = drift_position + window // 2
    return DriftRecoveryResult(
        drift_position=drift_position,
        window=window,
        decayed_curve=curves["decayed"],
        plain_curve=curves["plain"],
        decayed_post_drift_accuracy=float(curves["decayed"][settled:].mean()),
        plain_post_drift_accuracy=float(curves["plain"][settled:].mean()),
        decayed_stored_objects=stored["decayed"],
        plain_stored_objects=stored["plain"],
    )


def table1_rows(sizes: Optional[Dict[str, int]] = None) -> List[Dict[str, object]]:
    """The rows of Table 1: name, size, classes, features (paper vs generated).

    ``sizes`` optionally overrides the generated size per data set; the paper
    sizes are always reported alongside for comparison.
    """
    rows: List[dict] = []
    for name, spec in DATASET_SPECS.items():
        generated_size = (sizes or {}).get(name, spec.default_size())
        dataset = make_dataset(name, size=generated_size, random_state=0)
        row = dataset.summary_row()
        row["paper_size"] = spec.paper_size
        rows.append(row)
    return rows


def format_curve_table(
    result: BulkloadExperimentResult, nodes: Sequence[int] = (0, 10, 20, 40, 60, 80, 100)
) -> str:
    """Human-readable table of accuracy-after-n-nodes, like the paper's figures."""
    lines: List[str] = []
    header = "strategy/descent".ljust(24) + "".join(f"n={n}".rjust(9) for n in nodes) + "    mean"
    lines.append(header)
    for (strategy, descent), curve in sorted(result.curves.items()):
        mean_curve = curve.mean_curve
        cells = "".join(
            f"{mean_curve[min(n, len(mean_curve) - 1)]:9.3f}" for n in nodes
        )
        lines.append(f"{strategy} ({descent})".ljust(24) + cells + f"{mean_curve.mean():8.3f}")
    return "\n".join(lines)
