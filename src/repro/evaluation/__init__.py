"""Evaluation harness: metrics, cross-validation and the figure experiments."""

from .battery import (
    BUDGET_GRID,
    CLASSIFIER_KINDS,
    BatteryResult,
    ScenarioOutcome,
    format_win_loss_table,
    run_scenario_battery,
)
from .anytime_eval import (
    CrossValidatedCurve,
    anytime_accuracy_curve,
    build_bulkloaded_classifier,
    cross_validated_anytime_curve,
)
from .experiment import (
    DEFAULT_EXPERIMENT_CONFIG,
    BulkloadExperimentResult,
    DriftRecoveryResult,
    ExperimentConfig,
    StreamExperimentResult,
    format_curve_table,
    run_bulkload_experiment,
    run_drift_recovery_experiment,
    run_stream_experiment,
    table1_rows,
)
from .metrics import (
    accuracy,
    anytime_curve_summary,
    classification_trace_hash,
    confusion_matrix,
    fading_accuracy,
    latency_percentiles,
    sliding_window_accuracy,
)
from .request_trace import RequestRecord, RequestTrace

__all__ = [
    "BUDGET_GRID",
    "CLASSIFIER_KINDS",
    "BatteryResult",
    "ScenarioOutcome",
    "format_win_loss_table",
    "run_scenario_battery",
    "CrossValidatedCurve",
    "anytime_accuracy_curve",
    "build_bulkloaded_classifier",
    "cross_validated_anytime_curve",
    "DEFAULT_EXPERIMENT_CONFIG",
    "BulkloadExperimentResult",
    "DriftRecoveryResult",
    "run_drift_recovery_experiment",
    "ExperimentConfig",
    "StreamExperimentResult",
    "format_curve_table",
    "run_bulkload_experiment",
    "run_stream_experiment",
    "table1_rows",
    "accuracy",
    "anytime_curve_summary",
    "classification_trace_hash",
    "confusion_matrix",
    "fading_accuracy",
    "latency_percentiles",
    "sliding_window_accuracy",
    "RequestRecord",
    "RequestTrace",
]
