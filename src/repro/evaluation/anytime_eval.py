"""Anytime accuracy evaluation: the accuracy-after-each-node curves of §3.2.

"We performed 4-fold cross validation and show the classification accuracy
after each node averaged over the four folds."  The functions here compute
exactly those curves for any anytime classifier and any bulk-loading strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from ..bulkload.registry import make_bulk_loader
from ..core.classifier import BATCH_CHUNK_QUERIES, AnytimeBayesClassifier
from ..core.config import BayesTreeConfig
from ..data.splits import stratified_k_fold
from ..data.synthetic import Dataset
from ..stream.anytime import AnytimeClassifierLike

__all__ = [
    "anytime_accuracy_curve",
    "build_bulkloaded_classifier",
    "cross_validated_anytime_curve",
]


def anytime_accuracy_curve(
    classifier: AnytimeClassifierLike,
    features: np.ndarray,
    labels: Sequence[Hashable],
    max_nodes: int,
) -> np.ndarray:
    """Accuracy after 0..max_nodes node reads, averaged over the test objects.

    Works with any classifier exposing ``classify_anytime(x, max_nodes)``.
    Classifiers that additionally provide ``classify_anytime_batch`` (the
    multi-tree anytime Bayes classifier) are evaluated through the batch
    driver, which advances all test objects' frontiers together and shares
    vectorised node evaluations across them — the per-query results are
    identical by construction.  When a query exhausts all refinable nodes
    early, its last prediction is carried forward (the model cannot change any
    more), matching how the paper's curves flatten once the trees are fully
    read.
    """
    features = np.asarray(features, dtype=float)
    labels = list(labels)
    if features.shape[0] != len(labels):
        raise ValueError("features and labels must have the same length")
    if features.shape[0] == 0:
        raise ValueError("need at least one test object")
    if max_nodes < 0:
        raise ValueError("max_nodes must be non-negative")

    correct = np.zeros(max_nodes + 1, dtype=float)
    # Tally chunk by chunk and discard the records: the batch driver bounds
    # the live *frontiers* internally, but the per-step prediction records it
    # returns would still accumulate O(test-set size) if requested in one go.
    chunk_size = BATCH_CHUNK_QUERIES
    for start in range(0, features.shape[0], chunk_size):
        chunk = features[start : start + chunk_size]
        if hasattr(classifier, "classify_anytime_batch"):
            results = classifier.classify_anytime_batch(chunk, max_nodes=max_nodes)
        else:
            results = [classifier.classify_anytime(x, max_nodes=max_nodes) for x in chunk]
        for result, label in zip(results, labels[start : start + chunk_size]):
            for nodes in range(max_nodes + 1):
                correct[nodes] += result.prediction_after(nodes) == label
    return correct / features.shape[0]


def build_bulkloaded_classifier(
    train_features: np.ndarray,
    train_labels: Sequence[Hashable],
    strategy: str = "iterative",
    descent: str = "glo",
    config: Optional[BayesTreeConfig] = None,
    qbk_k: Optional[int] = None,
    random_state: Optional[int] = None,
) -> AnytimeBayesClassifier:
    """Train one Bayes tree per class with the given bulk-loading strategy."""
    config = config or BayesTreeConfig()
    train_features = np.asarray(train_features, dtype=float)
    train_labels = list(train_labels)
    classifier = AnytimeBayesClassifier(config=config, descent=descent, qbk_k=qbk_k)
    for label in sorted(set(train_labels), key=repr):
        mask = np.array([l == label for l in train_labels])
        loader_kwargs: Dict[str, object] = {}
        if strategy in ("em_topdown",):
            loader_kwargs["random_state"] = random_state
        loader = make_bulk_loader(strategy, config=config, **loader_kwargs)
        tree = loader.build_tree(train_features[mask], label=label)
        classifier.set_tree(label, tree)
    return classifier


@dataclass
class CrossValidatedCurve:
    """Per-fold and averaged anytime accuracy curves."""

    strategy: str
    descent: str
    fold_curves: List[np.ndarray] = field(default_factory=list)

    @property
    def mean_curve(self) -> np.ndarray:
        """Accuracy-vs-nodes curve averaged over the folds."""
        if not self.fold_curves:
            raise ValueError("no folds evaluated")
        return np.mean(np.vstack(self.fold_curves), axis=0)


def cross_validated_anytime_curve(
    dataset: Dataset,
    strategy: str = "iterative",
    descent: str = "glo",
    max_nodes: int = 100,
    n_folds: int = 4,
    config: Optional[BayesTreeConfig] = None,
    qbk_k: Optional[int] = None,
    random_state: Optional[int] = None,
    max_test_objects: Optional[int] = None,
) -> CrossValidatedCurve:
    """The paper's protocol: k-fold CV, accuracy after each node, averaged.

    ``max_test_objects`` optionally subsamples each fold's test set — the
    curves converge quickly with the synthetic data and the benchmark harness
    uses this to keep pure-Python runtimes reasonable (see DESIGN.md).
    """
    folds = stratified_k_fold(dataset.labels, n_folds=n_folds, random_state=random_state)
    result = CrossValidatedCurve(strategy=strategy, descent=descent)
    rng = np.random.default_rng(random_state)
    for fold in folds:
        classifier = build_bulkloaded_classifier(
            dataset.features[fold.train_indices],
            dataset.labels[fold.train_indices],
            strategy=strategy,
            descent=descent,
            config=config,
            qbk_k=qbk_k,
            random_state=random_state,
        )
        test_indices = fold.test_indices
        if max_test_objects is not None and len(test_indices) > max_test_objects:
            test_indices = rng.choice(test_indices, size=max_test_objects, replace=False)
        curve = anytime_accuracy_curve(
            classifier,
            dataset.features[test_indices],
            dataset.labels[test_indices],
            max_nodes=max_nodes,
        )
        result.fold_curves.append(curve)
    return result
