"""Sharded multi-process serving engine for snapshotted Bayes forests.

Architecture (see DESIGN.md, snapshots & serving):

* **Zero-copy shard workers.**  By default the engine places the snapshot's
  flat forest columns (:mod:`repro.core.flat`) into one POSIX shared-memory
  segment (:mod:`repro.serving.shared_mem`) and each shard worker *attaches*
  instead of loading: warm-start is an ``shm_open`` plus building thin
  :class:`~repro.core.flat.FlatForest` wrappers over borrowed pages —
  milliseconds instead of a full snapshot parse — and the forest occupies one
  physical copy regardless of worker count (O(1) memory in workers).  When a
  snapshot predates the flat columns the engine compiles them on the fly
  (the same hook keeps hot swaps working for legacy snapshots), and
  ``zero_copy=False`` restores the old per-worker object-graph loading.
* **LPT shard packing.**  Classes are packed onto shards with a
  longest-processing-time greedy over the manifest's per-class kernel counts
  — the heaviest unassigned class goes to the least-loaded shard — instead
  of dealing round-robin, so full-refinement rounds (cost is dominated by a
  shard's total kernel count) finish together instead of waiting for an
  unlucky stride.  ``plan_shard_assignment`` is the pure planning kernel.
* **Scatter/gather scoring.**  ``predict_batch`` broadcasts the query block
  to every shard, each worker scores its classes with one vectorised
  ``log_density_batch`` per tree, and the front-end reassembles the full
  score matrix and takes the same repr-sorted argmax as
  ``AnytimeBayesClassifier._predict_batch_full`` — predictions are
  bit-identical to the in-process classifier.
* **Budgeted (anytime) requests** cannot be class-sharded: the qbk rotation
  interleaves classes through one shared posterior.  They are sharded by
  *query* instead — each worker drives the full forest's (zero-copy, or
  lazily restored) ``classify_anytime_batch`` lockstep refinement over its
  slice of the batch (per-query results are independent of the slicing).
* **Micro-batching scheduler.**  ``submit`` enqueues single queries; a
  dispatcher thread groups them (up to ``max_batch``, waiting at most
  ``linger_s`` after the first request) and serves each group with one
  scatter/gather round — the serving-side analogue of the stream driver's
  micro-batched chunks.
* **Hot swap.**  ``swap_snapshot`` validates the new container and prepares
  its shared segment *outside* the serving guard, then waits out in-flight
  rounds (a round must never tear across two snapshots or gather against a
  stale label layout), re-attaches every shard and switches the front-end
  label layout together, and finally unlinks the old segment.
* **Observability.**  ``stats_snapshot`` reports, next to the serving
  counters, the shared segment (name, bytes), per-worker warm-start latency
  and shared-vs-private RSS (``/proc``-based), and the forest structure
  health summary computed from the flat interval columns — this is what the
  async front-end's ``/stats`` endpoint returns verbatim.
* **Fallback.**  ``workers=0`` (or a failed pool spin-up) serves synchronously
  from an in-process forest with the identical API and results.

Shared-memory lifecycle: the engine owns every segment it creates and is the
only unlinker — ``close()`` (or garbage collection of the engine's store)
disposes the current segment, a completed swap disposes the previous one,
and workers only ever close their own attachment.  A worker that crashes
cannot leak the segment: its attachment dies with the process and the name
still belongs to the engine.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import warnings
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.classifier import AnytimeBayesClassifier
from ..core.flat import FlatForest
from ..persist import load_forest, read_flat_columns, read_manifest
from .shared_mem import (
    SharedColumnStore,
    attach_columns,
    memory_profile,
    release_attachment,
)

__all__ = ["ServingEngine", "ServingStats", "plan_shard_assignment"]

# Per-query node budgets accepted by the serving surface: one scalar budget
# for the whole batch, or one budget per query.
BudgetSpec = Union[int, Sequence[int], np.ndarray]

# Process-global state of a shard worker (one worker process per shard, so a
# plain module dict is per-shard state).
_WORKER: dict = {}

# Once-per-process guard for the ServingEngine.submit() deprecation warning.
# A module-level flag rather than a `warnings` filter: filters are global
# mutable state tests and applications reconfigure freely (pytest resets
# them per test), which made the warning fire on every call.
_SUBMIT_DEPRECATION_WARNED = False


def plan_shard_assignment(counts: Sequence[float], n_shards: int) -> List[List[int]]:
    """Pack class indices onto shards, balancing total per-shard count (LPT).

    Longest-processing-time greedy: visit classes by descending ``counts``
    (ties by index, for determinism) and give each to the currently
    least-loaded shard.  Full-refinement scoring costs one vectorised pass
    over every kernel of a shard, so balancing kernel counts balances the
    critical path of a scatter/gather round — LPT is within 4/3 of the
    optimal makespan, versus unbounded skew for round-robin when class sizes
    differ.  Returns ``n_shards`` lists of class indices, each sorted
    ascending (so gathered score blocks stay in global column order).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    order = sorted(range(len(counts)), key=lambda index: (-counts[index], index))
    loads = [0.0] * n_shards
    bins: List[List[int]] = [[] for _ in range(n_shards)]
    for index in order:
        shard = min(range(n_shards), key=lambda s: (loads[s], s))
        bins[shard].append(index)
        loads[shard] += counts[index]
    for contents in bins:
        contents.sort()
    return bins


def _serving_labels(forest: AnytimeBayesClassifier) -> List[Hashable]:
    """Servable (non-empty) classes in the global repr-sorted column order."""
    return sorted(
        (label for label, tree in forest.trees.items() if tree.n_objects > 0), key=repr
    )


def _load_into_worker(spec: dict) -> None:
    """(Re)initialise this worker process from an engine-built spec.

    ``spec["mode"]`` selects the path:

    * ``"flat"`` — attach to the engine's shared segment and wrap zero-copy
      :class:`FlatForest` views: the full forest (for budgeted rounds) plus
      this shard's tree subset (for class-sharded scoring).  No snapshot
      I/O happens in the worker at all.
    * ``"object"`` — legacy per-worker ``load_forest`` of the snapshot,
      keeping only this shard's trees.

    Either way the previous attachment (if any) is released *after* the new
    state is in place, so a failed swap leaves the worker serving the old
    forest.  Records the warm-start latency for ``stats_snapshot``.
    """
    start = time.perf_counter()
    old_shm = _WORKER.get("shm")
    if spec["mode"] == "flat":
        shm, columns = attach_columns(spec["shm_name"], spec["layout"])
        full = FlatForest.from_columns(
            columns,
            labels=spec["labels"],
            descent=spec["descent"],
            qbk_k=spec["qbk_k"],
            dimension=spec["dimension"],
        )
        state = {
            "mode": "flat",
            "shm": shm,
            "snapshot_path": spec["snapshot_path"],
            "trees": {label: full.trees[label] for label in spec["assigned"]},
            "log_priors": dict(full.log_priors),
            "full": full,
        }
    else:
        forest = load_forest(spec["snapshot_path"])
        state = {
            "mode": "object",
            "shm": None,
            "snapshot_path": spec["snapshot_path"],
            # Shard trees in global column order; the other classes' trees are
            # dropped so per-worker memory scales with the shard.
            "trees": {label: forest.trees[label] for label in spec["assigned"]},
            "log_priors": dict(forest.log_priors),
            "full": None,
        }
    state["warm_start_ms"] = (time.perf_counter() - start) * 1e3
    _WORKER.clear()
    _WORKER.update(state)
    release_attachment(old_shm)


def _init_worker(spec: dict) -> None:
    _load_into_worker(spec)


def _ping() -> int:
    """Warm-up no-op: forces the initializer to run before traffic arrives."""
    return os.getpid()


def _worker_profile() -> dict:
    """This worker's warm-start latency and memory split, for ``/stats``.

    ``shared_kb`` counts pages mapped by more than one process — with
    zero-copy workers that is dominated by the one physical copy of the
    forest columns — while ``private_kb`` is the worker's own incremental
    footprint, the quantity that stays O(1) as workers are added.
    """
    return {
        "pid": os.getpid(),
        "mode": _WORKER.get("mode"),
        "warm_start_ms": _WORKER.get("warm_start_ms"),
        **memory_profile(),
    }


def _score_shard(queries: np.ndarray) -> np.ndarray:
    """Posterior scores ``log P(c) + log pdq_c(x)`` for this shard's classes.

    Returns an ``(m, k)`` block whose columns follow the shard's slice of the
    global repr-sorted label order; every tree is evaluated with one batched
    full-model call over its packed leaf arrays.
    """
    queries = np.asarray(queries, dtype=float)
    trees = _WORKER["trees"]
    log_priors = _WORKER["log_priors"]
    scores = np.empty((queries.shape[0], len(trees)))
    for column, (label, tree) in enumerate(trees.items()):
        scores[:, column] = log_priors[label] + tree.log_density_batch(queries)
    return scores


def _predict_budgeted(queries: np.ndarray, budgets: "BudgetSpec") -> List[Hashable]:
    """Anytime predictions for a query slice under per-query node budgets.

    Runs the full forest so the qbk rotation sees every class — zero-copy
    workers already hold it as shared-column views; object workers restore
    it lazily, once, then cache it.  Per-query results are identical to the
    in-process ``classify_anytime_batch``.
    """
    forest = _WORKER.get("full")
    if forest is None:
        forest = load_forest(_WORKER["snapshot_path"])
        _WORKER["full"] = forest
    results = forest.classify_anytime_batch(
        np.asarray(queries, dtype=float), max_nodes=budgets, record_history=False
    )
    return [result.final_prediction for result in results]


def _swap_snapshot(spec: dict) -> int:
    _load_into_worker(spec)
    return os.getpid()


@dataclass
class ServingStats:
    """Lightweight serving counters and round timings.

    Attributes
    ----------
    requests:
        Total queries accepted by :meth:`ServingEngine.predict_batch` (one
        per query row, not per call).
    batches:
        Number of scatter/gather serving rounds executed.
    swaps:
        Number of completed snapshot hot swaps.
    last_round_s / total_round_s:
        Wall-clock duration of the most recent serving round and the running
        sum over all rounds — the raw material for utilisation estimates in
        the async front-end (:mod:`repro.serving.frontend`).
    """

    requests: int = 0
    batches: int = 0
    swaps: int = 0
    last_round_s: float = 0.0
    total_round_s: float = 0.0


class ServingEngine:
    """Serve a forest snapshot from sharded worker processes.

    Parameters
    ----------
    snapshot_path:
        A container written by :func:`repro.persist.save_forest`.
    workers:
        Number of shard processes.  ``0`` forces the synchronous in-process
        fallback; ``None`` uses ``min(cpu_count, n_classes)``.  More workers
        than servable classes are clamped (an empty shard serves nothing).
    max_batch / linger_s:
        Micro-batching knobs of the request scheduler: a dispatch round
        closes when ``max_batch`` requests are pending or ``linger_s`` has
        passed since the round's first request.
    mp_context:
        Optional multiprocessing start method (``"fork"``/``"spawn"``).
    zero_copy:
        ``True`` serves the flat-forest columns from one shared-memory
        segment that every worker attaches to (compiling the columns
        engine-side when the snapshot predates them); ``False`` restores the
        object graph per worker (legacy).  Default ``None`` means ``True`` —
        the zero-copy path is trace-identical and strictly cheaper; the knob
        exists for comparison benchmarks and as an escape hatch.
    """

    def __init__(
        self,
        snapshot_path: "str | Path",
        workers: Optional[int] = None,
        max_batch: int = 256,
        linger_s: float = 0.002,
        mp_context: Optional[str] = None,
        zero_copy: Optional[bool] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if linger_s < 0:
            raise ValueError("linger_s must be non-negative")
        manifest = read_manifest(snapshot_path)
        self._snapshot_path = str(snapshot_path)
        self.dimension = int(manifest["dimension"])
        self._labels = self._servable_labels(manifest)
        if not self._labels:
            raise ValueError("snapshot holds no servable (non-empty) classes")
        if workers is None:
            workers = min(os.cpu_count() or 1, len(self._labels))
        workers = int(workers)
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.zero_copy = True if zero_copy is None else bool(zero_copy)
        self.n_shards = min(workers, len(self._labels))
        self.max_batch = int(max_batch)
        self.linger_s = float(linger_s)
        self.stats = ServingStats()
        self._stats_lock = threading.Lock()
        # EWMA of the observed per-node-read round cost of *budgeted* rounds
        # (seconds per lockstep step); None until the first budgeted round.
        # The async front-end reads it to translate idle time into node
        # budgets, and deadline-aware rounds use it to clamp budgets.
        self._node_cost_ewma: Optional[float] = None
        # Readers-writer guard between serving rounds and hot swaps: many
        # rounds may scatter concurrently, but a swap waits for in-flight
        # rounds and blocks new ones — otherwise a round could tear across
        # the old and new snapshot (half its shard tasks enqueued before the
        # swap tasks, half after) or read a label layout that no longer
        # matches the gathered score blocks.
        self._swap_cond = threading.Condition()
        self._active_rounds = 0
        self._swapping = False
        self._local_forest: Optional[Union[AnytimeBayesClassifier, FlatForest]] = None
        self._pools: Optional[List[ProcessPoolExecutor]] = None
        self._store: Optional[SharedColumnStore] = None
        self._structure_stats: Optional[dict] = None
        self._assignment = self._plan_assignment(manifest, self._labels, self.n_shards)
        if self.n_shards > 0:
            spec_base: Optional[dict] = None
            if self.zero_copy:
                self._store, spec_base, self._structure_stats = self._build_store(
                    self._snapshot_path, manifest
                )
            self._spin_up(mp_context, spec_base)
            if self.n_shards == 0 and self._store is not None:
                # Spin-up fell back to in-process serving; nothing attaches.
                self._store.dispose()
                self._store = None
        if self.zero_copy and self._structure_stats is None:
            self._refresh_local_structure()
        # Micro-batcher state (dispatcher thread started on first submit).
        self._pending: deque = deque()
        self._cond = threading.Condition()
        self._dispatcher: Optional[threading.Thread] = None
        self._closed = False

    @staticmethod
    def _servable_labels(manifest: dict) -> List[Hashable]:
        alive = [
            label
            for label, count in zip(manifest["classes"], manifest["class_counts"])
            if count > 0
        ]
        return sorted(alive, key=repr)

    @staticmethod
    def _plan_assignment(
        manifest: dict, labels: List[Hashable], n_shards: int
    ) -> List[np.ndarray]:
        """Per-shard global column index arrays from LPT kernel-count packing."""
        if n_shards < 1:
            return []
        counts_by_label = {
            label: count
            for label, count in zip(manifest["classes"], manifest["class_counts"])
        }
        bins = plan_shard_assignment(
            [counts_by_label[label] for label in labels], n_shards
        )
        return [np.asarray(contents, dtype=np.intp) for contents in bins]

    def _build_store(
        self, path: str, manifest: dict
    ) -> Tuple[SharedColumnStore, dict, dict]:
        """Place the snapshot's flat columns in shared memory.

        Returns ``(store, worker spec base, structure stats)``.  Prefers the
        snapshot's own memory-mappable flat members; a snapshot that predates
        them (``include_flat=False`` or format v1) is restored once
        engine-side and compiled — the compile-on-swap hook that keeps
        zero-copy serving working for any loadable snapshot.  The structure
        health summary is computed from the columns while they are at hand.
        """
        if manifest.get("has_flat"):
            columns = read_flat_columns(path, mmap=True)
        else:
            columns = FlatForest.from_classifier(load_forest(path)).to_columns()
        flat = FlatForest.from_columns(
            columns,
            labels=manifest["classes"],
            descent=manifest["descent"],
            qbk_k=manifest["qbk_k"],
            dimension=int(manifest["dimension"]),
        )
        structure = flat.structure_stats()
        store = SharedColumnStore(columns)
        spec = {
            "mode": "flat",
            "snapshot_path": path,
            "shm_name": store.name,
            "layout": store.layout,
            "labels": list(manifest["classes"]),
            "descent": manifest["descent"],
            "qbk_k": manifest["qbk_k"],
            "dimension": int(manifest["dimension"]),
        }
        return store, spec, structure

    def _shard_spec(self, spec_base: Optional[dict], shard: int) -> dict:
        assigned = [self._labels[index] for index in self._assignment[shard]]
        if spec_base is None:
            return {
                "mode": "object",
                "snapshot_path": self._snapshot_path,
                "assigned": assigned,
            }
        return {**spec_base, "assigned": assigned}

    def _refresh_local_structure(self) -> None:
        """Structure stats for fallback mode, from the local flat forest."""
        try:
            local = self._local()
            if isinstance(local, FlatForest):
                self._structure_stats = local.structure_stats()
        except Exception:  # pragma: no cover - diagnostics must not break serving
            self._structure_stats = None

    def _spin_up(self, mp_context: Optional[str], spec_base: Optional[dict]) -> None:
        context = multiprocessing.get_context(mp_context) if mp_context else None
        pools: List[ProcessPoolExecutor] = []
        try:
            for shard in range(self.n_shards):
                pools.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=context,
                        initializer=_init_worker,
                        initargs=(self._shard_spec(spec_base, shard),),
                    )
                )
            # Warm every worker now: the snapshot is restored before the first
            # request instead of on its critical path.  Submit-all first so
            # the per-worker restores run concurrently instead of start-up
            # paying n_shards serialized loads.
            for future in [pool.submit(_ping) for pool in pools]:
                future.result()
        except Exception as error:  # pragma: no cover - environment dependent
            for pool in pools:
                pool.shutdown(wait=False, cancel_futures=True)
            warnings.warn(
                f"serving worker pools unavailable ({error!r}); "
                "falling back to synchronous in-process serving",
                RuntimeWarning,
                stacklevel=3,
            )
            self.n_shards = 0
            self._pools = None
            return
        self._pools = pools

    # -- lifecycle ----------------------------------------------------------------------------
    def close(self) -> None:
        """Stop the dispatcher, shut down the shards, unlink the shared segment."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None
        if self._store is not None:
            # Workers are gone; the engine is the owner and sole unlinker.
            self._store.dispose()
            self._store = None

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def is_multiprocess(self) -> bool:
        """True when requests are served by shard processes (not the fallback)."""
        return self._pools is not None

    @property
    def labels(self) -> List[Hashable]:
        """Servable class labels in global (repr-sorted) column order."""
        return list(self._labels)

    @property
    def snapshot_path(self) -> str:
        """Path of the snapshot currently being served (updated by swaps)."""
        return self._snapshot_path

    @property
    def shard_assignment(self) -> List[List[Hashable]]:
        """Per-shard servable labels from the LPT packing (global column order)."""
        return [
            [self._labels[index] for index in indices] for indices in self._assignment
        ]

    def node_cost_estimate(self) -> Optional[float]:
        """EWMA estimate of seconds per lockstep node-read round, or ``None``.

        Calibrated from observed *budgeted* serving rounds (a round of
        per-query budgets ``b`` executes ``max(b)`` lockstep steps); full
        refinement rounds do not update it.  ``None`` until the first
        budgeted round has been served.
        """
        with self._stats_lock:
            return self._node_cost_ewma

    def worker_profiles(self) -> List[dict]:
        """Live per-worker warm-start latency and RSS split (one dict per shard).

        Round-trips a profiling task through every shard pool; empty in
        fallback mode.  ``warm_start_ms`` measures the worker's most recent
        (re)initialisation — a shared-memory attach for zero-copy workers, a
        full snapshot restore for object workers — and the memory fields
        split the worker's RSS into shared and private pages.
        """
        if self._pools is None:
            return []
        try:
            futures = [pool.submit(_worker_profile) for pool in self._pools]
            return [future.result() for future in futures]
        except Exception:  # pragma: no cover - a broken pool is reported empty
            return []

    def stats_snapshot(self) -> dict:
        """One consistent, JSON-able view of the engine state and counters.

        Returns a dict with the :class:`ServingStats` counters plus the
        deployment facts a monitoring endpoint wants: snapshot path, shard
        count and per-shard class packing, multiprocess flag, the zero-copy
        deployment (shared segment name and size, per-worker warm-start
        latency and shared/private RSS) and the forest structure-health
        summary computed from the flat interval columns.  Safe to call
        concurrently with serving.  The document carries a
        ``schema_version`` key (currently ``3``) stamping its shape, shared
        with :meth:`repro.serving.ModelRegistry.stats_snapshot`.
        """
        with self._stats_lock:
            counters = {
                "schema_version": 3,
                "requests": self.stats.requests,
                "batches": self.stats.batches,
                "swaps": self.stats.swaps,
                "last_round_s": self.stats.last_round_s,
                "total_round_s": self.stats.total_round_s,
                "node_cost_s": self._node_cost_ewma,
            }
        workers = self.worker_profiles()
        warm_starts = [
            profile["warm_start_ms"]
            for profile in workers
            if profile.get("warm_start_ms") is not None
        ]
        counters.update(
            {
                "snapshot_path": self._snapshot_path,
                "n_shards": self.n_shards,
                "multiprocess": self.is_multiprocess,
                "n_classes": len(self._labels),
                "max_batch": self.max_batch,
                "linger_s": self.linger_s,
                "mode": "zero_copy" if self.zero_copy else "object",
                "shm_name": self._store.name if self._store is not None else None,
                "shm_bytes": self._store.size if self._store is not None else None,
                "shard_classes": [
                    [str(label) for label in shard] for shard in self.shard_assignment
                ],
                "warm_start_ms": max(warm_starts) if warm_starts else None,
                "workers": workers,
                "structure": self._structure_stats,
            }
        )
        return counters

    def _local(self) -> Union[AnytimeBayesClassifier, FlatForest]:
        if self._local_forest is None:
            if self.zero_copy:
                manifest = read_manifest(self._snapshot_path)
                if manifest.get("has_flat"):
                    self._local_forest = FlatForest.from_columns(
                        read_flat_columns(self._snapshot_path, mmap=True),
                        labels=manifest["classes"],
                        descent=manifest["descent"],
                        qbk_k=manifest["qbk_k"],
                        dimension=int(manifest["dimension"]),
                    )
                else:
                    self._local_forest = FlatForest.from_classifier(
                        load_forest(self._snapshot_path)
                    )
            else:
                self._local_forest = load_forest(self._snapshot_path)
        return self._local_forest

    # -- batched serving ----------------------------------------------------------------------
    def predict_batch(
        self, queries: np.ndarray, node_budget: "Optional[BudgetSpec]" = None, deadline_s: Optional[float] = None
    ) -> List[Hashable]:
        """Predict labels for a query block, sharded across the workers.

        Parameters
        ----------
        queries:
            ``(m, dimension)`` feature block.
        node_budget:
            ``None`` runs the class-sharded full-refinement scoring path; an
            integer (or per-query sequence) runs the query-sharded anytime
            path.  Either way the predictions are bit-identical to
            ``AnytimeBayesClassifier.predict_batch`` on the restored forest.
        deadline_s:
            Optional time allowance (seconds) for a *budgeted* round.  When
            the engine has a node-cost estimate from earlier budgeted rounds,
            the per-query budgets are clamped so the round's lockstep
            refinement is expected to finish within the allowance (never
            below one node read).  Ignored for full-refinement rounds and
            before the first cost observation — the clamp is an adaptive
            policy, so deadline-aware rounds trade the fixed-budget trace
            identity for bounded latency.

        Returns
        -------
        list
            One predicted label per query row, in query order.

        Raises
        ------
        ValueError
            If ``queries`` is not an ``(m, dimension)`` array or a per-query
            ``node_budget`` sequence does not match the query count.
        """
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self.dimension:
            raise ValueError(f"queries must be an (m, {self.dimension}) array")
        with self._stats_lock:
            self.stats.requests += queries.shape[0]
            self.stats.batches += 1
        if queries.shape[0] == 0:
            return []
        if node_budget is not None and deadline_s is not None:
            node_budget = self._deadline_clamped_budgets(queries.shape[0], node_budget, deadline_s)
        with self._swap_cond:
            while self._swapping:
                self._swap_cond.wait()
            self._active_rounds += 1
        start = time.perf_counter()
        try:
            if self._pools is None:
                predictions = self._local().predict_batch(queries, node_budget=node_budget)
            elif node_budget is None:
                predictions = self._scatter_full(queries)
            else:
                predictions = self._scatter_budgeted(queries, node_budget)
            # Only completed rounds feed the timing stats — a round that
            # raised (bad budgets, crashed worker) would otherwise pollute
            # the node-cost EWMA with near-zero samples and unbound every
            # later deadline clamp.
            self._observe_round(time.perf_counter() - start, node_budget)
            return predictions
        finally:
            with self._swap_cond:
                self._active_rounds -= 1
                self._swap_cond.notify_all()

    def _deadline_clamped_budgets(
        self, count: int, node_budget: "BudgetSpec", deadline_s: float
    ) -> np.ndarray:
        """Clamp per-query budgets so the round should meet ``deadline_s``."""
        budgets = np.asarray(node_budget)
        if budgets.ndim == 0:
            budgets = np.full(count, int(node_budget))
        elif budgets.shape != (count,):
            # Malformed per-query budgets: let the serving path raise its
            # canonical ValueError instead of a broadcast error here.
            return budgets
        cost = self.node_cost_estimate()
        if cost is None or cost <= 0:
            return budgets
        affordable = max(1, int(max(deadline_s, 0.0) / cost))
        return np.minimum(budgets, affordable)

    def _observe_round(self, elapsed: float, node_budget: "Optional[BudgetSpec]") -> None:
        """Record a round's wall-clock; budgeted rounds refresh the node cost."""
        with self._stats_lock:
            self.stats.last_round_s = elapsed
            self.stats.total_round_s += elapsed
            if node_budget is None:
                return
            steps = int(np.max(node_budget)) if np.ndim(node_budget) else int(node_budget)
            if steps < 1:
                return
            cost = elapsed / steps
            if self._node_cost_ewma is None:
                self._node_cost_ewma = cost
            else:
                self._node_cost_ewma += 0.3 * (cost - self._node_cost_ewma)

    def _scatter_full(self, queries: np.ndarray) -> List[Hashable]:
        pools = self._pools
        if pools is None:
            raise RuntimeError("serving engine has no worker pools")
        futures = [pool.submit(_score_shard, queries) for pool in pools]
        blocks = [future.result() for future in futures]
        scores = np.empty((queries.shape[0], len(self._labels)))
        for indices, block in zip(self._assignment, blocks):
            # Shard score blocks follow each shard's sorted index list; the
            # LPT packing is not a stride, so gather through the explicit
            # per-shard column indices into the global repr-sorted matrix.
            scores[:, indices] = block
        best = np.argmax(scores, axis=1)
        return [self._labels[index] for index in best]

    def _scatter_budgeted(self, queries: np.ndarray, node_budget: "BudgetSpec") -> List[Hashable]:
        budgets = np.asarray(node_budget)
        if budgets.ndim == 0:
            budgets = np.full(queries.shape[0], int(node_budget))
        elif budgets.shape != (queries.shape[0],):
            raise ValueError("per-query node_budget must have one budget per query")
        pools = self._pools
        if pools is None:
            raise RuntimeError("serving engine has no worker pools")
        shards = min(self.n_shards, queries.shape[0])
        query_slices = np.array_split(queries, shards)
        budget_slices = np.array_split(budgets, shards)
        futures = [
            pools[shard].submit(_predict_budgeted, query_slices[shard], budget_slices[shard])
            for shard in range(shards)
        ]
        predictions: List[Hashable] = []
        for future in futures:
            predictions.extend(future.result())
        return predictions

    # -- micro-batching request scheduler ----------------------------------------------------
    def classify(
        self, features: Sequence[float] | np.ndarray, node_budget: "Optional[BudgetSpec]" = None
    ) -> Future:
        """Enqueue one query; returns a future resolving to its predicted label.

        Requests are grouped by the dispatcher into micro-batches served with
        one scatter/gather round each; full-refinement and budgeted requests
        are batched separately (they take different sharding paths).  Raises
        :class:`ValueError` when ``features`` is not a ``(dimension,)``
        vector and :class:`RuntimeError` when the engine is closed.  For
        asyncio callers prefer
        :meth:`repro.serving.AsyncServingClient.classify`, which adds
        deadlines, backpressure and adaptive budgets on top of the same
        engine rounds.  (Known as ``submit`` before the v1 API redesign;
        the old name survives as a deprecated alias.)
        """
        features = np.asarray(features, dtype=float)
        if features.shape != (self.dimension,):
            raise ValueError(f"features must have shape ({self.dimension},)")
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("serving engine is closed")
            self._pending.append((features, node_budget, future))
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, name="serving-dispatcher", daemon=True
                )
                self._dispatcher.start()
            self._cond.notify_all()
        return future

    def submit(
        self, features: Sequence[float] | np.ndarray, node_budget: "Optional[BudgetSpec]" = None
    ) -> Future:
        """Deprecated alias of :meth:`classify` (pre-v1 name; warns, still works).

        The v1 API redesign settled on ``classify`` across the engine, the
        async client and the HTTP surface; ``submit`` collided with
        :meth:`concurrent.futures.Executor.submit` and said nothing about
        *what* is being done.  Existing callers keep working — they just see
        a :class:`DeprecationWarning` on the first call in the process (a
        module-level guard, not ``warnings`` filtering: a migration loop
        calling ``submit`` per request must not pay a warning — or flood the
        log — per call).
        """
        global _SUBMIT_DEPRECATION_WARNED
        if not _SUBMIT_DEPRECATION_WARNED:
            _SUBMIT_DEPRECATION_WARNED = True
            warnings.warn(
                "ServingEngine.submit() is deprecated; use ServingEngine.classify()",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.classify(features, node_budget=node_budget)

    def flush(self) -> None:
        """Block until every request submitted so far has been dispatched."""
        while True:
            with self._cond:
                if not self._pending:
                    return
            # The dispatcher drains in linger-bounded rounds; just yield.
            time.sleep(self.linger_s or 0.0005)

    def _dispatch_loop(self) -> None:
        while True:
            batch: List[Tuple[np.ndarray, object, Future]] = []
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed and not self._pending:
                    return
                if self.linger_s > 0:
                    # Linger: give the round a chance to fill up to max_batch.
                    deadline = time.monotonic() + self.linger_s
                    while len(self._pending) < self.max_batch and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(timeout=remaining)
                while self._pending and len(batch) < self.max_batch:
                    batch.append(self._pending.popleft())
            if batch:
                self._serve_group(batch)

    def _serve_group(self, batch: List[Tuple[np.ndarray, object, Future]]) -> None:
        # Full-refinement and budgeted requests take different sharding paths;
        # budgeted ones still share a single lockstep batch via per-query budgets.
        unbudgeted = [(features, future) for features, budget, future in batch if budget is None]
        budgeted = [
            (features, budget, future) for features, budget, future in batch if budget is not None
        ]
        for group, node_budget in (
            (unbudgeted, None),
            (budgeted, [int(budget) for _, budget, _ in budgeted] if budgeted else None),
        ):
            if not group:
                continue
            features = np.stack([item[0] for item in group])
            futures = [item[-1] for item in group]
            try:
                predictions = self.predict_batch(features, node_budget=node_budget)
            except Exception as error:  # propagate to every waiter in the round
                for future in futures:
                    future.set_exception(error)
                continue
            for future, prediction in zip(futures, predictions):
                future.set_result(prediction)

    # -- hot swap ----------------------------------------------------------------------------
    def swap_snapshot(self, snapshot_path: "str | Path") -> None:
        """Atomically switch serving to a new snapshot (graceful hot swap).

        The container is validated and — in zero-copy mode — its flat
        columns are compiled and placed in a *new* shared segment first,
        entirely outside the serving guard, so the expensive part of a swap
        steals no serving time.  The swap then takes the writer side of the
        guard: in-flight rounds finish on the old forest, new rounds wait,
        every shard re-attaches (releasing its old attachment) and the
        front-end label layout and shard packing switch together — no round
        ever mixes score blocks from two snapshots.  The old segment is
        unlinked only after every worker runs on the new one.  Typical flow:
        a background trainer keeps a live forest learning via
        ``partial_fit``, periodically ``save_forest``s it and swaps the
        engine over.
        """
        manifest = read_manifest(snapshot_path)
        if int(manifest["dimension"]) != self.dimension:
            raise ValueError(
                f"snapshot dimension {manifest['dimension']} does not match "
                f"the engine dimension {self.dimension}"
            )
        labels = self._servable_labels(manifest)
        if not labels:
            raise ValueError("snapshot holds no servable (non-empty) classes")
        path = str(snapshot_path)
        assignment = self._plan_assignment(manifest, labels, self.n_shards)
        new_store: Optional[SharedColumnStore] = None
        spec_base: Optional[dict] = None
        new_structure: Optional[dict] = None
        if self._pools is not None and self.zero_copy:
            # Prepare the new segment before touching the serving guard: the
            # compile / mmap / copy-in work happens while rounds keep flowing.
            new_store, spec_base, new_structure = self._build_store(path, manifest)
        # Writer side of the swap guard: wait out in-flight serving rounds
        # (they complete on the old forest), keep new rounds parked until
        # every shard and the label layout have switched together.
        with self._swap_cond:
            while self._swapping:
                self._swap_cond.wait()
            self._swapping = True
            while self._active_rounds > 0:
                self._swap_cond.wait()
        try:
            old_labels, old_assignment = self._labels, self._assignment
            self._labels, self._assignment = labels, assignment
            if self._pools is not None:
                try:
                    futures = [
                        pool.submit(_swap_snapshot, self._shard_spec(spec_base, shard))
                        for shard, pool in enumerate(self._pools)
                    ]
                    for future in futures:
                        future.result()
                except Exception:
                    # Workers still serve the old forest (their re-init is
                    # atomic); roll the front-end layout back and drop the
                    # unused segment.
                    self._labels, self._assignment = old_labels, old_assignment
                    if new_store is not None:
                        new_store.dispose()
                    raise
                if new_store is not None:
                    old_store, self._store = self._store, new_store
                    self._structure_stats = new_structure
                    if old_store is not None:
                        old_store.dispose()
            self._snapshot_path = path
            self._local_forest = None
            if self._pools is None and self.zero_copy:
                self._refresh_local_structure()
            with self._stats_lock:
                self.stats.swaps += 1
        finally:
            with self._swap_cond:
                self._swapping = False
                self._swap_cond.notify_all()
