"""One serving error taxonomy: stable codes shared by Python and HTTP callers.

Before the v1 API redesign the serving stack grew three parallel error
vocabularies: the async front-end raised :class:`QueueFullError` /
:class:`DeadlineExceededError` / :class:`FrontendClosedError`, the snapshot
layer raised :class:`~repro.persist.SnapshotError`, and the HTTP shim mapped
each ad hoc onto ``{"error": "<message>"}`` bodies whose shape a client could
not rely on.  This module is the single point of truth that replaces that:

* :class:`ServingError` — the base of every serving-side request failure.
  Each subclass carries a **stable string code** (``error.code``), the HTTP
  status it maps to (``error.http_status``) and, for retryable conditions, a
  ``retry_after_ms`` hint.  The codes are API: clients switch on them, so
  they never change meaning across releases (new codes may be added).
* :func:`error_envelope` — maps *any* exception (``ServingError`` subclasses,
  :class:`~repro.persist.SnapshotError`, bad-request ``ValueError`` families,
  unexpected bugs) onto ``(http_status, envelope_dict)`` where the envelope
  is the one wire shape used by every endpoint of
  :class:`~repro.serving.HttpFrontend`::

      {"error": {"code": "queue_full", "message": "...", "retry_after_ms": 50}}

  ``retry_after_ms`` is present exactly when the condition is retryable
  (every 429 and 503 carries it); other errors omit the key rather than
  null it.

The legacy exception names (:class:`QueueFullError` and friends) keep their
historical inheritance via :class:`FrontendError`, so existing ``except``
clauses keep working — the redesign adds the code/status vocabulary on top
instead of breaking callers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..persist import SnapshotError

__all__ = [
    "ERROR_CODES",
    "DeadlineExceededError",
    "FrontendClosedError",
    "FrontendError",
    "QueueFullError",
    "QuotaExceededError",
    "RegistryCapacityError",
    "RegistryClosedError",
    "ServingError",
    "TenantNotFoundError",
    "error_envelope",
]


class ServingError(RuntimeError):
    """Base class of serving-side request failures with a stable wire code.

    Attributes
    ----------
    code:
        Stable machine-readable error code (API: never repurposed).
    http_status:
        The HTTP status the error maps to in the v1 envelope.
    retry_after_ms:
        Suggested client backoff in milliseconds for retryable conditions
        (``None`` when retrying cannot help).  Overridable per instance.
    """

    code: str = "internal"
    http_status: int = 500
    retry_after_ms: Optional[int] = None

    def __init__(self, message: str, retry_after_ms: Optional[int] = None) -> None:
        super().__init__(message)
        if retry_after_ms is not None:
            self.retry_after_ms = int(retry_after_ms)


class FrontendError(ServingError):
    """Base class of the async front-end's request failures (legacy name)."""


class QueueFullError(FrontendError):
    """Raised when the bounded request queue is full (backpressure, HTTP 503)."""

    code = "queue_full"
    http_status = 503
    retry_after_ms = 50


class QuotaExceededError(FrontendError):
    """Raised when a tenant's ``requests_per_sec`` quota rejects a request (HTTP 429).

    Distinct from :class:`QueueFullError`: a 503 means the *system* is out
    of capacity right now (any tenant may retry shortly), a 429 means *this
    tenant* exceeded its configured offered-rate budget — retrying before
    the quota refills cannot help, which is why the instance-level
    ``retry_after_ms`` is computed from the tenant's token-bucket refill
    rate at raise time.
    """

    code = "quota_exceeded"
    http_status = 429
    retry_after_ms = 1000


class DeadlineExceededError(FrontendError):
    """Raised when a request's deadline passed before its result (HTTP 504)."""

    code = "deadline_exceeded"
    http_status = 504


class FrontendClosedError(FrontendError):
    """Raised for requests submitted to (or abandoned by) a closed client."""

    code = "shutting_down"
    http_status = 503
    retry_after_ms = 1000


class RegistryClosedError(FrontendClosedError):
    """Raised for requests reaching a closed :class:`~repro.serving.ModelRegistry`."""


class TenantNotFoundError(ServingError):
    """Raised for a tenant the registry neither holds nor can cold-start."""

    code = "tenant_not_found"
    http_status = 404


class RegistryCapacityError(ServingError):
    """Raised when a tenant cannot be made resident within the cache bounds."""

    code = "registry_full"
    http_status = 503
    retry_after_ms = 250


#: Every stable error code with the HTTP status it maps to — the documented
#: v1 wire vocabulary (``docs/http_api.md``).  ``bad_snapshot``,
#: ``bad_request``, ``not_found`` and ``internal`` have no dedicated
#: exception class; :func:`error_envelope` assigns them by exception family.
ERROR_CODES: Dict[str, int] = {
    "queue_full": 503,
    "quota_exceeded": 429,
    "deadline_exceeded": 504,
    "shutting_down": 503,
    "tenant_not_found": 404,
    "registry_full": 503,
    "bad_snapshot": 400,
    "bad_request": 400,
    "not_found": 404,
    "internal": 500,
}


def error_envelope(
    error: BaseException,
    code: Optional[str] = None,
    status: Optional[int] = None,
) -> Tuple[int, dict]:
    """Map an exception onto ``(http_status, {"error": {...}})``.

    ``ServingError`` subclasses carry their own code/status/retry hint;
    :class:`~repro.persist.SnapshotError` maps to ``bad_snapshot`` (the
    request named an unusable container), the bad-request exception family
    (``ValueError``/``KeyError``/``TypeError``) to ``bad_request``, and
    anything else to a 500 ``internal`` (message prefixed with the exception
    type so server bugs stay diagnosable from the wire).  ``code``/``status``
    override the inferred pair — the HTTP router uses this for pure routing
    errors (``not_found``) that have no exception class of their own.
    """
    message = str(error) or type(error).__name__
    retry_after_ms: Optional[int] = None
    if code is None:
        if isinstance(error, ServingError):
            code, status = error.code, error.http_status
            retry_after_ms = error.retry_after_ms
        elif isinstance(error, SnapshotError):
            code, status = "bad_snapshot", 400
        elif isinstance(error, (ValueError, KeyError, TypeError)):
            code, status = "bad_request", 400
        else:
            code, status = "internal", 500
            message = f"{type(error).__name__}: {message}"
    resolved_status = status if status is not None else ERROR_CODES.get(code, 500)
    body: dict = {"code": code, "message": message}
    if retry_after_ms is None and resolved_status in (429, 503):
        # 429 and 503 are by definition retryable; never ship one without a hint.
        retry_after_ms = 100
    if retry_after_ms is not None:
        body["retry_after_ms"] = retry_after_ms
    return resolved_status, {"error": body}
