"""Multi-process sharded serving of snapshotted Bayes forests.

:class:`ServingEngine` restores a :mod:`repro.persist` snapshot into a pool
of worker processes — each worker warm-loads the snapshot at startup and
serves a shard of the per-class trees — and exposes batched classification
with exactly the predictions of the in-process classifier.  A micro-batching
request scheduler, graceful snapshot hot-swap and a synchronous single-process
fallback make it the compute building block for production-style traffic.

On top of it, :mod:`repro.serving.frontend` adds the asyncio request layer:
:class:`AsyncServingClient` coalesces concurrent ``await classify(...)``
calls into engine rounds with bounded-queue backpressure, per-request
deadlines and load-adaptive node budgets (:data:`ADAPTIVE`), and
:class:`HttpFrontend` exposes the whole stack over a minimal stdlib HTTP
endpoint for external load generators.
"""

from .engine import ServingEngine, ServingStats
from .frontend import (
    ADAPTIVE,
    AdaptiveBudgetPolicy,
    ArrivalRateEstimator,
    AsyncServingClient,
    ClassifyResult,
    DeadlineExceededError,
    FrontendClosedError,
    FrontendError,
    FrontendStats,
    HttpFrontend,
    QueueFullError,
    drive_open_loop,
)

__all__ = [
    "ServingEngine",
    "ServingStats",
    "ADAPTIVE",
    "AdaptiveBudgetPolicy",
    "ArrivalRateEstimator",
    "AsyncServingClient",
    "ClassifyResult",
    "DeadlineExceededError",
    "FrontendClosedError",
    "FrontendError",
    "FrontendStats",
    "HttpFrontend",
    "QueueFullError",
    "drive_open_loop",
]
