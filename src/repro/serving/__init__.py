"""Multi-process sharded serving of snapshotted Bayes forests.

:class:`ServingEngine` restores a :mod:`repro.persist` snapshot into a pool
of worker processes — each worker warm-loads the snapshot at startup and
serves a shard of the per-class trees — and exposes batched classification
with exactly the predictions of the in-process classifier.  A micro-batching
request scheduler, graceful snapshot hot-swap and a synchronous single-process
fallback make it the front-end building block for production-style traffic.
"""

from .engine import ServingEngine, ServingStats

__all__ = ["ServingEngine", "ServingStats"]
