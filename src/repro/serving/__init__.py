"""Multi-process sharded serving of snapshotted Bayes forests.

:class:`ServingEngine` serves a :mod:`repro.persist` snapshot from a pool of
worker processes and exposes batched classification with exactly the
predictions of the in-process classifier.  By default the snapshot's flat
forest columns (:mod:`repro.core.flat`) live in one POSIX shared-memory
segment (:mod:`repro.serving.shared_mem`) that every shard worker attaches
to zero-copy — warm-start in milliseconds and one physical forest copy
regardless of worker count — with classes packed onto shards by an LPT
greedy over per-class kernel counts (:func:`plan_shard_assignment`).  A
micro-batching request scheduler, graceful snapshot hot-swap (segments are
prepared outside the serving guard and unlinked only after every worker has
re-attached) and a synchronous single-process fallback make it the compute
building block for production-style traffic.

On top of it, :mod:`repro.serving.frontend` adds the asyncio request layer:
:class:`AsyncServingClient` coalesces concurrent ``await classify(...)``
calls into engine rounds with bounded-queue backpressure, per-request
deadlines and load-adaptive node budgets (:data:`ADAPTIVE`), and
:class:`HttpFrontend` exposes the whole stack over a minimal stdlib HTTP
endpoint for external load generators — including ``/stats``, which reports
the engine's worker warm-start latency, shared/private RSS split and forest
structure health.

Multi-tenant serving (:mod:`repro.serving.registry`) scales the same stack
to many independent forests: :class:`ModelRegistry` keeps an LRU cache of
per-tenant flat-snapshot segments (bounded count and bytes, drain-before-
unlink eviction), applies per-tenant :class:`TenantPolicy` budget clamps,
falls back to a shared global prior for unknown tenants, and plugs into
:class:`AsyncServingClient` / :class:`HttpFrontend` via ``tenant=`` and the
versioned ``/v1/tenants/{tenant}/...`` routes.  Admission across tenants is
*fair* (:mod:`repro.serving.admission`): a deficit-round-robin scheduler
over per-tenant queues, weighted by :class:`TenantPolicy.weight`, plus
per-tenant ``max_queue_depth`` bounds and ``requests_per_sec`` token-bucket
quotas (the enveloped HTTP 429).  Every request failure across the stack
derives from :class:`ServingError` (:mod:`repro.serving.errors`), which
carries the stable wire code the HTTP error envelope exposes.
"""

from .admission import DeficitRoundRobin, TenantQueueStats, TokenBucket
from .engine import ServingEngine, ServingStats, plan_shard_assignment
from .errors import (
    ERROR_CODES,
    DeadlineExceededError,
    FrontendClosedError,
    FrontendError,
    QueueFullError,
    QuotaExceededError,
    RegistryCapacityError,
    RegistryClosedError,
    ServingError,
    TenantNotFoundError,
    error_envelope,
)
from .frontend import (
    ADAPTIVE,
    AdaptiveBudgetPolicy,
    ArrivalRateEstimator,
    AsyncServingClient,
    ClassifyResult,
    FrontendStats,
    HttpFrontend,
    drive_open_loop,
)
from .registry import ModelRegistry, RegistryStats, TenantPolicy
from .shared_mem import SharedColumnStore, attach_columns, memory_profile, segment_exists

__all__ = [
    "ServingEngine",
    "ServingStats",
    "plan_shard_assignment",
    "SharedColumnStore",
    "attach_columns",
    "memory_profile",
    "segment_exists",
    "ModelRegistry",
    "RegistryStats",
    "TenantPolicy",
    "ADAPTIVE",
    "AdaptiveBudgetPolicy",
    "ArrivalRateEstimator",
    "AsyncServingClient",
    "ClassifyResult",
    "DeficitRoundRobin",
    "TenantQueueStats",
    "TokenBucket",
    "ERROR_CODES",
    "DeadlineExceededError",
    "FrontendClosedError",
    "FrontendError",
    "QueueFullError",
    "QuotaExceededError",
    "RegistryCapacityError",
    "RegistryClosedError",
    "ServingError",
    "TenantNotFoundError",
    "error_envelope",
    "FrontendStats",
    "HttpFrontend",
    "drive_open_loop",
]
