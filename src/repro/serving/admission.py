"""Fair multi-tenant admission: deficit-round-robin queues and token-bucket quotas.

PR 9 made the worker pool a *shared* resource across tenants, which turned
admission into a fairness problem: with one bounded FIFO queue in front of
the micro-batcher, a single hot tenant fills the queue and every other
tenant's requests are rejected or starved behind its backlog.  The anytime
premise of the paper — degrade *each object's* refinement gracefully under
load, never collapse to zero — has a serving-side analogue: degrade *each
tenant's* throughput proportionally to its configured weight, never let one
tenant's burst zero out the rest.

This module provides the two mechanisms the front-end composes:

* :class:`DeficitRoundRobin` — a deficit-round-robin (DRR, Shreedhar &
  Varghese) scheduler over per-tenant FIFO queues.  Each scheduling visit
  credits a tenant ``quantum * weight`` deficit; one queued request costs
  one unit of deficit to release.  Rotation over the non-empty queues gives
  every backlogged tenant a granted share proportional to its weight,
  within one batch of rounding (the bound pinned by
  ``tests/serving/test_admission.py``), while a tenant's own requests stay
  strictly FIFO.  The scheduler is work-conserving: as long as any queue is
  non-empty, :meth:`~DeficitRoundRobin.take` returns at least one item.
* :class:`TokenBucket` — the per-tenant ``requests_per_sec`` quota.  Unlike
  the DRR weights (which divide capacity *under contention*), the bucket
  caps a tenant's *offered* rate outright; a breach maps to the enveloped
  HTTP 429 (:class:`~repro.serving.errors.QuotaExceededError`) with a
  ``Retry-After`` hint computed from the refill rate.

Both classes take ``now`` (seconds, any monotonic origin) as an explicit
parameter instead of reading a wall clock — the same logical-clock
discipline the decay layer follows — so schedules replay deterministically
in tests and the caller can feed ``loop.time()``.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Generic, List, Optional, Tuple, TypeVar

__all__ = ["DeficitRoundRobin", "TenantQueueStats", "TokenBucket"]

T = TypeVar("T")

#: The rejection kinds :meth:`DeficitRoundRobin.record_rejection` tallies —
#: the per-tenant "rejection mix" surfaced in ``stats_snapshot()``.
_REJECTION_KINDS = ("queue_full", "quota")


@dataclass
class TenantQueueStats:
    """Admission counters for one tenant (survive the queue emptying).

    Attributes
    ----------
    weight:
        The tenant's most recently observed DRR weight.
    deficit:
        Unspent scheduling credit carried between rounds (bounded by one
        visit's ``quantum * weight`` plus one request cost).
    enqueued:
        Requests admitted into the tenant's queue, lifetime.
    granted:
        Requests released into micro-batch rounds, lifetime.
    granted_rounds:
        Rounds in which the tenant contributed at least one request — with
        :attr:`DeficitRoundRobin.rounds` this is the granted-round share.
    rejected_queue_full:
        Requests rejected for depth (global or per-tenant bound), as
        recorded by the admitting front-end.
    rejected_quota:
        Requests rejected by the tenant's rate quota (HTTP 429).
    """

    weight: float = 1.0
    deficit: float = 0.0
    enqueued: int = 0
    granted: int = 0
    granted_rounds: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0

    def snapshot(self, queue_depth: int, total_rounds: int) -> dict:
        """JSON-able view of the counters plus the live queue depth."""
        return {
            "weight": self.weight,
            "deficit": self.deficit,
            "queue_depth": queue_depth,
            "enqueued": self.enqueued,
            "granted": self.granted,
            "granted_rounds": self.granted_rounds,
            "granted_round_share": (
                self.granted_rounds / total_rounds if total_rounds else None
            ),
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
        }


class DeficitRoundRobin(Generic[T]):
    """Deficit-round-robin scheduler over per-tenant FIFO queues.

    Each call to :meth:`take` assembles one micro-batch round: the scheduler
    visits the non-empty tenant queues in rotation, tops a visited tenant's
    deficit up by ``quantum * weight`` when it cannot afford a request, and
    releases queued requests (one unit of deficit each, strictly FIFO within
    the tenant) until the tenant runs out of credit or requests, or the
    round is full.  A tenant whose queue empties forfeits its leftover
    deficit (classic DRR — credit never accumulates while idle), which is
    what bounds long-run unfairness to one round of rounding.

    The scheduler itself never rejects — depth and quota enforcement happen
    at admission in the front-end, which calls :meth:`record_rejection` so
    the per-tenant rejection mix lands in the same snapshot.

    Parameters
    ----------
    quantum:
        Deficit credited per visit to a weight-1.0 tenant.  The default of
        ``1.0`` releases about one request per visit per weight unit;
        larger quanta trade scheduling overhead for burstier interleaving.
    """

    def __init__(self, quantum: float = 1.0) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = float(quantum)
        self._queues: "OrderedDict[str, Deque[T]]" = OrderedDict()
        self._stats: Dict[str, TenantQueueStats] = {}
        self._depth = 0
        self._rounds = 0

    def __len__(self) -> int:
        """Total queued requests across every tenant."""
        return self._depth

    @property
    def rounds(self) -> int:
        """Rounds assembled so far (``take`` calls that released anything)."""
        return self._rounds

    def queue_depth(self, tenant: str) -> int:
        """Queued requests for one tenant (0 for unknown tenants)."""
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def _tenant_stats(self, tenant: str, weight: Optional[float] = None) -> TenantQueueStats:
        stats = self._stats.get(tenant)
        if stats is None:
            stats = self._stats[tenant] = TenantQueueStats()
        if weight is not None:
            stats.weight = weight
        return stats

    def enqueue(self, tenant: str, item: T, weight: float = 1.0) -> None:
        """Append one request to ``tenant``'s queue with its current weight.

        ``weight`` must be positive (a zero weight would break work
        conservation — the tenant could never earn credit).  The most recent
        weight wins for the tenant's future scheduling visits, so policy
        changes take effect without draining the queue.
        """
        weight = float(weight)
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        queue.append(item)
        self._depth += 1
        self._tenant_stats(tenant, weight).enqueued += 1

    def record_rejection(self, tenant: str, kind: str, count: int = 1) -> None:
        """Tally ``count`` admission rejections (``"queue_full"`` or ``"quota"``)."""
        if kind not in _REJECTION_KINDS:
            raise ValueError(f"unknown rejection kind {kind!r}")
        if count < 1:
            raise ValueError("count must be at least 1")
        stats = self._tenant_stats(tenant)
        if kind == "quota":
            stats.rejected_quota += count
        else:
            stats.rejected_queue_full += count

    def take(self, limit: int) -> List[T]:
        """Assemble one round of up to ``limit`` requests in DRR order.

        Work-conserving: returns a non-empty list whenever any queue is
        non-empty and ``limit >= 1``.  Requests of one tenant come out in
        the order they were enqueued (FIFO within tenant); the interleaving
        *across* tenants follows the deficit rotation.
        """
        if limit < 1:
            raise ValueError("limit must be at least 1")
        taken: List[T] = []
        if not self._queues:
            return taken
        contributed: Dict[str, int] = {}
        while len(taken) < limit and self._queues:
            tenant, queue = next(iter(self._queues.items()))
            stats = self._tenant_stats(tenant)
            if stats.deficit < 1.0:
                # Top up at most once per visit; a fractional weight may
                # need several visits (rotations) to afford one request,
                # which is exactly how it earns a sub-1.0 share.
                stats.deficit += self.quantum * stats.weight
            while queue and stats.deficit >= 1.0 and len(taken) < limit:
                taken.append(queue.popleft())
                self._depth -= 1
                stats.deficit -= 1.0
                stats.granted += 1
                contributed[tenant] = contributed.get(tenant, 0) + 1
            if not queue:
                # An emptied queue forfeits leftover credit: deficit only
                # accumulates against a backlog, never while idle.
                stats.deficit = 0.0
                del self._queues[tenant]
            elif stats.deficit >= 1.0 and len(taken) >= limit:
                # Round full mid-entitlement: the tenant keeps its earned
                # deficit and its place at the head of the rotation, so the
                # next round resumes exactly where this one was cut.
                break
            else:
                # Out of credit: rotate to the tail — even when the round is
                # also full.  Leaving a spent tenant at the head would hand
                # it a fresh visit (and quantum) at the top of the next
                # round, a double-visit bias favouring heavy tenants.
                self._queues.move_to_end(tenant)
                if len(taken) >= limit:
                    break
        if taken:
            self._rounds += 1
            for tenant in contributed:
                self._stats[tenant].granted_rounds += 1
        return taken

    def drain(self) -> List[T]:
        """Remove and return every queued request (shutdown path).

        Tenant-major, FIFO within each tenant; deficits reset to zero.
        """
        drained: List[T] = []
        for tenant, queue in self._queues.items():
            drained.extend(queue)
            self._stats[tenant].deficit = 0.0
        self._queues.clear()
        self._depth = 0
        return drained

    def tenant_snapshot(self, tenant: str) -> dict:
        """One tenant's admission counters (zeros for unknown tenants)."""
        stats = self._stats.get(tenant) or TenantQueueStats()
        return stats.snapshot(self.queue_depth(tenant), self._rounds)

    def snapshot(self) -> dict:
        """JSON-able admission view: rotation facts plus per-tenant counters."""
        return {
            "quantum": self.quantum,
            "rounds": self._rounds,
            "queue_depth": self._depth,
            "tenants": {
                tenant: self._stats[tenant].snapshot(self.queue_depth(tenant), self._rounds)
                for tenant in sorted(self._stats)
            },
        }


class TokenBucket:
    """Token-bucket rate limiter for one tenant's ``requests_per_sec`` quota.

    The bucket holds up to ``burst`` tokens and refills continuously at
    ``rate_per_s``; admitting a request costs one token.  An empty bucket
    means the tenant exceeded its offered-rate quota — the caller converts
    that into an HTTP 429 with ``Retry-After`` taken from
    :meth:`retry_after_s`.

    All methods take ``now`` explicitly (seconds on any monotonic clock);
    the bucket never reads a wall clock, so quota decisions replay
    deterministically under a logical clock in tests.

    Parameters
    ----------
    rate_per_s:
        Sustained refill rate (tokens per second); must be positive.
    burst:
        Bucket capacity — the largest instantaneous burst admitted from a
        full bucket.  Defaults to ``max(rate_per_s, 1.0)`` (roughly one
        second of quota, but never less than a single request).
    """

    def __init__(self, rate_per_s: float, burst: Optional[float] = None) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst) if burst is not None else max(self.rate_per_s, 1.0)
        if self.burst < 1.0:
            raise ValueError("burst must admit at least one request")
        self._tokens = self.burst
        self._last_refill: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._last_refill is not None:
            elapsed = max(now - self._last_refill, 0.0)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        self._last_refill = now

    def tokens(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available at ``now``; False leaves the bucket unchanged."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after_s(self, now: float, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available at the sustained rate.

        Zero when the bucket can already afford them; callers round this up
        into the 429 envelope's ``retry_after_ms``.
        """
        self._refill(now)
        missing = tokens - self._tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate_per_s

    def snapshot(self, now: float) -> "Tuple[float, float]":
        """``(available_tokens, burst)`` at ``now`` — the quota headroom view."""
        return self.tokens(now), self.burst
