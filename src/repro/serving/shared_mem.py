"""Shared-memory column store: one physical forest copy for N workers.

The flat forest (:mod:`repro.core.flat`) is a set of read-only numpy columns,
which makes cross-process sharing trivial in principle: place the bytes in a
POSIX shared-memory segment once, and let every shard worker wrap zero-copy
array views around the same physical pages.  This module owns the mechanics:

* :class:`SharedColumnStore` — engine side.  Packs a ``name → array`` mapping
  into one segment (64-byte-aligned members) and records a layout table
  ``name → (offset, shape, dtype)`` that travels to workers as plain picklable
  data.  The creating process is responsible for the single ``unlink``; a
  ``weakref.finalize`` guarantees it even on unclean interpreter exit.
* :func:`attach_columns` — worker side.  Attaches to the segment by name,
  validates the advertised layout against the actual segment size (a
  truncated segment raises ``ValueError`` instead of serving garbage), and
  returns read-only views.
* :func:`memory_profile` — RSS introspection from ``/proc`` used by the
  ``/stats`` endpoint to demonstrate the O(1)-in-workers memory behaviour
  (shared pages are counted once, private pages per process).

CPython 3.12-and-earlier quirk: ``SharedMemory`` registers every *attach*
with the ``resource_tracker`` on POSIX, so a worker exiting would unlink a
segment it merely mapped.  :func:`attach_columns` suppresses that
registration while attaching (the tracker process is shared across forked
workers, so registering-then-unregistering would strip the *creator's*
entry and make its eventual ``unlink`` double-unregister) — the engine-side
finalizer is the only unlinker.
"""

from __future__ import annotations

import gc
import secrets
import threading
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "SharedColumnStore",
    "attach_columns",
    "release_attachment",
    "memory_profile",
    "segment_exists",
]

#: Byte alignment of member arrays inside the segment; cache-line friendly
#: and satisfies every numpy dtype alignment requirement.
_ALIGN = 64

#: Layout table entry: (byte offset, shape tuple, dtype string).
ColumnLayout = Dict[str, Tuple[int, Tuple[int, ...], str]]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _plan_layout(columns: Mapping[str, np.ndarray]) -> Tuple[ColumnLayout, int]:
    """Assign aligned offsets to every column; returns (layout, total bytes)."""
    layout: ColumnLayout = {}
    offset = 0
    for name in sorted(columns):
        array = np.ascontiguousarray(columns[name])
        offset = _aligned(offset)
        layout[name] = (offset, tuple(array.shape), array.dtype.str)
        offset += array.nbytes
    return layout, max(offset, 1)


#: Serialises attach-time tracker patching within a process.
_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it as owned.

    On POSIX, stdlib 3.12-and-earlier registers every mapping with the
    ``resource_tracker`` as if the mapper owned it, so an attaching process
    exiting would tear the segment down for everyone else.  Unregistering
    *after* the attach is no better: forked workers share the creator's
    tracker process, so the unregister strips the creator's entry and its
    eventual ``unlink`` trips a tracker ``KeyError``.  Instead, suppress the
    registration for the duration of the attach — ownership stays exactly
    where :class:`SharedColumnStore` put it.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


class SharedColumnStore:
    """A named shared-memory segment holding a set of read-only numpy columns.

    Created by the serving engine from the flat forest's columns; shard
    workers attach with :func:`attach_columns` using the store's ``name`` and
    ``layout``.  The store owns the segment: :meth:`dispose` (or garbage
    collection of the store, via ``weakref.finalize``) closes and unlinks it
    exactly once.
    """

    def __init__(self, columns: Mapping[str, np.ndarray], name: Optional[str] = None) -> None:
        layout, total = _plan_layout(columns)
        if name is None:
            # Short random suffix: segment names are a global OS namespace.
            name = f"repro-forest-{secrets.token_hex(6)}"
        self._shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        self.name = self._shm.name
        self.layout = layout
        self.size = total
        buffer = self._shm.buf
        for column_name, (offset, shape, dtype_str) in layout.items():
            source = np.ascontiguousarray(columns[column_name])
            view = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=buffer, offset=offset)
            view[...] = source
        self._finalizer = weakref.finalize(self, _dispose_segment, self._shm)

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent)."""
        self._finalizer()

    @property
    def disposed(self) -> bool:
        """True once the segment has been closed and unlinked."""
        return not self._finalizer.alive


def _dispose_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:
        # Live views in this process keep the mapping alive; the unlink
        # below still removes the name, and the mapping goes when they do.
        pass
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


def attach_columns(
    name: str, layout: ColumnLayout
) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
    """Attach to a :class:`SharedColumnStore` segment and map its columns.

    Returns the open ``SharedMemory`` handle (the caller keeps it alive for
    as long as the views are used, and closes it on release) and a dict of
    read-only zero-copy array views.  Raises ``ValueError`` when the segment
    is smaller than the advertised layout — attaching to a truncated segment
    must fail loudly, not serve partial columns.
    """
    shm = _attach_untracked(name)
    required = 0
    for offset, shape, dtype_str in layout.values():
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype_str).itemsize
        required = max(required, offset + nbytes)
    if shm.size < required:
        shm.close()
        raise ValueError(
            f"shared memory segment {name!r} holds {shm.size} bytes but the "
            f"column layout requires {required} (truncated segment)"
        )
    columns: Dict[str, np.ndarray] = {}
    for column_name, (offset, shape, dtype_str) in layout.items():
        view = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        columns[column_name] = view
    return shm, columns


def release_attachment(shm: Optional[shared_memory.SharedMemory]) -> None:
    """Close a worker-side attachment, tolerating live numpy views.

    Numpy views pin the exported buffer; dropping the caller's references and
    collecting cycles first usually releases it.  If something still holds a
    view, the close is skipped (the mapping dies with the process) rather
    than crashing the worker mid-swap.
    """
    if shm is None:
        return
    gc.collect()
    try:
        shm.close()
    except BufferError:
        pass
    except Exception:
        pass


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment with this name is still linked.

    Probe for leak assertions: after an eviction or swap has disposed a
    :class:`SharedColumnStore`, its name must no longer resolve.  The probe
    attaches tracker-suppressed and closes immediately, so it neither adopts
    nor extends the segment's lifetime.
    """
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def memory_profile() -> Dict[str, float]:
    """Current process RSS split into shared and private pages (kilobytes).

    Reads ``/proc/self/smaps_rollup`` (Linux).  ``shared_kb`` counts pages
    also mapped elsewhere — e.g. the one physical copy of the forest columns
    — while ``private_kb`` is this process's own incremental footprint, the
    quantity that must stay flat as workers are added.  Returns zeros on
    platforms without ``/proc``.
    """
    profile = {"rss_kb": 0.0, "shared_kb": 0.0, "private_kb": 0.0}
    try:
        with open("/proc/self/smaps_rollup", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("Rss:"):
                    profile["rss_kb"] = float(line.split()[1])
                elif line.startswith(("Shared_Clean:", "Shared_Dirty:")):
                    profile["shared_kb"] += float(line.split()[1])
                elif line.startswith(("Private_Clean:", "Private_Dirty:")):
                    profile["private_kb"] += float(line.split()[1])
    except OSError:
        pass
    return profile
