"""Asyncio request front-end for the serving engine.

The anytime premise of the paper is that a classifier should convert whatever
time exists *between* request arrivals into refinement quality.  The sharded
:class:`~repro.serving.engine.ServingEngine` realises the compute side of
that; this module adds the missing traffic side — an asyncio-native request
layer so real (network) arrivals feed the same scatter/gather rounds:

* :class:`AsyncServingClient` — ``await classify(x, deadline_ms=...)`` backed
  by an event-loop-side micro-batcher: bounded per-tenant queues coalesce
  concurrent requests (up to ``max_batch``, waiting at most ``linger_s``
  after the first) into engine rounds executed off-loop in a worker thread.
  Rounds are assembled by a deficit-round-robin scheduler over the tenant
  queues (:mod:`repro.serving.admission`), so under contention each tenant's
  served share tracks its :class:`~repro.serving.TenantPolicy` weight
  instead of one hot tenant starving the rest.  Backpressure is explicit: a
  full queue (global ``max_pending`` or the tenant's ``max_queue_depth``)
  rejects new work with :class:`QueueFullError` (the 503 of the HTTP shim)
  instead of queueing unboundedly, a tenant over its ``requests_per_sec``
  quota gets :class:`QuotaExceededError` (the 429), and per-request
  deadlines turn into :class:`DeadlineExceededError` (the 504).
* **Load-adaptive budgets** — :class:`ArrivalRateEstimator` keeps an EWMA of
  the observed inter-arrival gaps and :class:`AdaptiveBudgetPolicy` maps the
  estimated idle time per arrival to a per-round ``node_budget`` (calibrated
  by the engine's measured cost per lockstep node read).  Light traffic gets
  deep refinement, bursts degrade gracefully to shallow reads — the paper's
  anytime curve realised as a serving policy.  Request it with
  ``node_budget=ADAPTIVE``.
* :class:`HttpFrontend` — a minimal stdlib HTTP shim
  (:func:`asyncio.start_server`; no third-party dependency) speaking one JSON
  document per request/response on ``/classify``, ``/classify_batch``,
  ``/healthz``, ``/stats`` and ``/swap``, so external load generators can
  drive the engine over a socket.  ``/stats`` merges the front-end counters
  with ``ServingEngine.stats_snapshot()``, which now includes the zero-copy
  deployment facts: shared-segment name and size, per-worker warm-start
  (attach) latency, each worker's shared-vs-private RSS split and the forest
  structure-health summary derived from the flat interval columns.
* :func:`drive_open_loop` — an open-loop load driver that replays a
  :class:`~repro.stream.DataStream` against a client at its arrival
  timestamps and returns per-request records for
  :class:`~repro.evaluation.RequestTrace` (optionally tenant-tagged).

Since the v1 API redesign the front-end is **multi-tenant**: the client can
route requests to a :class:`~repro.serving.ModelRegistry` (``tenant="acme"``)
as well as to a single :class:`ServingEngine`, and the HTTP shim exposes the
versioned ``/v1/tenants/{tenant}/...`` surface plus ``/v1/registry``.  The
pre-v1 unversioned routes survive as thin aliases onto the ``default``
tenant — same handlers, byte-identical payloads.  All endpoints share one
structured error envelope (see :mod:`repro.serving.errors`)::

    {"error": {"code": "queue_full", "message": "...", "retry_after_ms": 50}}

Fixed-budget and full-refinement requests are served by exactly the same
engine entry point a direct caller would use, so their predictions are
trace-identical to ``ServingEngine.predict_batch`` (pinned by
``benchmarks/test_serving_frontend.py`` via ``classification_trace_hash``).
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Awaitable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .admission import DeficitRoundRobin, TokenBucket
from .engine import ServingEngine
from .errors import (
    DeadlineExceededError,
    FrontendClosedError,
    FrontendError,
    QueueFullError,
    QuotaExceededError,
    TenantNotFoundError,
    error_envelope,
)
from .registry import ModelRegistry, TenantPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from ..stream.stream import DataStream, StreamItem

__all__ = [
    "ADAPTIVE",
    "AdaptiveBudgetPolicy",
    "ArrivalRateEstimator",
    "AsyncServingClient",
    "ClassifyResult",
    "DeadlineExceededError",
    "FrontendClosedError",
    "FrontendError",
    "FrontendStats",
    "HttpFrontend",
    "QueueFullError",
    "QuotaExceededError",
    "drive_open_loop",
]

#: Sentinel budget: let the front-end choose the node budget from the current
#: arrival-rate estimate (see :class:`AdaptiveBudgetPolicy`).
ADAPTIVE = "adaptive"

_UNSET = object()


@dataclass(frozen=True)
class ClassifyResult:
    """Detailed outcome of one async classification request.

    Attributes
    ----------
    prediction:
        The predicted class label.
    node_budget:
        The per-query node budget the request was served with — the policy's
        choice for ``ADAPTIVE`` requests, the caller's value for fixed ones,
        ``None`` for full refinement.
    latency_s:
        Wall-clock from enqueue to result, including queueing and linger.
    """

    prediction: Hashable
    node_budget: Optional[int]
    latency_s: float


@dataclass
class FrontendStats:
    """Counters of the async front-end (requests, rounds, rejections).

    ``mean_adaptive_budget()`` summarises what the load-adaptive policy
    actually granted — the number the open-loop benchmark compares across
    arrival rates.
    """

    submitted: int = 0
    served: int = 0
    batches: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    rejected_deadline: int = 0
    dropped_cancelled: int = 0
    failed: int = 0
    adaptive_requests: int = 0
    adaptive_budget_sum: int = 0
    last_adaptive_budget: Optional[int] = None

    def mean_adaptive_budget(self) -> Optional[float]:
        """Mean node budget granted to ``ADAPTIVE`` requests (``None`` if none)."""
        if self.adaptive_requests == 0:
            return None
        return self.adaptive_budget_sum / self.adaptive_requests

    def snapshot(self) -> dict:
        """JSON-able copy of the counters (plus the derived mean budget)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "batches": self.batches,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "rejected_deadline": self.rejected_deadline,
            "dropped_cancelled": self.dropped_cancelled,
            "failed": self.failed,
            "adaptive_requests": self.adaptive_requests,
            "last_adaptive_budget": self.last_adaptive_budget,
            "mean_adaptive_budget": self.mean_adaptive_budget(),
        }


class ArrivalRateEstimator:
    """EWMA estimate of the request inter-arrival gap.

    Each :meth:`observe` call updates ``mean_gap_s`` with the gap since the
    previous arrival: ``gap_ewma += alpha * (gap - gap_ewma)``.  The paper's
    "varying streams" motivation maps directly: the estimated gap is the time
    the engine can expect to spend on the current request before the next one
    arrives, which the budget policy converts into node reads.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in ``(0, 1]``; larger adapts faster to bursts.
    initial_gap_s:
        Optimistic prior for the gap before two arrivals have been seen.
    """

    def __init__(self, alpha: float = 0.2, initial_gap_s: float = 0.05) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if initial_gap_s <= 0:
            raise ValueError("initial_gap_s must be positive")
        self.alpha = float(alpha)
        self.initial_gap_s = float(initial_gap_s)
        self.mean_gap_s = float(initial_gap_s)
        self.observations = 0
        self._last_arrival: Optional[float] = None

    def observe(self, now: float) -> float:
        """Record an arrival at time ``now`` (seconds); return the new mean gap."""
        if self._last_arrival is not None:
            gap = max(now - self._last_arrival, 1e-9)
            self.mean_gap_s += self.alpha * (gap - self.mean_gap_s)
        self._last_arrival = now
        self.observations += 1
        return self.mean_gap_s

    @property
    def rate_per_s(self) -> float:
        """Estimated arrival rate (requests per second)."""
        return 1.0 / max(self.mean_gap_s, 1e-9)

    def reset(self) -> None:
        """Forget all observations and return to the initial gap prior."""
        self.mean_gap_s = self.initial_gap_s
        self.observations = 0
        self._last_arrival = None

    def snapshot(self) -> dict:
        """JSON-able view of the estimator state."""
        return {
            "mean_gap_s": self.mean_gap_s,
            "rate_per_s": self.rate_per_s,
            "observations": self.observations,
        }


class AdaptiveBudgetPolicy:
    """Map the estimated idle time per arrival to a per-query node budget.

    ``budget = clamp(utilisation * mean_gap_s / node_cost_s)`` — of the time
    expected until the next arrival, spend a ``utilisation`` fraction on
    lockstep node reads (the rest absorbs queueing, gather and estimator
    error), at the engine's measured seconds-per-node-read cost.  Light
    traffic (large gaps) therefore refines up to ``max_budget`` nodes; a
    burst (tiny gaps) degrades to ``min_budget`` instead of queue collapse.

    Parameters
    ----------
    min_budget / max_budget:
        Inclusive clamp of the granted per-query budget.
    node_cost_s:
        Fallback seconds per lockstep node read, used until the engine has
        calibrated its own estimate from observed budgeted rounds
        (:meth:`~repro.serving.ServingEngine.node_cost_estimate`).
    utilisation:
        Fraction of the inter-arrival gap to spend refining, in ``(0, 1]``.
    """

    def __init__(
        self,
        min_budget: int = 2,
        max_budget: int = 64,
        node_cost_s: float = 2e-4,
        utilisation: float = 0.5,
    ) -> None:
        if min_budget < 1 or max_budget < min_budget:
            raise ValueError("need 1 <= min_budget <= max_budget")
        if node_cost_s <= 0:
            raise ValueError("node_cost_s must be positive")
        if not (0.0 < utilisation <= 1.0):
            raise ValueError("utilisation must be in (0, 1]")
        self.min_budget = int(min_budget)
        self.max_budget = int(max_budget)
        self.node_cost_s = float(node_cost_s)
        self.utilisation = float(utilisation)

    def budget(self, mean_gap_s: float, node_cost_hint: Optional[float] = None) -> int:
        """Node budget for the current load level.

        Parameters
        ----------
        mean_gap_s:
            The arrival-rate estimator's current mean inter-arrival gap.
        node_cost_hint:
            The engine's calibrated cost per node read, if available;
            overrides the policy's static ``node_cost_s`` fallback.
        """
        cost = node_cost_hint if node_cost_hint and node_cost_hint > 0 else self.node_cost_s
        nodes = int(self.utilisation * max(mean_gap_s, 0.0) / cost)
        return max(self.min_budget, min(self.max_budget, nodes))


@dataclass
class _PendingRequest:
    """One queued classification awaiting a micro-batch round."""

    features: np.ndarray
    node_budget: object  # None (full refinement) | int | ADAPTIVE
    deadline: Optional[float]  # absolute loop time, None = no deadline
    future: asyncio.Future = field(repr=False)
    enqueued: float = 0.0
    tenant: str = "default"


class AsyncServingClient:
    """Asyncio-native classification client over a :class:`ServingEngine`.

    Concurrent ``await classify(...)`` calls are coalesced by an
    event-loop-side micro-batcher into engine rounds: the first queued
    request opens a round, the round dispatches when ``max_batch`` requests
    are pending or ``linger_s`` has passed, and the blocking engine call runs
    in a worker thread so the event loop stays responsive.  Requests wait in
    per-tenant FIFO queues and rounds are assembled by a deficit-round-robin
    scheduler (:class:`~repro.serving.admission.DeficitRoundRobin`) weighted
    by each tenant's :class:`TenantPolicy.weight` — fairness under
    contention, exact FIFO when a single tenant is active.  Admission is
    bounded three ways: the global ``max_pending`` and the per-tenant
    ``max_queue_depth`` fail fast with :class:`QueueFullError`, and a
    tenant's ``requests_per_sec`` token-bucket quota fails with
    :class:`QuotaExceededError` — callers see backpressure instead of
    unbounded latency.

    All methods must be called from a single asyncio event loop (the one that
    first used the client).

    Parameters
    ----------
    engine:
        The engine serving the *default tenant*.  Optional when ``registry``
        is given (then every tenant, the default included, routes to the
        registry).  The client does not take ownership: closing the client
        leaves the engine running.
    registry:
        Optional :class:`~repro.serving.ModelRegistry` serving the
        non-default tenants (and the default one too when no ``engine`` is
        given).  At least one of ``engine``/``registry`` is required.
    default_tenant:
        The tenant name requests without an explicit ``tenant=`` resolve to
        (the tenant the legacy unversioned HTTP routes alias onto).
    max_batch / linger_s:
        Micro-batching knobs; default to the engine's settings (or the
        engine constructor defaults when only a registry is given).
    max_pending:
        Bound of the request queue (backpressure threshold), summed over
        every tenant's admission queue.
    default_budget:
        Budget used by :meth:`classify` calls that do not pass one:
        ``None`` (full refinement), an ``int``, or :data:`ADAPTIVE`.
    budget_policy / estimator:
        The load-adaptive budget policy and arrival-rate estimator; default
        instances are created when omitted.
    tenant_policies:
        Optional explicit per-tenant :class:`TenantPolicy` mapping for the
        admission layer (DRR ``weight``, ``max_queue_depth``,
        ``requests_per_sec``).  Looked up before the registry's registered
        policies — the way to configure admission for engine-only
        deployments, which have no registry to carry policies.  Tenants in
        neither source get the default policy (weight 1.0, no bounds).
    """

    def __init__(
        self,
        engine: Optional[ServingEngine] = None,
        max_batch: Optional[int] = None,
        linger_s: Optional[float] = None,
        max_pending: int = 1024,
        default_budget: object = None,
        budget_policy: Optional[AdaptiveBudgetPolicy] = None,
        estimator: Optional[ArrivalRateEstimator] = None,
        registry: Optional[ModelRegistry] = None,
        default_tenant: str = "default",
        tenant_policies: "Optional[Mapping[str, TenantPolicy]]" = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if engine is None and registry is None:
            raise ValueError("need an engine, a registry, or both")
        if not default_tenant:
            raise ValueError("default_tenant must be a non-empty string")
        self._engine = engine
        self._registry = registry
        self.default_tenant = str(default_tenant)
        engine_batch = engine.max_batch if engine is not None else 256
        engine_linger = engine.linger_s if engine is not None else 0.002
        self.max_batch = int(max_batch if max_batch is not None else engine_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.linger_s = float(engine_linger if linger_s is None else linger_s)
        if self.linger_s < 0:
            raise ValueError("linger_s must be non-negative")
        self.max_pending = int(max_pending)
        self.default_budget = default_budget
        self.budget_policy = budget_policy or AdaptiveBudgetPolicy()
        self.estimator = estimator or ArrivalRateEstimator()
        self.stats = FrontendStats()
        self._tenant_policies: Dict[str, TenantPolicy] = dict(tenant_policies or {})
        self._default_policy = TenantPolicy()
        self._admission: "DeficitRoundRobin[_PendingRequest]" = DeficitRoundRobin()
        self._buckets: Dict[str, Tuple[float, TokenBucket]] = {}
        self._wakeup = asyncio.Event()
        self._batcher: Optional[asyncio.Task] = None
        self._closed = False

    # -- public API ---------------------------------------------------------------------------
    @property
    def engine(self) -> Optional[ServingEngine]:
        """The default tenant's serving engine (``None`` in registry-only mode)."""
        return self._engine

    @property
    def registry(self) -> Optional[ModelRegistry]:
        """The model registry serving non-default tenants, when configured."""
        return self._registry

    def _resolve_tenant(self, tenant: Optional[str]) -> str:
        """Map the request's ``tenant=`` (``None`` = default) to a concrete name."""
        if tenant is None:
            return self.default_tenant
        if not isinstance(tenant, str) or not tenant:
            raise ValueError("tenant must be a non-empty string")
        return tenant

    def _expected_dimension(self, tenant: str) -> Optional[int]:
        """Feature dimension to validate against now, if any backend knows it."""
        if tenant == self.default_tenant and self._engine is not None:
            return self._engine.dimension
        if self._registry is not None:
            return self._registry.expected_dimension(tenant)
        return None

    def _node_cost(self) -> Optional[float]:
        """The calibrated seconds-per-node-read hint from whichever backend has one."""
        if self._engine is not None:
            cost = self._engine.node_cost_estimate()
            if cost is not None:
                return cost
        if self._registry is not None:
            return self._registry.node_cost_estimate()
        return None

    @property
    def queue_depth(self) -> int:
        """Number of requests currently waiting for a micro-batch round."""
        return len(self._admission)

    def _policy_for(self, tenant: str) -> TenantPolicy:
        """The admission policy governing ``tenant``'s requests right now.

        Explicit ``tenant_policies`` entries win, then the registry's
        registered policy, then the all-defaults policy — read per request,
        so a policy change applies to the next admission decision.
        """
        policy = self._tenant_policies.get(tenant)
        if policy is not None:
            return policy
        if self._registry is not None:
            registered = self._registry.tenant_policy(tenant)
            if registered is not None:
                return registered
        return self._default_policy

    def _bucket_for(self, tenant: str, policy: TenantPolicy) -> Optional[TokenBucket]:
        """The tenant's quota bucket (rebuilt when the policy's rate changes)."""
        rate = policy.requests_per_sec
        if rate is None:
            self._buckets.pop(tenant, None)
            return None
        cached = self._buckets.get(tenant)
        if cached is None or cached[0] != rate:
            bucket = TokenBucket(rate)
            self._buckets[tenant] = (rate, bucket)
            return bucket
        return cached[1]

    def _admit(self, tenant: str, count: int, now: float) -> TenantPolicy:
        """Run the admission checks for ``count`` requests of one tenant.

        Order: rate quota (429) first — a quota breach is the tenant's own
        doing regardless of queue state — then the global queue bound and
        the tenant's ``max_queue_depth`` (both 503).  All-or-nothing for the
        whole block, and synchronous (no awaits), so a batch admits
        atomically with respect to the event loop.  Returns the policy so
        the caller can enqueue with its DRR weight.
        """
        policy = self._policy_for(tenant)
        if count < 1:  # an empty block admits trivially (nothing to charge)
            return policy
        bucket = self._bucket_for(tenant, policy)
        if bucket is not None and not bucket.try_acquire(now, float(count)):
            self.stats.rejected_quota += count
            self._admission.record_rejection(tenant, "quota", count)
            retry_ms = max(1, math.ceil(bucket.retry_after_s(now, float(count)) * 1e3))
            noun = "request" if count == 1 else f"batch of {count}"
            raise QuotaExceededError(
                f"tenant {tenant!r} quota of {policy.requests_per_sec:g} requests/s "
                f"cannot admit this {noun}; retry later",
                retry_after_ms=retry_ms,
            )
        if len(self._admission) + count > self.max_pending:
            self.stats.rejected_queue_full += count
            self._admission.record_rejection(tenant, "queue_full", count)
            if count == 1:
                raise QueueFullError(
                    f"request queue is full ({self.max_pending} pending); retry later"
                )
            raise QueueFullError(
                f"batch of {count} does not fit the request queue "
                f"({self.max_pending - len(self._admission)} slots free)"
            )
        depth_limit = policy.max_queue_depth
        if depth_limit is not None and self._admission.queue_depth(tenant) + count > depth_limit:
            self.stats.rejected_queue_full += count
            self._admission.record_rejection(tenant, "queue_full", count)
            raise QueueFullError(
                f"tenant {tenant!r} queue is full ({depth_limit} pending allowed); retry later"
            )
        return policy

    async def classify(
        self,
        features: Sequence[float] | np.ndarray,
        node_budget: object = _UNSET,
        deadline_ms: Optional[float] = None,
        detail: bool = False,
        tenant: Optional[str] = None,
    ) -> "ClassifyResult | Hashable":
        """Classify one feature vector through the micro-batched engine.

        Parameters
        ----------
        features:
            One ``(dimension,)`` feature vector.
        node_budget:
            ``None`` for full refinement, an ``int`` for a fixed anytime
            budget, or :data:`ADAPTIVE` to let the arrival-rate policy
            choose.  Defaults to the client's ``default_budget``.
        deadline_ms:
            Optional end-to-end deadline in milliseconds.  A request that
            cannot produce its result in time fails with
            :class:`DeadlineExceededError` and is dropped from any later
            round.
        detail:
            When true, return a :class:`ClassifyResult` (prediction, granted
            budget, latency) instead of the bare label.
        tenant:
            Which tenant's model serves the request (``None`` = the client's
            ``default_tenant``).  Non-default tenants require a registry.

        Returns
        -------
        The predicted label, or a :class:`ClassifyResult` when ``detail``.

        Raises
        ------
        QueueFullError
            If ``max_pending`` requests are already queued, or the tenant's
            own ``max_queue_depth`` is reached (backpressure).
        QuotaExceededError
            If the tenant's ``requests_per_sec`` quota is exhausted (the
            HTTP 429; carries a ``retry_after_ms`` from the refill rate).
        DeadlineExceededError
            If the deadline passes before the result is available.
        FrontendClosedError
            If the client is closed (or closes without draining).
        TenantNotFoundError
            If the tenant resolves to no model (no registry, or an
            unregistered tenant without a prior snapshot).
        ValueError
            If ``features`` does not match the tenant's model dimension.
        """
        features = np.asarray(features, dtype=float)
        resolved_tenant = self._resolve_tenant(tenant)
        expected = self._expected_dimension(resolved_tenant)
        if features.ndim != 1 or (expected is not None and features.shape != (expected,)):
            raise ValueError(f"features must have shape ({expected or 'dimension'},)")
        if self._closed:
            raise FrontendClosedError("async serving client is closed")
        loop = asyncio.get_running_loop()
        now = loop.time()
        # Every arrival — including ones about to be rejected — is load
        # signal, so the estimator observes before the admission checks.
        self.estimator.observe(now)
        policy = self._admit(resolved_tenant, 1, now)
        budget = self._normalize_budget(node_budget)
        request = self._enqueue(
            features, budget, deadline_ms, now, loop, resolved_tenant, policy.weight
        )
        result = await self._await_result(request, deadline_ms, now)
        if detail:
            return ClassifyResult(
                prediction=result[0], node_budget=result[1], latency_s=loop.time() - now
            )
        return result[0]

    def _normalize_budget(self, node_budget: object) -> object:
        """Resolve a request budget to ``None``, an ``int`` or the ADAPTIVE sentinel."""
        budget = self.default_budget if node_budget is _UNSET else node_budget
        if budget is None:
            return None
        if isinstance(budget, str):
            # Equality, not identity: "adaptive" arriving from JSON/YAML is
            # not interned, yet must mean the same thing as the constant.
            if budget != ADAPTIVE:
                raise ValueError(f'string node_budget must be "{ADAPTIVE}"')
            return ADAPTIVE
        return int(budget)

    def _enqueue(
        self,
        features: np.ndarray,
        budget: object,
        deadline_ms: Optional[float],
        now: float,
        loop: asyncio.AbstractEventLoop,
        tenant: str,
        weight: float,
    ) -> _PendingRequest:
        """Append one admitted request to its tenant queue and wake the batcher.

        Synchronous (no awaits), so a caller can admit a whole block
        atomically with respect to the event loop.
        """
        request = _PendingRequest(
            features=features,
            node_budget=budget,
            deadline=None if deadline_ms is None else now + float(deadline_ms) / 1e3,
            future=loop.create_future(),
            enqueued=now,
            tenant=tenant,
        )
        self._admission.enqueue(tenant, request, weight)
        self.stats.submitted += 1
        self._ensure_batcher()
        self._wakeup.set()
        return request

    async def _await_result(
        self, request: _PendingRequest, deadline_ms: Optional[float], now: float
    ) -> "Tuple[Hashable, Optional[int]]":
        if request.deadline is None:
            return await request.future
        try:
            return await asyncio.wait_for(request.future, request.deadline - now)
        except asyncio.TimeoutError:
            self.stats.rejected_deadline += 1
            raise DeadlineExceededError(
                f"deadline of {deadline_ms:g} ms exceeded before a result was available"
            ) from None

    async def classify_batch(
        self,
        queries: np.ndarray,
        node_budget: object = _UNSET,
        deadline_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> List[Hashable]:
        """Classify a ``(m, dimension)`` block; returns labels in query order.

        Each row rides the shared micro-batcher as an individual request (so
        it coalesces with concurrent callers); admission is all-or-nothing
        and atomic — every row is enqueued without yielding to the event
        loop, so either the whole block is queued or none of it is and
        :class:`QueueFullError` (or :class:`QuotaExceededError`, for a
        block the tenant's rate quota cannot afford) is raised.  ``tenant``
        routes the whole block to one tenant's model, as in
        :meth:`classify`.  Raises like :meth:`classify` otherwise.
        """
        queries = np.asarray(queries, dtype=float)
        resolved_tenant = self._resolve_tenant(tenant)
        expected = self._expected_dimension(resolved_tenant)
        if queries.ndim != 2 or (expected is not None and queries.shape[1] != expected):
            raise ValueError(f"queries must be an (m, {expected or 'dimension'}) array")
        if self._closed:
            raise FrontendClosedError("async serving client is closed")
        loop = asyncio.get_running_loop()
        now = loop.time()
        for _ in range(queries.shape[0]):
            self.estimator.observe(now)
        policy = self._admit(resolved_tenant, queries.shape[0], now)
        budget = self._normalize_budget(node_budget)
        requests = [
            self._enqueue(row, budget, deadline_ms, now, loop, resolved_tenant, policy.weight)
            for row in queries
        ]
        results = await asyncio.gather(
            *(self._await_result(request, deadline_ms, now) for request in requests)
        )
        return [result[0] for result in results]

    async def swap_snapshot(
        self, snapshot_path: "str | Path", tenant: Optional[str] = None
    ) -> None:
        """Hot-swap one tenant's model to a new snapshot without dropping requests.

        For the engine-backed default tenant this runs
        :meth:`ServingEngine.swap_snapshot` in a worker thread; for
        registry-backed tenants it runs :meth:`ModelRegistry.load` (which
        registers the tenant if needed).  Either way in-flight rounds finish
        on the old snapshot and queued requests are served by the new one
        once the swap completes.  Raises whatever the backend validation
        raises (bad container, dimension mismatch).
        """
        resolved_tenant = self._resolve_tenant(tenant)
        loop = asyncio.get_running_loop()
        if resolved_tenant == self.default_tenant and self._engine is not None:
            await loop.run_in_executor(
                None, functools.partial(self._engine.swap_snapshot, snapshot_path)
            )
            return
        if self._registry is None:
            raise TenantNotFoundError(
                f"tenant {resolved_tenant!r} cannot be swapped: no model registry"
            )
        await loop.run_in_executor(
            None, functools.partial(self._registry.load, resolved_tenant, snapshot_path)
        )

    def stats_snapshot(self) -> dict:
        """JSON-able front-end stats: counters, queues, arrival estimate.

        Since schema_version 3 the document nests the admission layer's
        view under ``"admission"`` — DRR rounds plus, per tenant, queue
        depth, weight, deficit, granted(-round) share and the rejection mix
        (see :meth:`DeficitRoundRobin.snapshot`).
        """
        snapshot = self.stats.snapshot()
        snapshot["queue_depth"] = self.queue_depth
        snapshot["max_pending"] = self.max_pending
        snapshot["arrival"] = self.estimator.snapshot()
        snapshot["admission"] = self._admission.snapshot()
        return snapshot

    def tenant_admission_snapshot(self, tenant: Optional[str] = None) -> dict:
        """One tenant's admission view: queue depth, deficit, shares, rejections.

        The per-tenant slice of ``stats_snapshot()["admission"]`` plus the
        tenant's configured admission policy — the document the
        ``/v1/tenants/{tenant}/stats`` route nests under ``"admission"``.
        """
        resolved = self._resolve_tenant(tenant)
        doc = self._admission.tenant_snapshot(resolved)
        policy = self._policy_for(resolved)
        doc["policy"] = {
            "weight": policy.weight,
            "max_queue_depth": policy.max_queue_depth,
            "requests_per_sec": policy.requests_per_sec,
        }
        return doc

    async def aclose(self, drain: bool = True) -> None:
        """Shut the client down; idempotent.

        With ``drain=True`` (default) already-queued requests are still
        served before the batcher exits; with ``drain=False`` they fail
        immediately with :class:`FrontendClosedError`.  Either way every
        pending future is resolved — no waiter is left hanging — and later
        :meth:`classify` calls raise :class:`FrontendClosedError`.  The
        underlying engine stays open (the caller owns it).
        """
        if self._closed:
            return
        self._closed = True
        self._wakeup.set()
        if not drain:
            self._fail_pending(FrontendClosedError("async serving client closed"))
        if self._batcher is not None:
            await self._batcher
            self._batcher = None
        # A non-drain close may have raced requests into the queue after the
        # batcher exited; make sure nothing is left unresolved.
        self._fail_pending(FrontendClosedError("async serving client closed"))

    async def __aenter__(self) -> "AsyncServingClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- micro-batcher ------------------------------------------------------------------------
    def _ensure_batcher(self) -> None:
        if self._batcher is None or self._batcher.done():
            self._batcher = asyncio.get_running_loop().create_task(
                self._batch_loop(), name="serving-frontend-batcher"
            )

    def _fail_pending(self, error: Exception) -> None:
        for request in self._admission.drain():
            if not request.future.done():
                request.future.set_exception(error)

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not len(self._admission):
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            if self.linger_s > 0 and not self._closed:
                # Linger: let the round fill towards max_batch before
                # dispatching — the event-loop analogue of the engine
                # dispatcher thread's wait.
                round_deadline = loop.time() + self.linger_s
                while len(self._admission) < self.max_batch and not self._closed:
                    remaining = round_deadline - loop.time()
                    if remaining <= 0:
                        break
                    self._wakeup.clear()
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), remaining)
                    except asyncio.TimeoutError:
                        break
            # The DRR scheduler assembles the round: weighted-fair across
            # backlogged tenants, FIFO within each — a single-tenant queue
            # degenerates to exactly the old FIFO pop (trace identity).
            batch = self._admission.take(self.max_batch)
            if batch:
                await self._serve_round(batch)

    async def _serve_round(self, batch: List[_PendingRequest]) -> None:
        # Requests whose waiter gave up (deadline timeout cancels the future)
        # are dropped before any engine work is spent on them.
        live: List[_PendingRequest] = []
        for request in batch:
            if request.future.done():
                self.stats.dropped_cancelled += 1
            else:
                live.append(request)
        if not live:
            return
        # Rounds are homogeneous in (tenant, budgeted-ness): different tenants
        # hit different models, and full-refinement vs budgeted requests take
        # different sharding paths.  Grouping preserves arrival order within
        # each group, which is what keeps per-tenant traces deterministic.
        groups: "Dict[Tuple[str, bool], List[_PendingRequest]]" = {}
        for request in live:
            groups.setdefault((request.tenant, request.node_budget is None), []).append(request)
        rounds: List[Awaitable[None]] = []
        for (tenant, unbudgeted), group in groups.items():
            budgets = None if unbudgeted else self._resolve_budgets(group)
            rounds.append(self._execute_group(group, budgets=budgets, tenant=tenant))
        # The engine supports concurrent serving rounds (readers side of the
        # swap guard), so the slow full-refinement round must not delay the
        # deadline-carrying budgeted one behind it.
        await asyncio.gather(*rounds)

    def _resolve_budgets(self, budgeted: List[_PendingRequest]) -> List[int]:
        """Fix per-request budgets; ADAPTIVE ones get the policy's choice.

        The adaptive choice is additionally clamped by the tightest remaining
        deadline among the *adaptive* requests (translated into affordable
        node reads via the engine's calibrated cost).  Fixed-budget requests
        are never clamped — their trace identity with direct
        ``predict_batch`` is part of the contract, which is why the clamp
        happens here on the adaptive choice alone and not engine-side on the
        whole round.
        """
        adaptive = [request for request in budgeted if request.node_budget is ADAPTIVE]
        chosen: Optional[int] = None
        if adaptive:
            chosen = self.budget_policy.budget(
                self.estimator.mean_gap_s, node_cost_hint=self._node_cost()
            )
            deadlines = [request.deadline for request in adaptive if request.deadline is not None]
            if deadlines:
                cost = self._node_cost()
                if cost is not None and cost > 0:
                    loop = asyncio.get_running_loop()
                    remaining = max(min(deadlines) - loop.time(), 0.0)
                    chosen = max(1, min(chosen, int(remaining / cost)))
            self.stats.adaptive_requests += len(adaptive)
            self.stats.adaptive_budget_sum += chosen * len(adaptive)
            self.stats.last_adaptive_budget = chosen
        return [
            chosen if request.node_budget is ADAPTIVE else int(request.node_budget)
            for request in budgeted
        ]

    def _backend_call(
        self, tenant: str, features: np.ndarray, budgets: Optional[List[int]]
    ) -> "functools.partial[List[Hashable]]":
        """The blocking one-round call for a tenant: engine or registry.

        The engine serves the default tenant when present (the pre-v1
        single-model deployment — byte- and trace-identical to the legacy
        path); everything else goes through the registry.  A tenant with no
        backend fails the whole group with
        :class:`~repro.serving.TenantNotFoundError`.
        """
        if tenant == self.default_tenant and self._engine is not None:
            return functools.partial(self._engine.predict_batch, features, node_budget=budgets)
        if self._registry is None:
            raise TenantNotFoundError(
                f"tenant {tenant!r} has no serving backend (no model registry configured)"
            )
        return functools.partial(
            self._registry.predict_batch, tenant, features, node_budget=budgets
        )

    async def _execute_group(
        self, group: List[_PendingRequest], budgets: Optional[List[int]], tenant: str
    ) -> None:
        loop = asyncio.get_running_loop()
        features = np.stack([request.features for request in group])
        try:
            call = self._backend_call(tenant, features, budgets)
        except TenantNotFoundError as error:
            for request in group:
                if not request.future.done():
                    self.stats.failed += 1
                    request.future.set_exception(error)
            return
        self.stats.batches += 1
        try:
            predictions = await loop.run_in_executor(None, call)
        except Exception as error:  # propagate to every live waiter in the round
            for request in group:
                if not request.future.done():
                    self.stats.failed += 1
                    request.future.set_exception(error)
            return
        for index, (request, prediction) in enumerate(zip(group, predictions)):
            if not request.future.done():
                granted = None if budgets is None else budgets[index]
                request.future.set_result((prediction, granted))
                self.stats.served += 1


# -- open-loop load driver --------------------------------------------------------------------
async def drive_open_loop(
    client: AsyncServingClient,
    stream: "DataStream",
    speed: float = 1.0,
    limit: Optional[int] = None,
    node_budget: object = _UNSET,
    deadline_ms: Optional[float] = None,
    tenant: Optional[str] = None,
) -> List[dict]:
    """Replay a :class:`~repro.stream.DataStream` against a client, open loop.

    Requests are fired at the stream's arrival timestamps (scaled by
    ``speed``; see :func:`repro.stream.aiter_items`) *without waiting for
    earlier responses* — the generator does not slow down when the server
    falls behind, which is what makes queue-full rejections, quota breaches
    and deadline misses observable.  Returns one record dict per stream item
    (``index``, ``arrival_time``, ``label``, ``status`` of ``"ok" |
    "deadline" | "quota" | "rejected" | "closed"``, and for served requests
    ``prediction``,
    ``node_budget``, ``latency_s``) suitable for
    :meth:`repro.evaluation.RequestTrace.from_records`.  When ``tenant`` is
    given, every request routes to that tenant's model and every record is
    tagged with a ``tenant`` key, so traces from a multi-tenant soak can be
    sliced per tenant.
    """
    from ..stream.load_gen import aiter_items

    records: List[dict] = []
    tasks: List[asyncio.Task] = []

    async def one(item: "StreamItem") -> None:
        record = {
            "index": item.index,
            "arrival_time": item.arrival_time,
            "label": item.label,
        }
        if tenant is not None:
            record["tenant"] = tenant
        try:
            result = await client.classify(
                item.features,
                node_budget=node_budget,
                deadline_ms=deadline_ms,
                detail=True,
                tenant=tenant,
            )
        except DeadlineExceededError:
            record.update(status="deadline")
        except QuotaExceededError:
            record.update(status="quota")
        except QueueFullError:
            record.update(status="rejected")
        except FrontendClosedError:
            record.update(status="closed")
        else:
            record.update(
                status="ok",
                prediction=result.prediction,
                node_budget=result.node_budget,
                latency_s=result.latency_s,
            )
        records.append(record)

    async for item in aiter_items(stream, speed=speed, limit=limit):
        tasks.append(asyncio.ensure_future(one(item)))
    if tasks:
        await asyncio.gather(*tasks)
    records.sort(key=lambda record: record["index"])
    return records


# -- HTTP shim --------------------------------------------------------------------------------
def _jsonable(value: object) -> object:
    """Coerce numpy scalars/arrays (labels, budgets) into JSON-able values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value)!r}")


class _HttpError(Exception):
    """Internal: an HTTP error response with status, stable code and message."""

    def __init__(self, status: int, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code if code is not None else ("not_found" if status == 404 else "bad_request")


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 64


class HttpFrontend:
    """Minimal stdlib HTTP/1.1 shim over an :class:`AsyncServingClient`.

    One JSON document per request and response body.  The **v1 surface** is
    tenant-scoped; the pre-v1 unversioned routes are kept as thin aliases
    onto the client's default tenant (same handlers, byte-identical
    payloads).

    ``POST /v1/tenants/{tenant}/classify`` (alias ``POST /classify``)
        Body ``{"features": [...], "node_budget": int | null | "adaptive",
        "deadline_ms": number}`` (budget and deadline optional).  Example
        response::

            {"prediction": 4, "node_budget": 8, "latency_ms": 1.93}

    ``POST /v1/tenants/{tenant}/classify_batch`` (alias ``POST /classify_batch``)
        Body ``{"features": [[...], ...], ...}`` — one budget/deadline for
        the whole block.  Example response::

            {"predictions": [4, 0, 9], "count": 3}

    ``POST /v1/tenants/{tenant}/swap`` (alias ``POST /swap``)
        Body ``{"snapshot_path": "..."}``; hot-swaps that tenant's model
        (engine swap for the engine-backed default tenant, registry load
        otherwise).  Example response::

            {"swapped": true, "tenant": "default", "snapshot_path": "/tmp/f.npz"}

    ``GET /v1/tenants/{tenant}/stats``
        That tenant's stats document (per-tenant nesting of the registry's
        ``stats_snapshot()``) plus its front-end admission view (queue
        depth, DRR weight/deficit, granted-round share, rejection mix).
        Example response::

            {"tenant": "acme", "resident": true, "shm_bytes": 1048576,
             "decay_rate": 0.01, "requests": 128, "cold_load_ms": 2.4,
             "policy": {"max_node_budget": 32, "pinned": false, ...},
             "admission": {"queue_depth": 3, "weight": 2.0, "deficit": 0.0,
                           "granted_round_share": 0.4,
                           "rejected_quota": 7, ...}, ...}

    ``GET /v1/registry``
        Registry-wide view: bounds, counters and the per-tenant nesting.
        Example response::

            {"schema_version": 2, "capacity": 4, "resident": 2,
             "resident_bytes": 2097152, "counters": {"loads": 7,
             "evictions": 3, ...}, "tenants": {"acme": {...}, ...}}

    ``POST /v1/registry/load`` / ``POST /v1/registry/evict``
        Body ``{"tenant": "acme", "snapshot_path": "..."}`` (path optional
        for registered tenants) / ``{"tenant": "acme"}``.  Load responds
        with the tenant's stats document; evict responds
        ``{"evicted": true, "tenant": "acme"}``.

    ``GET /healthz``
        Liveness plus deployment facts.  Example response::

            {"status": "ok", "snapshot_path": "/tmp/forest.npz",
             "multiprocess": false, "n_shards": 1, "tenants": 2}

    ``GET /stats``
        One merged document: ``schema_version``, the engine's
        ``stats_snapshot()`` (``null`` in registry-only mode), the
        front-end counters and, when a registry is configured, its
        tenant-nested snapshot.  Example response (abridged)::

            {"schema_version": 3,
             "engine": {"schema_version": 3, "requests": 512, "swaps": 1,
                        "mode": "zero_copy", "shm_bytes": 1048576, ...},
             "frontend": {"submitted": 512, "served": 510,
                          "rejected_queue_full": 2, "rejected_quota": 7,
                          "queue_depth": 0,
                          "arrival": {"rate_per_s": 350.0, ...},
                          "admission": {"rounds": 40, "tenants": {...}}, ...},
             "registry": {"schema_version": 3, "tenants": {...}, ...}}

    Every error, on every endpoint, uses one structured envelope
    (:func:`repro.serving.errors.error_envelope`)::

        {"error": {"code": "queue_full", "message": "...", "retry_after_ms": 50}}

    Backpressure, quotas and deadlines map onto status codes: a full queue
    (global or per-tenant) responds ``503``, a tenant over its
    ``requests_per_sec`` quota ``429``, a missed deadline ``504``, malformed
    requests (including malformed JSON bodies) ``400``, unknown tenants
    ``404``.  **Every 429 and 503 carries a ``Retry-After`` header** derived
    from the envelope's ``retry_after_ms``.  The server binds with :func:`asyncio.start_server`;
    no third-party HTTP stack is required (an ``aiohttp`` front could serve
    the same client, but the stdlib shim keeps the dependency surface at
    zero).

    Use as an async context manager, or call :meth:`start` / :meth:`aclose`.
    """

    def __init__(self, client: AsyncServingClient, host: str = "127.0.0.1", port: int = 0) -> None:
        self._client = client
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` picks a free port)."""
        if self._server is not None:
            raise RuntimeError("HTTP front-end already started")
        self._server = await asyncio.start_server(self._handle_connection, self._host, self._port)

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("HTTP front-end is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def aclose(self) -> None:
        """Stop accepting connections and wait for the server to close."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "HttpFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- connection handling ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                except _HttpError as error:
                    # Unparseable request: answer 400 and drop the connection
                    # (framing is unknown from here on) instead of letting the
                    # task die with no response on the wire.
                    status, payload = error_envelope(
                        error, code=error.code, status=error.status
                    )
                    await self._write_response(writer, status, payload, keep_alive=False)
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                try:
                    status, payload = await self._dispatch(method, path, body)
                except _HttpError as error:
                    status, payload = error_envelope(
                        error, code=error.code, status=error.status
                    )
                except Exception as error:  # noqa: BLE001 - survive handler bugs per-request
                    # One taxonomy for everything else: ServingError subclasses
                    # carry their own code/status/retry hint, the bad-request
                    # families map to 400, genuine bugs to a diagnosable 500.
                    status, payload = error_envelope(error)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - peer races
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "Optional[Tuple[str, str, dict, bytes]]":
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "invalid Content-Length header") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(400, "invalid request body length")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: dict, keep_alive: bool
    ) -> None:
        body = (json.dumps(payload, default=_jsonable) + "\n").encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if status in (429, 503):
            # Retry-After is whole seconds on the wire; the envelope's
            # retry_after_ms (present on every 429/503) keeps the precision.
            error_body = payload.get("error") if isinstance(payload.get("error"), dict) else {}
            retry_ms = error_body.get("retry_after_ms", 0) or 0
            headers.append(f"Retry-After: {max(0, int(round(retry_ms / 1000.0)))}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------------------------
    @staticmethod
    def _parse_body(body: bytes) -> dict:
        if not body:
            raise _HttpError(400, "missing JSON request body")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    @staticmethod
    def _budget_from(payload: dict) -> object:
        if "node_budget" not in payload:
            return _UNSET
        budget = payload["node_budget"]
        if budget is None:
            return None
        if budget == ADAPTIVE:
            return ADAPTIVE
        if isinstance(budget, bool) or not isinstance(budget, int) or budget < 1:
            raise _HttpError(400, 'node_budget must be a positive integer, null or "adaptive"')
        return budget

    @staticmethod
    def _tenant_route(path: str) -> "Optional[Tuple[str, str]]":
        """Split ``/v1/tenants/{tenant}/{action}`` into ``(tenant, action)``."""
        if not path.startswith("/v1/tenants/"):
            return None
        remainder = path[len("/v1/tenants/") :]
        tenant, separator, action = remainder.partition("/")
        if not tenant or not separator or not action or "/" in action:
            raise _HttpError(404, f"malformed tenant route {path!r}")
        return tenant, action

    def _registry_or_404(self) -> ModelRegistry:
        registry = self._client.registry
        if registry is None:
            raise _HttpError(404, "no model registry is configured on this server")
        return registry

    async def _handle_classify(self, tenant: Optional[str], body: bytes) -> "Tuple[int, dict]":
        payload = self._parse_body(body)
        result = await self._client.classify(
            np.asarray(payload["features"], dtype=float),
            node_budget=self._budget_from(payload),
            deadline_ms=payload.get("deadline_ms"),
            detail=True,
            tenant=tenant,
        )
        return 200, {
            "prediction": result.prediction,
            "node_budget": result.node_budget,
            "latency_ms": result.latency_s * 1e3,
        }

    async def _handle_classify_batch(
        self, tenant: Optional[str], body: bytes
    ) -> "Tuple[int, dict]":
        payload = self._parse_body(body)
        queries = np.asarray(payload["features"], dtype=float)
        predictions = await self._client.classify_batch(
            queries,
            node_budget=self._budget_from(payload),
            deadline_ms=payload.get("deadline_ms"),
            tenant=tenant,
        )
        return 200, {"predictions": predictions, "count": len(predictions)}

    async def _handle_swap(self, tenant: Optional[str], body: bytes) -> "Tuple[int, dict]":
        payload = self._parse_body(body)
        snapshot_path = str(payload["snapshot_path"])
        await self._client.swap_snapshot(snapshot_path, tenant=tenant)
        resolved = tenant if tenant is not None else self._client.default_tenant
        engine = self._client.engine
        if resolved == self._client.default_tenant and engine is not None:
            snapshot_path = engine.snapshot_path
        return 200, {"swapped": True, "tenant": resolved, "snapshot_path": snapshot_path}

    def _handle_tenant_stats(self, tenant: str) -> "Tuple[int, dict]":
        registry = self._client.registry
        if registry is not None and tenant in registry.known_tenants():
            stats = registry.tenant_stats(tenant)
            stats["admission"] = self._client.tenant_admission_snapshot(tenant)
            return 200, stats
        engine = self._client.engine
        if tenant == self._client.default_tenant and engine is not None:
            return 200, {
                "tenant": tenant,
                "resident": True,
                "snapshot_path": engine.snapshot_path,
                "engine": engine.stats_snapshot(),
                "admission": self._client.tenant_admission_snapshot(tenant),
            }
        raise _HttpError(404, f"tenant {tenant!r} is not registered", code="tenant_not_found")

    async def _dispatch(self, method: str, path: str, body: bytes) -> "Tuple[int, dict]":
        client = self._client
        tenant_route = self._tenant_route(path)
        if tenant_route is not None:
            tenant, action = tenant_route
            if action == "classify" and method == "POST":
                return await self._handle_classify(tenant, body)
            if action == "classify_batch" and method == "POST":
                return await self._handle_classify_batch(tenant, body)
            if action == "swap" and method == "POST":
                return await self._handle_swap(tenant, body)
            if action == "stats" and method == "GET":
                return self._handle_tenant_stats(tenant)
            raise _HttpError(404, f"no route for {method} {path}")
        if path == "/v1/registry" and method == "GET":
            return 200, self._registry_or_404().stats_snapshot()
        if path == "/v1/registry/load" and method == "POST":
            registry = self._registry_or_404()
            payload = self._parse_body(body)
            tenant_name = str(payload["tenant"])
            snapshot = payload.get("snapshot_path")
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(
                None,
                functools.partial(
                    registry.load,
                    tenant_name,
                    None if snapshot is None else str(snapshot),
                ),
            )
            return 200, stats
        if path == "/v1/registry/evict" and method == "POST":
            registry = self._registry_or_404()
            payload = self._parse_body(body)
            tenant_name = str(payload["tenant"])
            loop = asyncio.get_running_loop()
            evicted = await loop.run_in_executor(None, registry.evict, tenant_name)
            return 200, {"evicted": bool(evicted), "tenant": tenant_name}
        if path == "/healthz" and method == "GET":
            engine = client.engine
            health: dict = {"status": "ok"}
            if engine is not None:
                health.update(
                    snapshot_path=engine.snapshot_path,
                    multiprocess=engine.is_multiprocess,
                    n_shards=engine.n_shards,
                )
            if client.registry is not None:
                health["tenants"] = len(client.registry.known_tenants())
            return 200, health
        if path == "/stats" and method == "GET":
            engine = client.engine
            stats_doc: dict = {
                "schema_version": 3,
                "engine": engine.stats_snapshot() if engine is not None else None,
                "frontend": client.stats_snapshot(),
            }
            if client.registry is not None:
                stats_doc["registry"] = client.registry.stats_snapshot()
            return 200, stats_doc
        # Legacy unversioned aliases: same handlers, default tenant.
        if path == "/classify" and method == "POST":
            return await self._handle_classify(None, body)
        if path == "/classify_batch" and method == "POST":
            return await self._handle_classify_batch(None, body)
        if path == "/swap" and method == "POST":
            return await self._handle_swap(None, body)
        raise _HttpError(404, f"no route for {method} {path}")
