"""Multi-tenant model registry: many forests, one serving engine.

The paper's anytime Bayes forest is *one* classifier; production traffic from
millions of users means *many* — per-tenant models with independent
drift/decay clocks, loaded and retired on demand.  PR 6's flat snapshot
encoding made a per-tenant load nearly free (mmap the columns, copy into one
shared segment, wrap zero-copy views); this module adds the missing control
plane:

* **Per-tenant flat-snapshot entries.**  Each resident tenant owns one
  :class:`~repro.serving.shared_mem.SharedColumnStore` segment holding its
  flat forest columns plus a zero-copy :class:`~repro.core.flat.FlatForest`
  wrapper.  Classification goes through exactly the same lockstep drivers as
  single-tenant serving, so a tenant's anytime refinement traces
  (``classification_trace_hash``) are bit-identical to serving that tenant's
  snapshot alone.
* **LRU load/evict cache with bounded shared memory.**  At most ``capacity``
  tenants are resident, and their segments total at most ``capacity_bytes``.
  Loading past a bound evicts the least-recently-used tenants; an evicted
  tenant stays *registered* and transparently reloads on its next request
  (the measured cold-load path).  Eviction reuses the PR 6 swap discipline:
  it waits for the tenant's in-flight rounds to drain, then releases the
  registry's attachment and unlinks the segment via the store — the registry
  and the engine are the only modules allowed to trigger segment disposal
  (machine-checked by reprolint RL003).
* **Per-tenant decay clocks and budget policies.**  Every tenant's snapshot
  carries its own logical :class:`~repro.index.decay.DecayClock`, so tenants
  age and drift independently by construction; the registry surfaces each
  tenant's decay rate in its stats and applies a per-tenant
  :class:`TenantPolicy` (anytime budget clamp) at serving time.
* **Cold-start fallback.**  A request for a tenant the registry has never
  seen is served by a shared global *prior* forest (when configured) instead
  of failing — the personalisation story's "new user" path — and counted
  per tenant so promotion to a real model is observable.
* **One shared worker pool.**  With ``workers > 0`` all tenants share a
  single process pool; rounds are query-sharded across it and each worker
  keeps a small LRU of tenant segment attachments (attach once, serve many).
  ``workers=0`` (default) serves in-process through the identical code path.

Durability comes from :mod:`repro.persist.tenants`: a versioned JSON tenant
manifest maps names to snapshot paths and policies, and
:meth:`ModelRegistry.from_manifest` registers the whole catalogue lazily.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..core.classifier import AnytimeClassification
from ..core.flat import FlatForest
from ..persist import load_forest, read_flat_columns, read_manifest, read_tenant_manifest
from .errors import RegistryClosedError, TenantNotFoundError
from .shared_mem import SharedColumnStore, attach_columns, release_attachment

__all__ = ["ModelRegistry", "RegistryStats", "TenantPolicy"]

#: Per-query node budgets accepted by the tenant serving surface (mirrors
#: :data:`repro.serving.engine.BudgetSpec`).
BudgetSpec = Union[int, Sequence[int], np.ndarray]

#: Per-process attachment cache of the shared worker pool: ``shm name ->
#: (shm handle, FlatForest)``.  One worker process per pool slot, so a plain
#: module dict is per-worker state.
_POOL_STATE: dict = {}


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant serving policy applied by the registry at request time.

    Attributes
    ----------
    max_node_budget:
        Upper clamp on per-query anytime node budgets for this tenant
        (``None`` = unclamped).  Full-refinement requests (``node_budget is
        None``) are never clamped — they are exact by definition; the clamp
        bounds how much *anytime* refinement a tenant may buy per query, the
        budget-fairness knob between tenants sharing one worker pool.
    pinned:
        A pinned tenant is exempt from LRU eviction (it still counts against
        the capacity bounds and is disposed on :meth:`ModelRegistry.close`).
    weight:
        The tenant's deficit-round-robin scheduling weight in the front-end
        admission layer (:mod:`repro.serving.admission`).  Under contention,
        a tenant's share of served requests is proportional to its weight;
        must be positive (a zero weight could never earn scheduling credit).
    max_queue_depth:
        Per-tenant bound on requests queued in the front-end (``None`` =
        only the global ``max_pending`` bound applies).  A hot tenant that
        fills its own queue gets a per-tenant 503 without consuming the
        shared queue space other tenants need.
    requests_per_sec:
        Token-bucket quota on the tenant's sustained offered rate (``None``
        = unlimited).  Breaches reject with the enveloped HTTP 429
        (:class:`~repro.serving.errors.QuotaExceededError`) and a
        ``Retry-After`` computed from the refill rate.
    """

    max_node_budget: Optional[int] = None
    pinned: bool = False
    weight: float = 1.0
    max_queue_depth: Optional[int] = None
    requests_per_sec: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_node_budget is not None and self.max_node_budget < 1:
            raise ValueError("max_node_budget must be at least 1 (or None)")
        if not self.weight > 0:
            raise ValueError("weight must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 (or None)")
        if self.requests_per_sec is not None and not self.requests_per_sec > 0:
            raise ValueError("requests_per_sec must be positive (or None)")

    def to_dict(self) -> dict:
        """Plain-JSON form (the tenant-manifest ``policy`` entry)."""
        return {
            "max_node_budget": self.max_node_budget,
            "pinned": self.pinned,
            "weight": self.weight,
            "max_queue_depth": self.max_queue_depth,
            "requests_per_sec": self.requests_per_sec,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TenantPolicy":
        """Validate and build a policy from a tenant-manifest ``policy`` dict.

        Manifests written before the admission-control fields existed (only
        ``max_node_budget``/``pinned``) load unchanged — absent keys take
        the dataclass defaults.
        """
        unknown = sorted(
            set(data)
            - {"max_node_budget", "pinned", "weight", "max_queue_depth", "requests_per_sec"}
        )
        if unknown:
            raise ValueError(f"unknown tenant policy keys: {unknown}")
        budget = data.get("max_node_budget")
        depth = data.get("max_queue_depth")
        rate = data.get("requests_per_sec")
        return cls(
            max_node_budget=None if budget is None else int(budget),  # type: ignore[call-overload]
            pinned=bool(data.get("pinned", False)),
            weight=float(data.get("weight", 1.0)),  # type: ignore[arg-type]
            max_queue_depth=None if depth is None else int(depth),  # type: ignore[call-overload]
            requests_per_sec=None if rate is None else float(rate),  # type: ignore[arg-type]
        )


@dataclass
class RegistryStats:
    """Registry-wide counters (loads, evictions, swaps, serving rounds).

    Attributes
    ----------
    requests / batches:
        Queries accepted and scatter rounds executed, summed over tenants.
    loads:
        Completed segment builds — initial loads plus cold reloads.
    reloads:
        The subset of ``loads`` that re-materialised an evicted tenant on
        demand (the measured cold-start-latency path).
    evictions:
        Completed drain-and-unlink evictions (LRU pressure or explicit).
    swaps:
        In-place snapshot replacements of a resident tenant.
    cold_start_requests:
        Queries served by the shared global prior forest because the tenant
        was unregistered.
    """

    requests: int = 0
    batches: int = 0
    loads: int = 0
    reloads: int = 0
    evictions: int = 0
    swaps: int = 0
    cold_start_requests: int = 0


@dataclass
class _TenantEntry:
    """One resident tenant: its segment, zero-copy forest and counters."""

    tenant: str
    snapshot_path: str
    policy: TenantPolicy
    store: SharedColumnStore
    shm: object
    forest: Optional[FlatForest]
    spec: dict
    dimension: int
    n_classes: int
    decay_rate: float
    cold_load_ms: float
    active: int = 0
    requests: int = 0
    batches: int = 0
    loaded_generation: int = 0
    last_round_s: float = 0.0


@dataclass
class _TenantSpec:
    """Registration record of a known (possibly non-resident) tenant."""

    snapshot_path: str
    policy: TenantPolicy
    loads: int = 0
    cold_starts: int = 0


def _pool_initializer(cache_size: int) -> None:
    """Initialise a shared-pool worker's attachment cache."""
    _POOL_STATE["cache"] = OrderedDict()
    _POOL_STATE["cache_size"] = int(cache_size)


def _pool_forest(spec: dict) -> FlatForest:
    """This worker's zero-copy forest for a tenant spec (attach-once LRU).

    Keyed by segment name: a tenant reload builds a *new* segment, so stale
    cache entries for disposed segments simply age out (their mapping stays
    valid until closed — POSIX keeps unlinked segments alive for attached
    processes, which is what makes engine-side eviction safe mid-round).
    """
    cache: "OrderedDict[str, Tuple[object, FlatForest]]" = _POOL_STATE.setdefault(
        "cache", OrderedDict()
    )
    key = spec["shm_name"]
    cached = cache.get(key)
    if cached is not None:
        cache.move_to_end(key)
        return cached[1]
    shm, columns = attach_columns(spec["shm_name"], spec["layout"])
    forest = FlatForest.from_columns(
        columns,
        labels=spec["labels"],
        descent=spec["descent"],
        qbk_k=spec["qbk_k"],
        dimension=spec["dimension"],
    )
    cache[key] = (shm, forest)
    limit = int(_POOL_STATE.get("cache_size", 8))
    while len(cache) > limit:
        _, (old_shm, old_forest) = cache.popitem(last=False)
        del old_forest
        release_attachment(old_shm)  # type: ignore[arg-type]
    return forest


def _pool_predict(
    spec: dict, queries: np.ndarray, budgets: Optional[np.ndarray]
) -> List[Hashable]:
    """Serve one query slice for one tenant inside a pool worker."""
    forest = _pool_forest(spec)
    if budgets is None:
        return forest.predict_batch(queries)
    results = forest.classify_anytime_batch(queries, max_nodes=budgets, record_history=False)
    return [result.final_prediction for result in results]


class ModelRegistry:
    """Serve many independent forest snapshots from one shared engine.

    Parameters
    ----------
    capacity:
        Maximum number of resident tenants (the LRU bound); at least 1.
    capacity_bytes:
        Optional bound on the summed size of resident tenants' shared-memory
        segments.  Loading past it evicts LRU tenants first; the most
        recently loaded tenant is always kept (a single model larger than
        the bound still serves).
    prior_snapshot:
        Optional shared global-prior snapshot.  Requests for *unregistered*
        tenants are served by this forest (cold-start fallback) instead of
        raising :class:`~repro.serving.TenantNotFoundError`.
    workers:
        Size of the shared process pool.  ``0`` (default) serves in-process;
        ``N > 0`` query-shards every round across one pool shared by all
        tenants, each worker keeping an LRU of segment attachments.
    mp_context:
        Optional multiprocessing start method for the pool.
    worker_cache_size:
        Per-worker attachment-cache bound (defaults to ``capacity + 1`` so a
        steady-state worker can hold every resident tenant plus the prior).

    Thread safety: all public methods may be called concurrently; eviction
    and per-tenant snapshot swaps wait for that tenant's in-flight rounds to
    drain (the PR 6 swap discipline) and never tear a round across two
    snapshots.
    """

    def __init__(
        self,
        capacity: int = 4,
        capacity_bytes: Optional[int] = None,
        prior_snapshot: "str | Path | None" = None,
        workers: int = 0,
        mp_context: Optional[str] = None,
        worker_cache_size: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive (or None)")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.capacity = int(capacity)
        self.capacity_bytes = None if capacity_bytes is None else int(capacity_bytes)
        self.stats = RegistryStats()
        self._cond = threading.Condition()
        self._entries: "OrderedDict[str, _TenantEntry]" = OrderedDict()
        self._known: Dict[str, _TenantSpec] = {}
        self._busy: Set[str] = set()  # tenants mid-load/evict/swap: acquires park
        self._generation = 0
        self._closed = False
        self._node_cost_ewma: Optional[float] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0
        if workers > 0:
            cache_size = int(worker_cache_size or (self.capacity + 1))
            self._spin_up_pool(int(workers), mp_context, cache_size)
        self._prior: Optional[_TenantEntry] = None
        if prior_snapshot is not None:
            self._prior = self._build_entry(
                "__prior__", str(prior_snapshot), TenantPolicy(pinned=True)
            )

    @classmethod
    def from_manifest(cls, manifest_path: "str | Path", **kwargs: object) -> "ModelRegistry":
        """Build a registry from a persisted tenant manifest.

        Every catalogued tenant is *registered* (lazily resident: its model
        loads on first use, within the LRU bounds) and the manifest's
        ``prior_snapshot`` becomes the cold-start fallback unless the caller
        overrides it via ``kwargs``.  See
        :func:`repro.persist.read_tenant_manifest` for the document format.
        """
        catalogue = read_tenant_manifest(manifest_path)
        if "prior_snapshot" not in kwargs and catalogue["prior_snapshot"] is not None:
            kwargs["prior_snapshot"] = catalogue["prior_snapshot"]
        registry = cls(**kwargs)  # type: ignore[arg-type]
        for tenant, entry in catalogue["tenants"].items():
            registry.register(
                tenant, entry["snapshot"], policy=TenantPolicy.from_dict(entry["policy"])
            )
        return registry

    # -- lifecycle ---------------------------------------------------------------------------
    def close(self) -> None:
        """Evict every tenant (and the prior), dispose all segments, stop the pool."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for tenant in list(self.resident_tenants()):
            self.evict(tenant, _count=False)
        if self._prior is not None:
            with self._cond:
                while self._prior.active > 0:
                    self._cond.wait()
            self._destroy_entry(self._prior)
            self._prior = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- registration and residency ----------------------------------------------------------
    def register(
        self, tenant: str, snapshot_path: "str | Path", policy: Optional[TenantPolicy] = None
    ) -> None:
        """Register a tenant's snapshot without making it resident.

        The model loads lazily on the tenant's first request (within the LRU
        bounds).  Re-registering an absent tenant updates its path/policy;
        re-registering a *resident* tenant with a different path is a swap —
        use :meth:`load` for that (this method raises ``ValueError`` to keep
        registration side-effect-free).
        """
        name = self._valid_tenant(tenant)
        resolved = TenantPolicy() if policy is None else policy
        with self._cond:
            entry = self._entries.get(name)
            if entry is not None and entry.snapshot_path != str(snapshot_path):
                raise ValueError(
                    f"tenant {name!r} is resident on a different snapshot; "
                    "use load() to swap it"
                )
            if entry is not None:
                entry.policy = resolved
            spec = self._known.get(name)
            if spec is None:
                self._known[name] = _TenantSpec(str(snapshot_path), resolved)
            else:
                spec.snapshot_path = str(snapshot_path)
                spec.policy = resolved

    def load(
        self,
        tenant: str,
        snapshot_path: "str | Path | None" = None,
        policy: Optional[TenantPolicy] = None,
    ) -> dict:
        """Make a tenant resident (registering it first if needed).

        Idempotent for a tenant already resident on the same snapshot (the
        call only refreshes its LRU position).  A resident tenant loaded
        with a *different* snapshot path is hot-swapped: the new segment is
        built first, in-flight rounds drain, and only then is the old
        segment unlinked — no round ever tears across two snapshots.
        Returns the tenant's stats dict (including ``cold_load_ms`` for
        fresh loads).

        Raises
        ------
        ValueError
            For an invalid tenant name, or when ``snapshot_path`` is omitted
            for an unregistered tenant.
        repro.persist.SnapshotError
            When the container is unreadable.
        """
        name = self._valid_tenant(tenant)
        with self._cond:
            self._ensure_open()
            known = self._known.get(name)
            if snapshot_path is None:
                if known is None:
                    raise ValueError(
                        f"tenant {name!r} is not registered; pass snapshot_path"
                    )
                snapshot_path = known.snapshot_path
            path = str(snapshot_path)
            resolved_policy = policy if policy is not None else (
                known.policy if known is not None else TenantPolicy()
            )
            if known is None:
                known = _TenantSpec(path, resolved_policy)
                self._known[name] = known
            else:
                known.snapshot_path = path
                known.policy = resolved_policy
            entry = self._entries.get(name)
            if entry is not None and entry.snapshot_path == path:
                # Double-load idempotence: touch the LRU, update the policy.
                entry.policy = resolved_policy
                self._entries.move_to_end(name)
                return self._tenant_stats_locked(name)
            self._wait_not_busy(name)
            self._busy.add(name)
            swapping = name in self._entries
        try:
            new_entry = self._build_entry(name, path, resolved_policy)
        except BaseException:
            with self._cond:
                self._busy.discard(name)
                self._cond.notify_all()
            raise
        evicted: List[_TenantEntry] = []
        with self._cond:
            old = self._entries.pop(name, None)
            if old is not None:
                while old.active > 0:
                    self._cond.wait()
            self._entries[name] = new_entry
            known.loads += 1
            self.stats.loads += 1
            if swapping:
                self.stats.swaps += 1
            evicted = self._evict_overflow_locked(keep=name)
            self._busy.discard(name)
            self._cond.notify_all()
            result = self._tenant_stats_locked(name)
        if old is not None:
            self._destroy_entry(old)
        for victim in evicted:
            self._destroy_entry(victim)
        return result

    def evict(self, tenant: str, _count: bool = True) -> bool:
        """Evict a tenant's model, unlinking its segment after rounds drain.

        The tenant stays registered: its next request transparently reloads
        the snapshot (cold start).  Returns ``False`` when the tenant was
        not resident.  Blocks until the tenant's in-flight serving rounds
        complete — the caller observes the segment gone, not merely doomed.
        """
        name = self._valid_tenant(tenant)
        with self._cond:
            self._wait_not_busy(name)
            entry = self._entries.get(name)
            if entry is None:
                return False
            self._busy.add(name)
            while entry.active > 0:
                self._cond.wait()
            self._entries.pop(name, None)
            if _count:
                self.stats.evictions += 1
            self._busy.discard(name)
            self._cond.notify_all()
        self._destroy_entry(entry)
        return True

    def resident_tenants(self) -> List[str]:
        """Resident tenant names in LRU order (least recently used first)."""
        with self._cond:
            return list(self._entries)

    def known_tenants(self) -> List[str]:
        """Every registered tenant name (resident or not), sorted."""
        with self._cond:
            return sorted(self._known)

    def memory_bytes(self) -> int:
        """Total bytes of resident shared-memory segments (including the prior)."""
        with self._cond:
            total = sum(entry.store.size for entry in self._entries.values())
            if self._prior is not None:
                total += self._prior.store.size
            return total

    def expected_dimension(self, tenant: str) -> Optional[int]:
        """The feature dimension a tenant's requests must have, if known now.

        Advisory (no residency is triggered): the resident entry's dimension,
        else the prior's for unregistered tenants, else ``None`` — callers
        without an answer defer validation to the serving round.
        """
        with self._cond:
            entry = self._entries.get(tenant)
            if entry is not None:
                return entry.dimension
            if tenant not in self._known and self._prior is not None:
                return self._prior.dimension
            return None

    def node_cost_estimate(self) -> Optional[float]:
        """EWMA seconds per lockstep node read over budgeted rounds (or ``None``)."""
        with self._cond:
            return self._node_cost_ewma

    def tenant_policy(self, tenant: str) -> Optional[TenantPolicy]:
        """The registered policy of ``tenant``, or ``None`` when unregistered.

        Advisory and side-effect free (no residency is triggered): the
        front-end admission layer reads the DRR ``weight``,
        ``max_queue_depth`` and ``requests_per_sec`` fields from here on
        every request, so policy changes via :meth:`register`/:meth:`load`
        apply to the very next admission decision.
        """
        with self._cond:
            spec = self._known.get(tenant)
            return spec.policy if spec is not None else None

    # -- serving -----------------------------------------------------------------------------
    def predict_batch(
        self,
        tenant: str,
        queries: np.ndarray,
        node_budget: "Optional[BudgetSpec]" = None,
    ) -> List[Hashable]:
        """Predict labels for one tenant's query block.

        ``node_budget=None`` runs full refinement; an int (or per-query
        sequence) runs the anytime lockstep path, clamped by the tenant's
        :class:`TenantPolicy.max_node_budget`.  A registered-but-evicted
        tenant is reloaded first (cold start); an unregistered tenant is
        served by the shared prior forest when one is configured, else
        :class:`~repro.serving.TenantNotFoundError` is raised.  Predictions
        are bit-identical to serving the tenant's snapshot alone.
        """
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("queries must be an (m, dimension) array")
        entry = self._acquire(tenant)
        self._note_cold_start(entry, queries.shape[0])
        start = time.perf_counter()
        try:
            if queries.shape[1] != entry.dimension:
                raise ValueError(f"queries must be an (m, {entry.dimension}) array")
            budgets = self._resolve_budgets(queries.shape[0], node_budget, entry.policy)
            if queries.shape[0] == 0:
                return []
            if self._pool is not None:
                predictions = self._pool_round(entry, queries, budgets)
            else:
                forest = entry.forest
                assert forest is not None  # entries hold a forest until destroyed
                if budgets is None:
                    predictions = forest.predict_batch(queries)
                else:
                    results = forest.classify_anytime_batch(
                        queries, max_nodes=budgets, record_history=False
                    )
                    predictions = [result.final_prediction for result in results]
            self._observe_round(entry, queries.shape[0], time.perf_counter() - start, budgets)
            return predictions
        finally:
            self._release(entry)

    def classify_anytime_batch(
        self,
        tenant: str,
        queries: np.ndarray,
        max_nodes: "BudgetSpec",
        record_history: bool = True,
    ) -> List[AnytimeClassification]:
        """Full anytime results (with refinement history) for one tenant.

        The in-process analogue of :meth:`predict_batch`'s budgeted path,
        returning the :class:`~repro.core.classifier.AnytimeClassification`
        objects whose histories feed ``classification_trace_hash`` — the
        hook the trace-identity tests and benches pin multi-tenant serving
        with.  Budgets are clamped by the tenant policy exactly as in
        :meth:`predict_batch`.
        """
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("queries must be an (m, dimension) array")
        entry = self._acquire(tenant)
        self._note_cold_start(entry, queries.shape[0])
        try:
            if queries.shape[1] != entry.dimension:
                raise ValueError(f"queries must be an (m, {entry.dimension}) array")
            budgets = self._resolve_budgets(queries.shape[0], max_nodes, entry.policy)
            assert budgets is not None
            forest = entry.forest
            assert forest is not None
            return forest.classify_anytime_batch(
                queries, max_nodes=budgets, record_history=record_history
            )
        finally:
            self._release(entry)

    # -- observability -----------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """One consistent JSON-able view: registry bounds, counters, tenants.

        The ``tenants`` mapping nests one stats dict per *registered* tenant
        (resident or not) — the per-tenant nesting the v1 ``/stats`` schema
        exposes.  ``schema_version`` stamps the document shape.
        """
        with self._cond:
            tenants = {name: self._tenant_stats_locked(name) for name in sorted(self._known)}
            resident_bytes = sum(entry.store.size for entry in self._entries.values())
            snapshot = {
                "schema_version": 3,
                "capacity": self.capacity,
                "capacity_bytes": self.capacity_bytes,
                "resident": len(self._entries),
                "registered": len(self._known),
                "resident_bytes": resident_bytes,
                "workers": self._pool_size,
                "node_cost_s": self._node_cost_ewma,
                "counters": {
                    "requests": self.stats.requests,
                    "batches": self.stats.batches,
                    "loads": self.stats.loads,
                    "reloads": self.stats.reloads,
                    "evictions": self.stats.evictions,
                    "swaps": self.stats.swaps,
                    "cold_start_requests": self.stats.cold_start_requests,
                },
                "tenants": tenants,
                "prior": None,
            }
            if self._prior is not None:
                snapshot["prior"] = {
                    "snapshot_path": self._prior.snapshot_path,
                    "shm_bytes": self._prior.store.size,
                    "requests": self._prior.requests,
                }
            return snapshot

    def tenant_stats(self, tenant: str) -> dict:
        """The stats dict of one registered tenant (see :meth:`stats_snapshot`)."""
        with self._cond:
            if tenant not in self._known:
                raise TenantNotFoundError(f"tenant {tenant!r} is not registered")
            return self._tenant_stats_locked(tenant)

    # -- internals ---------------------------------------------------------------------------
    @staticmethod
    def _valid_tenant(tenant: str) -> str:
        if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
            raise ValueError("tenant must be a non-empty string of at most 128 characters")
        return tenant

    def _ensure_open(self) -> None:
        if self._closed:
            raise RegistryClosedError("model registry is closed")

    def _wait_not_busy(self, tenant: str) -> None:
        while tenant in self._busy:
            self._cond.wait()

    def _spin_up_pool(self, workers: int, mp_context: Optional[str], cache_size: int) -> None:
        context = get_context(mp_context) if mp_context else None
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_pool_initializer,
                initargs=(cache_size,),
            )
            # Force worker start-up now so pool failures surface here, not on
            # the first tenant's critical path.
            for future in [pool.submit(int, 0) for _ in range(workers)]:
                future.result()
        except Exception as error:  # pragma: no cover - environment dependent
            warnings.warn(
                f"registry worker pool unavailable ({error!r}); "
                "falling back to in-process serving",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        self._pool = pool
        self._pool_size = workers

    def _build_entry(self, tenant: str, path: str, policy: TenantPolicy) -> _TenantEntry:
        """Materialise a tenant: snapshot columns -> shared segment -> forest."""
        start = time.perf_counter()
        manifest = read_manifest(path)
        if manifest.get("has_flat"):
            columns = read_flat_columns(path, mmap=True)
        else:
            columns = FlatForest.from_classifier(load_forest(path)).to_columns()
        store = SharedColumnStore(columns)
        del columns  # drop the mmap references; the segment owns the bytes now
        shm, views = attach_columns(store.name, store.layout)
        forest = FlatForest.from_columns(
            views,
            labels=manifest["classes"],
            descent=manifest["descent"],
            qbk_k=manifest["qbk_k"],
            dimension=int(manifest["dimension"]),
        )
        config = manifest.get("config") or {}
        self._generation += 1
        return _TenantEntry(
            tenant=tenant,
            snapshot_path=path,
            policy=policy,
            store=store,
            shm=shm,
            forest=forest,
            spec={
                "tenant": tenant,
                "shm_name": store.name,
                "layout": store.layout,
                "labels": manifest["classes"],
                "descent": manifest["descent"],
                "qbk_k": manifest["qbk_k"],
                "dimension": int(manifest["dimension"]),
            },
            dimension=int(manifest["dimension"]),
            n_classes=len(manifest["classes"]),
            decay_rate=float(config.get("decay_rate", 0.0)),
            cold_load_ms=(time.perf_counter() - start) * 1e3,
            loaded_generation=self._generation,
        )

    def _destroy_entry(self, entry: _TenantEntry) -> None:
        """Release the registry's attachment and unlink the tenant's segment.

        The zero-copy forest holds views into the attachment, so references
        are dropped first; the store's dispose is the segment's single
        unlink (reprolint RL003 allows it exactly here and in the engine).
        """
        entry.forest = None
        entry.spec = {}
        release_attachment(entry.shm)  # type: ignore[arg-type]
        entry.shm = None
        entry.store.dispose()

    def _evict_overflow_locked(self, keep: str) -> List[_TenantEntry]:
        """Pop LRU entries past the capacity bounds (caller disposes them).

        Called with the condition held.  ``keep`` (the just-loaded tenant)
        and pinned tenants are never chosen; each victim's in-flight rounds
        are drained before it is popped, preserving the swap discipline.
        """
        victims: List[_TenantEntry] = []
        while True:
            over_count = len(self._entries) > self.capacity
            over_bytes = (
                self.capacity_bytes is not None
                and sum(entry.store.size for entry in self._entries.values())
                > self.capacity_bytes
                and len(self._entries) > 1
            )
            if not (over_count or over_bytes):
                return victims
            victim_name = next(
                (
                    name
                    for name, entry in self._entries.items()
                    if name != keep and not entry.policy.pinned
                ),
                None,
            )
            if victim_name is None:
                return victims
            victim = self._entries[victim_name]
            self._busy.add(victim_name)
            while victim.active > 0:
                self._cond.wait()
            self._entries.pop(victim_name, None)
            self._busy.discard(victim_name)
            self.stats.evictions += 1
            victims.append(victim)
            self._cond.notify_all()

    def _acquire(self, tenant: str) -> _TenantEntry:
        """Pin a servable entry for one round (reload / prior fallback inside)."""
        name = self._valid_tenant(tenant)
        while True:
            with self._cond:
                self._ensure_open()
                if name in self._busy:
                    self._cond.wait()
                    continue
                entry = self._entries.get(name)
                if entry is not None:
                    self._entries.move_to_end(name)
                    entry.active += 1
                    return entry
                known = self._known.get(name)
                if known is None:
                    if self._prior is None:
                        raise TenantNotFoundError(
                            f"tenant {name!r} is not registered and no prior "
                            "snapshot is configured for cold-start fallback"
                        )
                    self._prior.active += 1
                    return self._prior
            # Registered but evicted: reload outside the lock, then retry.
            self._reload(name)

    def _reload(self, tenant: str) -> None:
        """Cold-reload a registered tenant that LRU pressure evicted."""
        with self._cond:
            self._wait_not_busy(tenant)
            if tenant in self._entries or tenant not in self._known:
                return
            spec = self._known[tenant]
            self._busy.add(tenant)
        try:
            entry = self._build_entry(tenant, spec.snapshot_path, spec.policy)
        except BaseException:
            with self._cond:
                self._busy.discard(tenant)
                self._cond.notify_all()
            raise
        with self._cond:
            self._entries[tenant] = entry
            spec.loads += 1
            self.stats.loads += 1
            self.stats.reloads += 1
            evicted = self._evict_overflow_locked(keep=tenant)
            self._busy.discard(tenant)
            self._cond.notify_all()
        for victim in evicted:
            self._destroy_entry(victim)

    def _note_cold_start(self, entry: _TenantEntry, count: int) -> None:
        if entry is self._prior:
            with self._cond:
                self.stats.cold_start_requests += count

    def _release(self, entry: _TenantEntry) -> None:
        with self._cond:
            entry.active -= 1
            self._cond.notify_all()

    @staticmethod
    def _resolve_budgets(
        count: int, node_budget: "Optional[BudgetSpec]", policy: TenantPolicy
    ) -> Optional[np.ndarray]:
        """Per-query budget array for a round, clamped by the tenant policy."""
        if node_budget is None:
            return None
        budgets = np.asarray(node_budget)
        if budgets.ndim == 0:
            budgets = np.full(count, int(node_budget))  # type: ignore[arg-type]
        elif budgets.shape != (count,):
            raise ValueError("per-query node_budget must have one budget per query")
        if np.any(budgets < 1):
            raise ValueError("node budgets must be at least 1")
        if policy.max_node_budget is not None:
            budgets = np.minimum(budgets, policy.max_node_budget)
        return budgets.astype(np.int64, copy=False)

    def _pool_round(
        self, entry: _TenantEntry, queries: np.ndarray, budgets: Optional[np.ndarray]
    ) -> List[Hashable]:
        """Query-shard one tenant round across the shared worker pool."""
        pool = self._pool
        assert pool is not None
        shards = max(1, min(self._pool_size, queries.shape[0]))
        query_slices = np.array_split(queries, shards)
        budget_slices: List[Optional[np.ndarray]]
        if budgets is None:
            budget_slices = [None] * shards
        else:
            budget_slices = list(np.array_split(budgets, shards))
        futures = [
            pool.submit(_pool_predict, entry.spec, query_slices[shard], budget_slices[shard])
            for shard in range(shards)
        ]
        predictions: List[Hashable] = []
        for future in futures:
            predictions.extend(future.result())
        return predictions

    def _observe_round(
        self,
        entry: _TenantEntry,
        count: int,
        elapsed: float,
        budgets: Optional[np.ndarray],
    ) -> None:
        with self._cond:
            self.stats.requests += count
            self.stats.batches += 1
            entry.requests += count
            entry.batches += 1
            entry.last_round_s = elapsed
            if budgets is None or budgets.size == 0:
                return
            steps = int(np.max(budgets))
            if steps < 1:
                return
            cost = elapsed / steps
            if self._node_cost_ewma is None:
                self._node_cost_ewma = cost
            else:
                self._node_cost_ewma += 0.3 * (cost - self._node_cost_ewma)

    def _tenant_stats_locked(self, tenant: str) -> dict:
        """Per-tenant stats dict (caller holds the condition)."""
        known = self._known.get(tenant)
        entry = self._entries.get(tenant)
        stats: dict = {
            "tenant": tenant,
            "resident": entry is not None,
            "snapshot_path": entry.snapshot_path if entry is not None else (
                known.snapshot_path if known is not None else None
            ),
            "policy": (
                entry.policy if entry is not None else (
                    known.policy if known is not None else TenantPolicy()
                )
            ).to_dict(),
            "loads": known.loads if known is not None else (1 if entry is not None else 0),
        }
        if entry is not None:
            stats.update(
                {
                    "shm_name": entry.store.name,
                    "shm_bytes": entry.store.size,
                    "dimension": entry.dimension,
                    "n_classes": entry.n_classes,
                    "decay_rate": entry.decay_rate,
                    "cold_load_ms": entry.cold_load_ms,
                    "requests": entry.requests,
                    "batches": entry.batches,
                    "in_flight": entry.active,
                }
            )
        return stats
