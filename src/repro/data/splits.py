"""Cross-validation splits.

The paper performs 4-fold cross validation and reports "the classification
accuracy after each node averaged over the four folds" (§3.2).  The stratified
k-fold splitter here keeps the class proportions of every fold close to the
full data set, which matters for the small scaled-down data sets used in the
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["Fold", "stratified_k_fold"]


@dataclass(frozen=True)
class Fold:
    """Index arrays of one cross-validation fold."""

    train_indices: np.ndarray
    test_indices: np.ndarray


def stratified_k_fold(
    labels: np.ndarray,
    n_folds: int = 4,
    random_state: Optional[int] = None,
) -> List[Fold]:
    """Stratified k-fold split over the given label vector.

    Every class's objects are shuffled and dealt to the folds round-robin, so
    each fold holds roughly ``1/k`` of every class.  Raises if a class has
    fewer objects than folds (it could not appear in every training split).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] == 0:
        raise ValueError("labels must be a non-empty 1-d array")
    if n_folds < 2:
        raise ValueError("n_folds must be at least 2")
    rng = np.random.default_rng(random_state)

    fold_members: List[List[int]] = [[] for _ in range(n_folds)]
    for label in np.unique(labels):
        indices = np.where(labels == label)[0]
        if len(indices) < n_folds:
            raise ValueError(
                f"class {label!r} has only {len(indices)} objects; need at least {n_folds} "
                "for stratified k-fold"
            )
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            fold_members[position % n_folds].append(int(index))

    folds: List[Fold] = []
    all_indices = set(range(labels.shape[0]))
    for members in fold_members:
        test = np.array(sorted(members), dtype=int)
        train = np.array(sorted(all_indices - set(members)), dtype=int)
        folds.append(Fold(train_indices=train, test_indices=test))
    return folds
