"""Synthetic stand-ins for the paper's evaluation data sets (Table 1).

The paper evaluates on four data sets from the UCI KDD archive and the ICML
2004 physiological data modeling contest:

=========  =======  =======  ========
name       size     classes  features
=========  =======  =======  ========
Pendigits  10,992   10       16
Letter     20,000   26       16
Gender     189,961  2        9
Covertype  581,012  7        10
=========  =======  =======  ========

Those archives are not available in this offline environment, so we generate
*synthetic equivalents* with the same number of classes and features.  Two
properties of the real data matter for reproducing the paper's behaviour and
are modelled explicitly (see DESIGN.md, substitutions):

* the attributes are strongly correlated — pendigits and letter are derived
  from pen trajectories / letter images — so the class structure lives on a
  low-dimensional manifold.  We sample every class in a ``latent_dim``
  dimensional latent space and embed it into the full feature space with a
  random orthogonal projection plus small ambient noise, which keeps
  nearest-neighbour distances (and therefore kernel density estimation, the
  heart of the Bayes tree) behaving like on real data instead of suffering
  the curse of dimensionality of isotropic 16-d noise;
* the class-conditional densities are *not* low-order Gaussian mixtures —
  they are curved trajectory-like shapes — so coarse Gaussian summaries are
  only approximations and refining the model towards the kernel level
  genuinely improves classification, which is exactly the effect the paper's
  anytime curves measure.  Each class is therefore generated along a random
  smooth curve (sinusoidal in every latent dimension) with Gaussian noise
  around it; classes overlap where their curves pass close to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "make_dataset",
    "make_curve_dataset",
    "make_blobs",
    "make_drift_stream",
]


@dataclass
class Dataset:
    """A labelled data set plus the metadata reported in the paper's Table 1."""

    name: str
    features: np.ndarray
    labels: np.ndarray
    n_classes: int

    @property
    def size(self) -> int:
        """Number of rows (labelled objects) in the data set."""
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Dimensionality of the feature vectors."""
        return int(self.features.shape[1])

    def tail(self, start: int) -> "Dataset":
        """The holdout tail from row ``start`` on, as a dataset of its own.

        Keeps name and class count; the standard way to carve a serving /
        load-generation slice off a train prefix.
        """
        return type(self)(self.name, self.features[start:], self.labels[start:], self.n_classes)

    def summary_row(self) -> Dict[str, object]:
        """The row of Table 1 this data set corresponds to."""
        return {
            "name": self.name,
            "size": self.size,
            "classes": self.n_classes,
            "features": self.n_features,
        }

    def split(self, fraction: float, rng: np.random.Generator) -> tuple["Dataset", "Dataset"]:
        """Random split into two datasets (e.g. train/test)."""
        if not (0.0 < fraction < 1.0):
            raise ValueError("fraction must be in (0, 1)")
        order = rng.permutation(self.size)
        cut = int(round(fraction * self.size))
        first, second = order[:cut], order[cut:]
        return (
            Dataset(self.name, self.features[first], self.labels[first], self.n_classes),
            Dataset(self.name, self.features[second], self.labels[second], self.n_classes),
        )


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in data set.

    ``class_separation``, ``curve_amplitude`` and ``noise_scale`` are latent
    space quantities: class curve centers are drawn with standard deviation
    ``class_separation``, the curve of every class swings with amplitude
    ``curve_amplitude`` in each latent dimension, and points scatter around
    the curve with standard deviation ``noise_scale``.  The latent points are
    embedded into ``n_features`` dimensions by a random orthogonal map plus
    ambient noise of standard deviation ``ambient_noise``.
    """

    name: str
    paper_size: int
    n_classes: int
    n_features: int
    class_separation: float
    curve_amplitude: float
    noise_scale: float
    latent_dim: int = 5
    ambient_noise: float = 0.1

    def default_size(self) -> int:
        """Default (scaled-down) number of rows used by examples and benches."""
        return min(self.paper_size, 2000)


#: Stand-ins for the paper's Table 1 (same classes/features; sizes scaled down
#: by default because a pure-Python pointer tree is orders of magnitude slower
#: than the paper's Java/C++ setup — see DESIGN.md).
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "pendigits": DatasetSpec(
        name="pendigits",
        paper_size=10_992,
        n_classes=10,
        n_features=16,
        class_separation=1.1,
        curve_amplitude=2.2,
        noise_scale=0.30,
        latent_dim=5,
    ),
    "letter": DatasetSpec(
        name="letter",
        paper_size=20_000,
        n_classes=26,
        n_features=16,
        class_separation=0.9,
        curve_amplitude=2.0,
        noise_scale=0.35,
        latent_dim=5,
    ),
    "gender": DatasetSpec(
        name="gender",
        paper_size=189_961,
        n_classes=2,
        n_features=9,
        class_separation=0.7,
        curve_amplitude=2.2,
        noise_scale=0.45,
        latent_dim=4,
    ),
    "covertype": DatasetSpec(
        name="covertype",
        paper_size=581_012,
        n_classes=7,
        n_features=10,
        class_separation=0.8,
        curve_amplitude=2.0,
        noise_scale=0.30,
        latent_dim=4,
    ),
}


@dataclass(frozen=True)
class _ClassCurve:
    """Random smooth curve defining one class-conditional density.

    Points are generated as ``z_j(t) = center_j + amplitude_j * sin(2*pi*
    frequency_j * t + phase_j)`` for ``t`` uniform in [0, 1], plus Gaussian
    noise — a trajectory-shaped, decidedly non-Gaussian class.
    """

    center: np.ndarray
    amplitude: np.ndarray
    frequency: np.ndarray
    phase: np.ndarray
    noise: float

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        t = rng.uniform(0.0, 1.0, size=count)
        angles = 2.0 * np.pi * self.frequency[None, :] * t[:, None] + self.phase[None, :]
        latent = self.center[None, :] + self.amplitude[None, :] * np.sin(angles)
        return latent + rng.normal(scale=self.noise, size=latent.shape)


def _class_curve(spec: DatasetSpec, rng: np.random.Generator) -> _ClassCurve:
    """Draw the random class curve for one class."""
    return _ClassCurve(
        center=rng.normal(scale=spec.class_separation, size=spec.latent_dim),
        amplitude=rng.uniform(0.4, 1.0, size=spec.latent_dim) * spec.curve_amplitude,
        frequency=rng.uniform(0.5, 1.25, size=spec.latent_dim),
        phase=rng.uniform(0.0, 2.0 * np.pi, size=spec.latent_dim),
        noise=spec.noise_scale,
    )


def _embedding_matrix(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    """Random (n_features, latent_dim) projection with orthonormal columns."""
    raw = rng.normal(size=(spec.n_features, spec.latent_dim))
    q, _ = np.linalg.qr(raw)
    return q[:, : spec.latent_dim]


def make_dataset(
    name: str,
    size: Optional[int] = None,
    random_state: Optional[int] = None,
    class_weights: Optional[Sequence[float]] = None,
) -> Dataset:
    """Generate the synthetic stand-in for one of the paper's data sets.

    Parameters
    ----------
    name:
        One of ``"pendigits"``, ``"letter"``, ``"gender"``, ``"covertype"``.
    size:
        Number of rows to generate (defaults to a scaled-down size; pass
        ``DATASET_SPECS[name].paper_size`` to match the paper's row count).
    random_state:
        Seed for reproducibility.
    class_weights:
        Optional class prior used when sampling labels (uniform by default).
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; expected one of {sorted(DATASET_SPECS)}") from None
    return make_curve_dataset(spec, size=size, random_state=random_state, class_weights=class_weights)


def make_curve_dataset(
    spec: DatasetSpec,
    size: Optional[int] = None,
    random_state: Optional[int] = None,
    class_weights: Optional[Sequence[float]] = None,
) -> Dataset:
    """Generate a curved-manifold data set from an arbitrary :class:`DatasetSpec`.

    The generator behind :func:`make_dataset`, exposed for callers that need
    class/feature counts outside the paper's Table 1 (the scenario battery
    composes high-dimensional and heavily imbalanced specs through it): every
    class is a random smooth curve in a ``latent_dim``-dimensional latent
    space, embedded into ``n_features`` dimensions by a seeded orthogonal
    projection plus ambient noise — see the module docstring for why this
    shape matters for anytime refinement.  The rng call sequence is shared
    with :func:`make_dataset`, so ``make_dataset(name, ...)`` is exactly
    ``make_curve_dataset(DATASET_SPECS[name], ...)``.
    """
    size = spec.default_size() if size is None else int(size)
    if size < spec.n_classes:
        raise ValueError(f"size must be at least the number of classes ({spec.n_classes})")
    rng = np.random.default_rng(random_state)

    if class_weights is None:
        weights = np.full(spec.n_classes, 1.0 / spec.n_classes)
    else:
        weights = np.asarray(class_weights, dtype=float)
        if weights.shape != (spec.n_classes,) or np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("class_weights must be a non-negative vector, one weight per class")
        weights = weights / weights.sum()

    curves = [_class_curve(spec, rng) for _ in range(spec.n_classes)]
    embedding = _embedding_matrix(spec, rng)
    offset = rng.normal(scale=1.0, size=spec.n_features)

    # Guarantee at least one row per class, then sample the rest by the prior.
    labels = list(range(spec.n_classes))
    labels.extend(rng.choice(spec.n_classes, size=size - spec.n_classes, p=weights))
    labels = np.array(labels)
    rng.shuffle(labels)

    features = np.empty((size, spec.n_features))
    for class_index in range(spec.n_classes):
        mask = labels == class_index
        count = int(mask.sum())
        if count:
            latent = curves[class_index].sample(count, rng)
            ambient = rng.normal(scale=spec.ambient_noise, size=(count, spec.n_features))
            features[mask] = latent @ embedding.T + offset + ambient
    return Dataset(name=spec.name, features=features, labels=labels, n_classes=spec.n_classes)


def make_blobs(
    n_classes: int,
    per_class: int,
    n_features: int = 2,
    separation: float = 6.0,
    random_state: Optional[int] = None,
    centers: Optional[np.ndarray] = None,
) -> Dataset:
    """Simple well-separated Gaussian blobs (used by examples and tests).

    ``centers`` fixes the class centers explicitly; when omitted they are
    drawn from a normal distribution with standard deviation ``separation``
    (so the same ``random_state`` reproduces the same class layout).
    """
    if n_classes < 1 or per_class < 1 or n_features < 1:
        raise ValueError("n_classes, per_class and n_features must be positive")
    rng = np.random.default_rng(random_state)
    if centers is None:
        centers = rng.normal(scale=separation, size=(n_classes, n_features))
    else:
        centers = np.asarray(centers, dtype=float)
        if centers.shape != (n_classes, n_features):
            raise ValueError(f"centers must have shape ({n_classes}, {n_features})")
    features: List[np.ndarray] = []
    labels: List[int] = []
    for class_index in range(n_classes):
        features.append(rng.normal(loc=centers[class_index], scale=1.0, size=(per_class, n_features)))
        labels.extend([class_index] * per_class)
    return Dataset(
        name="blobs",
        features=np.vstack(features),
        labels=np.array(labels),
        n_classes=n_classes,
    )


#: Drift kinds understood by :func:`make_drift_stream`.
DRIFT_KINDS = ("none", "incremental", "sudden", "gradual", "recurring")


def _concept_schedule(
    size: int,
    drift: str,
    n_segments: int,
    transition: float,
    recur_period: Optional[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-item concept index for the segment-based drift kinds.

    * ``sudden``: the stream is cut into ``n_segments`` equal segments, each
      an abrupt switch to the next concept.
    * ``gradual``: like ``sudden``, but for the first ``transition`` fraction
      of each new segment items are drawn from the *new* concept only with a
      probability ramping from 0 to 1 (old and new concept interleave).
    * ``recurring``: the stream alternates between concept 0 and concept 1
      every ``recur_period`` items — earlier concepts return, the scenario
      where total forgetting is as wrong as never forgetting.
    """
    if drift == "recurring":
        period = max(1, size // 4) if recur_period is None else int(recur_period)
        if period < 1:
            raise ValueError("recur_period must be positive")
        return (np.arange(size) // period) % 2
    segment_length = max(1, -(-size // n_segments))  # ceil division
    base = np.arange(size) // segment_length
    if drift == "sudden":
        return base
    # gradual: probabilistic hand-over at the start of each new segment.
    offsets = np.arange(size) - base * segment_length
    window = max(1, int(round(transition * segment_length)))
    ramp = np.clip((offsets + 1) / (window + 1), 0.0, 1.0)
    use_new = rng.random(size) < ramp
    concept = np.where(use_new, base, np.maximum(base - 1, 0))
    return concept


def make_drift_stream(
    size: int,
    n_classes: int = 2,
    n_features: int = 2,
    drift: str = "incremental",
    drift_speed: float = 0.01,
    n_segments: int = 2,
    transition: float = 0.25,
    recur_period: Optional[int] = None,
    class_schedule: Optional[Dict[int, tuple]] = None,
    random_state: Optional[int] = None,
) -> Dataset:
    """Labelled stream whose class-conditional distributions evolve over time.

    The scenario generator behind the adaptive (decayed) Bayes forest
    benchmarks: older data gradually or abruptly becomes unrepresentative —
    the situation the §4.2 exponential decay is designed for.

    Parameters
    ----------
    drift:
        * ``"incremental"`` (default) — the class means follow a slow random
          walk with per-class step ``drift_speed`` (the historical behaviour).
        * ``"sudden"`` — the stream is split into ``n_segments`` segments; at
          every boundary the class regions are cyclically reassigned
          (class ``i`` jumps to the region previously owned by class
          ``i + 1``), so a model trained on the old concept is maximally
          misled until it forgets.
        * ``"gradual"`` — like ``"sudden"`` but with a probabilistic
          hand-over: during the first ``transition`` fraction of a new
          segment, old- and new-concept items interleave with a shifting mix.
        * ``"recurring"`` — alternates between two concepts every
          ``recur_period`` items (default ``size // 4``); old concepts return.
        * ``"none"`` — stationary stream (control case).
    class_schedule:
        Optional presence windows ``{label: (start_fraction, end_fraction)}``
        modelling class appearance and disappearance: outside its window a
        class emits no items.  Classes without an entry are always active;
        at every position at least one class must remain active.
    """
    if size < 1:
        raise ValueError("size must be positive")
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    if drift not in DRIFT_KINDS:
        raise ValueError(f"unknown drift kind {drift!r}; expected one of {DRIFT_KINDS}")
    if n_segments < 1:
        raise ValueError("n_segments must be positive")
    if not (0.0 <= transition <= 1.0):
        raise ValueError("transition must be in [0, 1]")
    rng = np.random.default_rng(random_state)

    if drift == "incremental" and class_schedule is None:
        # Historical random-walk generator, kept verbatim (same rng call
        # sequence) so seeded streams reproduce across versions.
        centers = rng.normal(scale=4.0, size=(n_classes, n_features))
        drift_direction = rng.normal(size=(n_classes, n_features))
        drift_direction /= np.linalg.norm(drift_direction, axis=1, keepdims=True)
        features = np.empty((size, n_features))
        labels = rng.integers(0, n_classes, size=size)
        for t in range(size):
            centers = centers + drift_speed * drift_direction
            features[t] = rng.normal(loc=centers[labels[t]], scale=1.0)
        return Dataset(name="drift", features=features, labels=labels, n_classes=n_classes)

    # -- labels (class appearance / disappearance) ---------------------------------
    if class_schedule is None:
        labels = np.asarray(rng.integers(0, n_classes, size=size))
    else:
        windows: Dict[int, Tuple[float, float]] = {}
        for label, window in class_schedule.items():
            if not (0 <= int(label) < n_classes):
                raise ValueError(f"class_schedule label {label!r} out of range")
            start, end = float(window[0]), float(window[1])
            if not (0.0 <= start < end <= 1.0):
                raise ValueError("class_schedule windows must satisfy 0 <= start < end <= 1")
            windows[int(label)] = (start * size, end * size)
        labels = np.empty(size, dtype=int)
        for t in range(size):
            active = [
                label
                for label in range(n_classes)
                if label not in windows or windows[label][0] <= t < windows[label][1]
            ]
            if not active:
                raise ValueError(f"class_schedule leaves no active class at position {t}")
            labels[t] = active[rng.integers(len(active))]

    # -- features -------------------------------------------------------------------
    centers = rng.normal(scale=4.0, size=(n_classes, n_features))
    features = np.empty((size, n_features))
    if drift == "incremental":
        drift_direction = rng.normal(size=(n_classes, n_features))
        drift_direction /= np.linalg.norm(drift_direction, axis=1, keepdims=True)
        for t in range(size):
            centers = centers + drift_speed * drift_direction
            features[t] = rng.normal(loc=centers[labels[t]], scale=1.0)
    elif drift == "none":
        for t in range(size):
            features[t] = rng.normal(loc=centers[labels[t]], scale=1.0)
    else:
        concept = _concept_schedule(size, drift, n_segments, transition, recur_period, rng)
        for t in range(size):
            # Concept k cyclically reassigns the class regions; with two
            # classes a concept change is an exact label swap.
            region = (labels[t] + concept[t]) % n_classes
            features[t] = rng.normal(loc=centers[region], scale=1.0)
    return Dataset(name="drift", features=features, labels=labels, n_classes=n_classes)
