"""Data sets and splits: synthetic stand-ins for the paper's Table 1."""

from .splits import Fold, stratified_k_fold
from .synthetic import (
    DATASET_SPECS,
    Dataset,
    DatasetSpec,
    make_blobs,
    make_curve_dataset,
    make_dataset,
    make_drift_stream,
)

__all__ = [
    "Fold",
    "stratified_k_fold",
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "make_blobs",
    "make_curve_dataset",
    "make_dataset",
    "make_drift_stream",
]
