"""Data stream abstraction: labelled objects arriving over time."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional

import numpy as np

from ..data.synthetic import Dataset
from .arrival import ArrivalProcess, ConstantArrival, gaps_to_node_budgets

__all__ = ["StreamItem", "DataStream"]


@dataclass(frozen=True)
class StreamItem:
    """One stream object: feature vector, optional label, arrival time and budget.

    ``budget`` is the number of node reads available before the next object
    arrives — the anytime constraint the classifier has to respect.
    """

    index: int
    features: np.ndarray
    label: Optional[Hashable]
    arrival_time: float
    budget: int


class DataStream:
    """Replay a dataset as a stream with a chosen arrival process.

    The stream yields :class:`StreamItem` objects in order; each carries the
    node budget implied by the gap to the *next* arrival, so downstream code
    can classify the item with an anytime budget and then (optionally) use the
    true label for online training — the supervised-stream setting of the
    paper's machine/health-monitoring motivation.
    """

    def __init__(
        self,
        dataset: Dataset,
        arrival: Optional[ArrivalProcess] = None,
        nodes_per_time_unit: float = 10.0,
        max_budget: Optional[int] = None,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        self.dataset = dataset
        self.arrival = arrival or ConstantArrival(gap=1.0)
        self.nodes_per_time_unit = nodes_per_time_unit
        self.max_budget = max_budget
        self.shuffle = shuffle
        self.random_state = random_state

    def __len__(self) -> int:
        return self.dataset.size

    def __iter__(self) -> Iterator[StreamItem]:
        rng = np.random.default_rng(self.random_state)
        order = np.arange(self.dataset.size)
        if self.shuffle:
            rng.shuffle(order)
        gaps = self.arrival.gaps(self.dataset.size, rng)
        budgets = gaps_to_node_budgets(gaps, self.nodes_per_time_unit, self.max_budget)
        arrival_time = 0.0
        for position, index in enumerate(order):
            arrival_time += float(gaps[position])
            yield StreamItem(
                index=int(index),
                features=self.dataset.features[index],
                label=self.dataset.labels[index],
                arrival_time=arrival_time,
                budget=int(budgets[position]),
            )

    def items(self, limit: Optional[int] = None) -> List[StreamItem]:
        """Materialise the first ``limit`` stream items (all if None)."""
        result: List[StreamItem] = []
        for item in self:
            result.append(item)
            if limit is not None and len(result) >= limit:
                break
        return result

    def query_batches(
        self, batch_size: int, limit: Optional[int] = None
    ) -> Iterator[np.ndarray]:
        """Yield the stream's feature vectors as stacked ``(b, d)`` blocks.

        The serving load generator's view of a stream: arrival order and
        micro-batch boundaries are preserved (the trailing partial block is
        yielded too), labels and budgets are dropped — exactly the request
        blocks a serving front-end would dispatch.  ``limit`` caps the number
        of *objects* (not blocks).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        block: List[np.ndarray] = []
        taken = 0
        for item in self:
            if limit is not None and taken >= limit:
                break
            block.append(item.features)
            taken += 1
            if len(block) >= batch_size:
                yield np.stack(block)
                block = []
        if block:
            yield np.stack(block)
