"""Stream substrate: arrival processes, data streams, the anytime driver and
async load generation."""

from .anytime import StreamRunResult, StreamStepResult, run_anytime_stream
from .arrival import ArrivalProcess, BurstArrival, ConstantArrival, PoissonArrival, gaps_to_node_budgets
from .load_gen import aiter_items, aiter_query_batches
from .stream import DataStream, StreamItem

__all__ = [
    "StreamRunResult",
    "StreamStepResult",
    "run_anytime_stream",
    "ArrivalProcess",
    "BurstArrival",
    "ConstantArrival",
    "PoissonArrival",
    "gaps_to_node_budgets",
    "aiter_items",
    "aiter_query_batches",
    "DataStream",
    "StreamItem",
]
