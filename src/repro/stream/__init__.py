"""Stream substrate: arrival processes, data streams and the anytime driver."""

from .anytime import StreamRunResult, StreamStepResult, run_anytime_stream
from .arrival import ArrivalProcess, ConstantArrival, PoissonArrival, gaps_to_node_budgets
from .stream import DataStream, StreamItem

__all__ = [
    "StreamRunResult",
    "StreamStepResult",
    "run_anytime_stream",
    "ArrivalProcess",
    "ConstantArrival",
    "PoissonArrival",
    "gaps_to_node_budgets",
    "DataStream",
    "StreamItem",
]
