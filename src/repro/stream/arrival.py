"""Stream arrival processes.

Paper §1 distinguishes "constant streams, where the time between two
consecutive stream data items is constant, and varying streams, where the
amount of data per time unit is varying".  The anytime classifier is motivated
by the varying case: the time available to classify one object is the gap to
the next arrival, so a Poisson stream yields exponentially distributed budgets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

__all__ = [
    "ArrivalProcess",
    "ConstantArrival",
    "PoissonArrival",
    "BurstArrival",
    "gaps_to_node_budgets",
]


class ArrivalProcess(ABC):
    """Generator of inter-arrival times (in abstract time units)."""

    @abstractmethod
    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``count`` inter-arrival gaps."""


class ConstantArrival(ArrivalProcess):
    """Constant stream: every object arrives after the same gap."""

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ValueError("gap must be positive")
        self.gap = gap

    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``count`` identical gaps of length ``gap`` (rng unused)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.full(count, self.gap)


class PoissonArrival(ArrivalProcess):
    """Varying stream: exponentially distributed gaps with the given rate."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` exponential gaps with mean ``1 / rate`` from ``rng``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return rng.exponential(scale=1.0 / self.rate, size=count)


class BurstArrival(ArrivalProcess):
    """Adversarial bursts: quiet stretches interrupted by dense arrival storms.

    The stream cycles deterministically through ``quiet_length`` objects with
    gap ``quiet_gap`` followed by ``burst_length`` objects whose gaps are
    compressed by ``burst_factor`` (a factor of 50 shrinks the anytime budget
    to ~2% of its quiet-period value).  This is the worst case for an anytime
    classifier — exactly when traffic surges, the time per object collapses —
    and the scenario battery uses it to measure how gracefully accuracy
    degrades compared to budget-oblivious baselines.  The cycle is a fixed
    schedule (no rng use), so a seeded stream is reproducible bit for bit.
    """

    def __init__(
        self,
        quiet_length: int,
        burst_length: int,
        burst_factor: float,
        quiet_gap: float = 1.0,
    ) -> None:
        if quiet_length < 1 or burst_length < 1:
            raise ValueError("quiet_length and burst_length must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1 (gaps compress during bursts)")
        if quiet_gap <= 0:
            raise ValueError("quiet_gap must be positive")
        self.quiet_length = quiet_length
        self.burst_length = burst_length
        self.burst_factor = burst_factor
        self.quiet_gap = quiet_gap

    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``count`` gaps following the quiet/burst cycle (rng unused)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        period = self.quiet_length + self.burst_length
        phase = np.arange(count) % period
        in_burst = phase >= self.quiet_length
        return np.where(in_burst, self.quiet_gap / self.burst_factor, self.quiet_gap)


def gaps_to_node_budgets(gaps: np.ndarray, nodes_per_time_unit: float, max_nodes: Optional[int] = None) -> np.ndarray:
    """Convert inter-arrival gaps into per-object node-read budgets.

    The paper measures anytime cost in *nodes read*; a processing speed of
    ``nodes_per_time_unit`` translates the time until the next arrival into
    the number of nodes the classifier may read for the current object.
    """
    gaps = np.asarray(gaps, dtype=float)
    if nodes_per_time_unit <= 0:
        raise ValueError("nodes_per_time_unit must be positive")
    budgets = np.floor(gaps * nodes_per_time_unit).astype(int)
    budgets = np.maximum(budgets, 0)
    if max_nodes is not None:
        budgets = np.minimum(budgets, int(max_nodes))
    return budgets
