"""Async load generation: replay data streams on the event loop in real time.

The stream layer's arrival processes (:mod:`repro.stream.arrival`) stamp every
object with an *abstract* arrival time.  These adapters turn that schedule
into actual event-loop time so an asyncio serving front-end
(:mod:`repro.serving.frontend`) experiences the paper's constant/varying
streams as real traffic: items (or query blocks) are yielded when their
scaled arrival time is due, independent of how fast the consumer drains them
— the open-loop property that makes overload observable.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, List, Optional

import numpy as np

from .stream import DataStream, StreamItem

__all__ = ["aiter_items", "aiter_query_batches"]


async def aiter_items(
    stream: DataStream, speed: float = 1.0, limit: Optional[int] = None
) -> AsyncIterator[StreamItem]:
    """Yield a stream's items at their arrival times, scaled to wall-clock.

    One abstract stream time unit maps to ``1 / speed`` seconds; each item is
    yielded once ``item.arrival_time / speed`` seconds have passed since
    iteration started (late items are yielded immediately — the schedule
    never drifts to compensate).  ``limit`` caps the number of items.

    Raises :class:`ValueError` for a non-positive ``speed``.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if limit is not None and limit <= 0:
        return
    loop = asyncio.get_running_loop()
    start = loop.time()
    taken = 0
    for item in stream:
        delay = start + item.arrival_time / speed - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        yield item
        taken += 1
        if limit is not None and taken >= limit:
            return


async def aiter_query_batches(
    stream: DataStream,
    batch_size: int,
    speed: float = 1.0,
    limit: Optional[int] = None,
) -> AsyncIterator[np.ndarray]:
    """Async analogue of :meth:`DataStream.query_batches` with arrival pacing.

    Stacks consecutive items into ``(b, d)`` feature blocks and yields each
    block once its *last* item has arrived (scaled by ``speed`` like
    :func:`aiter_items`); the trailing partial block is yielded too.  Labels
    and budgets are dropped — these are exactly the request blocks an
    external load generator would POST at a serving front-end.  ``limit``
    caps the number of objects (not blocks).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    block: List[np.ndarray] = []
    async for item in aiter_items(stream, speed=speed, limit=limit):
        block.append(item.features)
        if len(block) >= batch_size:
            yield np.stack(block)
            block = []
    if block:
        yield np.stack(block)
