"""Anytime stream classification driver.

Glues together a :class:`~repro.stream.stream.DataStream` and an anytime
classifier: every arriving object is classified with exactly the node budget
dictated by the stream's arrival process, and (in the supervised setting) the
classifier may afterwards learn from the revealed label — the combination of
anytime classification and incremental online learning that defines the Bayes
tree's stream scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

import numpy as np

from .stream import DataStream, StreamItem

__all__ = ["StreamStepResult", "StreamRunResult", "run_anytime_stream"]


@dataclass(frozen=True)
class StreamStepResult:
    """Outcome of classifying one stream object."""

    item: StreamItem
    prediction: Hashable
    correct: Optional[bool]
    nodes_read: int


@dataclass
class StreamRunResult:
    """Aggregate outcome of a stream run."""

    steps: List[StreamStepResult] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        evaluated = [step for step in self.steps if step.correct is not None]
        if not evaluated:
            return float("nan")
        return float(np.mean([step.correct for step in evaluated]))

    @property
    def mean_budget(self) -> float:
        if not self.steps:
            return float("nan")
        return float(np.mean([step.item.budget for step in self.steps]))

    @property
    def mean_nodes_read(self) -> float:
        if not self.steps:
            return float("nan")
        return float(np.mean([step.nodes_read for step in self.steps]))

    def accuracy_by_budget(self) -> dict:
        """Accuracy grouped by the node budget the stream allowed."""
        buckets: dict = {}
        for step in self.steps:
            if step.correct is None:
                continue
            buckets.setdefault(step.item.budget, []).append(step.correct)
        return {budget: float(np.mean(values)) for budget, values in sorted(buckets.items())}


def run_anytime_stream(
    classifier,
    stream: DataStream,
    limit: Optional[int] = None,
    online_learning: bool = False,
) -> StreamRunResult:
    """Classify every stream object under its anytime budget.

    Parameters
    ----------
    classifier:
        Any object with ``classify_anytime(x, max_nodes)`` returning an
        :class:`~repro.core.classifier.AnytimeClassification` and (when
        ``online_learning`` is requested) ``partial_fit(x, label)``.
    stream:
        The data stream to process.
    limit:
        Optional cap on the number of processed objects.
    online_learning:
        When true, the revealed label is used to update the classifier after
        each prediction (test-then-train evaluation).
    """
    result = StreamRunResult()
    for item in stream:
        classification = classifier.classify_anytime(item.features, max_nodes=item.budget)
        prediction = classification.final_prediction
        correct = None if item.label is None else bool(prediction == item.label)
        result.steps.append(
            StreamStepResult(
                item=item,
                prediction=prediction,
                correct=correct,
                nodes_read=classification.nodes_read,
            )
        )
        if online_learning and item.label is not None:
            classifier.partial_fit(item.features, item.label)
        if limit is not None and len(result.steps) >= limit:
            break
    return result
