"""Anytime stream classification driver.

Glues together a :class:`~repro.stream.stream.DataStream` and an anytime
classifier: every arriving object is classified with exactly the node budget
dictated by the stream's arrival process, and (in the supervised setting) the
classifier may afterwards learn from the revealed label — the combination of
anytime classification and incremental online learning that defines the Bayes
tree's stream scenario.

The driver processes the stream in deferred-label micro-batches
(``chunk_size``): all objects of a chunk are classified against the same
model state — with one lockstep ``classify_anytime_batch`` call carrying the
items' individual arrival budgets when the classifier supports it — and the
revealed labels are learned only at the chunk boundary.  ``chunk_size=1``
(the default) is the classic fully-sequential test-then-train protocol, and
for any chunk size the batched and the scalar path are trace-identical.

The stream's arrival-process timestamps also drive temporal decay: when the
classifier exposes ``advance_time`` (the adaptive Bayes forest), the driver
advances its logical clock to the chunk's last arrival before classifying and
stamps every learned label with that arrival time — older kernels fade by
``2 ** (-decay_rate * dt)`` while the stream plays (a no-op for classifiers
configured without decay).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, List, Optional, Protocol, Sequence

import numpy as np

from .stream import DataStream, StreamItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.classifier import AnytimeClassification

__all__ = [
    "AnytimeClassifierLike",
    "StreamStepResult",
    "StreamRunResult",
    "run_anytime_stream",
]


class AnytimeClassifierLike(Protocol):
    """Structural interface the anytime drivers require of a classifier.

    Only budgeted scalar classification is mandatory.  The optional
    capabilities — ``classify_anytime_batch`` (lockstep batching),
    ``advance_time``/timestamped ``partial_fit`` (temporal decay), plain
    ``partial_fit`` (online learning) — are discovered with ``hasattr`` at
    run time and accessed through ``getattr``, so baseline classifiers that
    lack them still satisfy this protocol.
    """

    def classify_anytime(
        self, query: "Sequence[float] | np.ndarray", max_nodes: int
    ) -> "AnytimeClassification":
        """Classify ``query`` with at most ``max_nodes`` node reads."""
        ...


@dataclass(frozen=True)
class StreamStepResult:
    """Outcome of classifying one stream object."""

    item: StreamItem
    prediction: Hashable
    correct: Optional[bool]
    nodes_read: int


@dataclass
class StreamRunResult:
    """Aggregate outcome of a stream run."""

    steps: List[StreamStepResult] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Prequential accuracy over the labelled (evaluated) stream steps."""
        evaluated = [step for step in self.steps if step.correct is not None]
        if not evaluated:
            return float("nan")
        return float(np.mean([step.correct for step in evaluated]))

    @property
    def mean_budget(self) -> float:
        """Mean node budget the arrival process granted per stream object."""
        if not self.steps:
            return float("nan")
        return float(np.mean([step.item.budget for step in self.steps]))

    @property
    def mean_nodes_read(self) -> float:
        """Mean node reads actually spent per object (<= the granted budget)."""
        if not self.steps:
            return float("nan")
        return float(np.mean([step.nodes_read for step in self.steps]))

    def accuracy_by_budget(self) -> dict:
        """Accuracy grouped by the node budget the stream allowed."""
        buckets: dict = {}
        for step in self.steps:
            if step.correct is None:
                continue
            buckets.setdefault(step.item.budget, []).append(step.correct)
        return {budget: float(np.mean(values)) for budget, values in sorted(buckets.items())}

    def correct_sequence(self) -> np.ndarray:
        """0/1 outcomes of the evaluated (labelled) steps, in stream order."""
        return np.array(
            [step.correct for step in self.steps if step.correct is not None], dtype=float
        )

    def sliding_window_accuracy(self, window: int) -> np.ndarray:
        """Prequential accuracy over a sliding count window (drift diagnostics)."""
        from ..evaluation.metrics import sliding_window_accuracy

        return sliding_window_accuracy(self.correct_sequence(), window)

    def fading_accuracy(self, fading_factor: float = 0.99) -> np.ndarray:
        """Prequential accuracy with an exponential fading factor."""
        from ..evaluation.metrics import fading_accuracy

        return fading_accuracy(self.correct_sequence(), fading_factor)


def _process_chunk(
    classifier: AnytimeClassifierLike,
    items: List[StreamItem],
    result: StreamRunResult,
    online_learning: bool,
    batched: bool,
    timestamped: bool,
) -> None:
    """Classify one micro-batch of stream items, then apply their labels.

    All items of the chunk are classified against the *same* model state;
    only afterwards are the revealed labels learned (deferred-label
    test-then-train).  The batched and the scalar path therefore see exactly
    the same model for every item and produce identical predictions.

    ``timestamped`` classifiers additionally see the logical clock advanced
    to the chunk's last arrival before classification, and learn each label
    at that time — under the deferred-label protocol the whole chunk is
    resolved at its boundary, so one shared "now" per chunk keeps the scalar
    and the batched path trace-identical for every chunk size.
    """
    if timestamped:
        getattr(classifier, "advance_time")(items[-1].arrival_time)
    if batched:
        features = np.stack([item.features for item in items])
        budgets = [item.budget for item in items]
        classifications = getattr(classifier, "classify_anytime_batch")(
            features, max_nodes=budgets, record_history=False
        )
    else:
        classifications = [
            classifier.classify_anytime(item.features, max_nodes=item.budget)
            for item in items
        ]
    for item, classification in zip(items, classifications):
        prediction = classification.final_prediction
        correct = None if item.label is None else bool(prediction == item.label)
        result.steps.append(
            StreamStepResult(
                item=item,
                prediction=prediction,
                correct=correct,
                nodes_read=classification.nodes_read,
            )
        )
    if online_learning:
        for item in items:
            if item.label is not None:
                if timestamped:
                    getattr(classifier, "partial_fit")(
                        item.features, item.label, timestamp=item.arrival_time
                    )
                else:
                    getattr(classifier, "partial_fit")(item.features, item.label)


def run_anytime_stream(
    classifier: AnytimeClassifierLike,
    stream: DataStream,
    limit: Optional[int] = None,
    online_learning: bool = False,
    chunk_size: Optional[int] = None,
    use_batch: Optional[bool] = None,
) -> StreamRunResult:
    """Classify every stream object under its anytime budget.

    Parameters
    ----------
    classifier:
        Any object with ``classify_anytime(x, max_nodes)`` returning an
        :class:`~repro.core.classifier.AnytimeClassification` and (when
        ``online_learning`` is requested) ``partial_fit(x, label)``.
    stream:
        The data stream to process.
    limit:
        Optional cap on the number of processed objects; enforced *before*
        an object is classified or learned from, so ``limit=0`` touches
        neither the classifier nor the stream statistics.
    online_learning:
        When true, the revealed label is used to update the classifier after
        each prediction (test-then-train evaluation).
    chunk_size:
        Number of stream objects classified per micro-batch before their
        labels are applied (deferred-label test-then-train).  The default of
        1 is the classic fully-sequential protocol: every object sees a model
        trained on *all* previous objects.  Larger chunks model the realistic
        setting where labels arrive with a delay and let the classifier
        amortise node reads across the chunk via
        ``classify_anytime_batch`` — results are trace-identical to the
        scalar per-item driver run with the same ``chunk_size``.
    use_batch:
        Force (True) or forbid (False) the batched classification path;
        ``None`` auto-detects ``classifier.classify_anytime_batch``.  Both
        paths produce identical results for the same ``chunk_size``; the
        switch exists for equivalence tests and benchmarks.

    Classifiers exposing ``advance_time`` (the adaptive Bayes forest) have
    their logical clock driven by the items' arrival timestamps, so temporal
    decay and expiry progress with the stream; with ``decay_rate=0`` this is
    a no-op and the run is trace-identical to a clock-less classifier.
    """
    if limit is not None and limit < 0:
        raise ValueError("limit must be non-negative")
    size = 1 if chunk_size is None else int(chunk_size)
    if size < 1:
        raise ValueError("chunk_size must be at least 1")
    if use_batch is None:
        batched = hasattr(classifier, "classify_anytime_batch")
    else:
        batched = bool(use_batch)
        if batched and not hasattr(classifier, "classify_anytime_batch"):
            raise ValueError("classifier does not provide classify_anytime_batch")
    timestamped = hasattr(classifier, "advance_time")

    result = StreamRunResult()
    chunk: List[StreamItem] = []
    # islice bounds consumption: the limit never pulls (and discards) an
    # extra element from the stream iterator, and limit=0 touches nothing.
    source = stream if limit is None else itertools.islice(stream, limit)
    for item in source:
        chunk.append(item)
        if len(chunk) >= size:
            _process_chunk(classifier, chunk, result, online_learning, batched, timestamped)
            chunk = []
    if chunk:
        _process_chunk(classifier, chunk, result, online_learning, batched, timestamped)
    return result
