"""Anytime hierarchical stream clustering (the paper's §4.2 extension).

"A promising research direction ... is the extension of the Bayes tree to
enable anytime clustering.  This can be achieved by modifying the entry
structure such that we can 'park' insertion objects in inner nodes and take
them along in a later descent.  Another great benefit of this modification is
the property of self-adaptation ... the size of the tree will automatically
adapt itself to the stream speed since insertion objects will descend as far
as time permits, be parked there and hence no further splits occur."

The implementation follows what later became ClusTree (Kranen, Assent, Baldauf
& Seidl):

* every entry keeps a time-decayed cluster feature summarising its subtree and
  a *buffer* cluster feature holding objects parked at that entry,
* an insertion descends towards the closest entry; each step down costs one
  "hop" of the anytime budget,
* when the budget runs out the object is merged into the current entry's
  buffer instead of descending further,
* when a later descent passes through an entry with a non-empty buffer, the
  buffered aggregate is taken along as a hitchhiker and dropped at leaf level,
* leaves split when they overflow, growing the tree exactly like an R-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .decay_cf import DecayedClusterFeature

__all__ = ["ClusTreeEntry", "ClusTreeNode", "ClusTree", "MicroCluster"]


@dataclass
class MicroCluster:
    """A leaf-level micro-cluster snapshot (weight, mean, variance)."""

    weight: float
    mean: np.ndarray
    variance: np.ndarray


@dataclass
class ClusTreeEntry:
    """Entry of the anytime clustering tree: summary CF, buffer CF, child pointer."""

    summary: DecayedClusterFeature
    buffer: DecayedClusterFeature
    child: Optional["ClusTreeNode"] = None

    @staticmethod
    def empty(dimension: int, decay_rate: float, child: Optional["ClusTreeNode"] = None) -> "ClusTreeEntry":
        return ClusTreeEntry(
            summary=DecayedClusterFeature(dimension=dimension, decay_rate=decay_rate),
            buffer=DecayedClusterFeature(dimension=dimension, decay_rate=decay_rate),
            child=child,
        )

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from the entry's current mean to ``point``."""
        if self.summary.is_empty:
            return float("inf")
        return float(np.linalg.norm(self.summary.mean() - point))


@dataclass
class ClusTreeNode:
    """Node of the anytime clustering tree."""

    level: int
    entries: List[ClusTreeEntry] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def non_empty_entries(self) -> List[ClusTreeEntry]:
        return [entry for entry in self.entries if not entry.summary.is_empty]


class ClusTree:
    """Anytime micro-clustering of a data stream with exponential decay.

    Parameters
    ----------
    dimension:
        Dimensionality of the stream objects.
    fanout:
        Maximum number of entries per node (split threshold).
    decay_rate:
        Exponent ``lambda`` of the ``2**(-lambda * dt)`` decay.
    prune_threshold:
        Entries whose decayed weight falls below this value may be re-used for
        new data ("reuse node entries if their contribution is too
        insignificant due to their age").
    """

    def __init__(
        self,
        dimension: int,
        fanout: int = 3,
        decay_rate: float = 0.01,
        prune_threshold: float = 0.05,
    ) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if decay_rate < 0:
            raise ValueError("decay_rate must be non-negative")
        if prune_threshold < 0:
            raise ValueError("prune_threshold must be non-negative")
        self.dimension = dimension
        self.fanout = fanout
        self.decay_rate = decay_rate
        self.prune_threshold = prune_threshold
        self.root = ClusTreeNode(level=0)
        self.current_time = 0.0
        self._inserted = 0
        self._parked = 0

    # -- statistics ------------------------------------------------------------------------------
    @property
    def n_inserted(self) -> int:
        """Number of stream objects inserted so far."""
        return self._inserted

    @property
    def n_parked(self) -> int:
        """Number of insertions that ended in a buffer because the budget ran out."""
        return self._parked

    def height(self) -> int:
        return self.root.level + 1

    def node_count(self) -> int:
        def count(node: ClusTreeNode) -> int:
            return 1 + sum(count(e.child) for e in node.entries if e.child is not None)

        return count(self.root)

    # -- insertion ---------------------------------------------------------------------------------
    def insert(
        self,
        point: Sequence[float] | np.ndarray,
        timestamp: Optional[float] = None,
        max_hops: Optional[int] = None,
    ) -> None:
        """Insert one stream object with an anytime hop budget.

        ``max_hops`` limits the number of levels the insertion may descend
        (``None`` = descend to a leaf).  The stream speed therefore directly
        controls how deep objects travel — the self-adaptation property.
        """
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise ValueError(f"point must have shape ({self.dimension},)")
        if timestamp is None:
            timestamp = self.current_time + 1.0
        if timestamp < self.current_time:
            raise ValueError("timestamps must be non-decreasing")
        self.current_time = float(timestamp)
        self._inserted += 1

        carried = DecayedClusterFeature(dimension=self.dimension, decay_rate=self.decay_rate)
        carried.add_point(point, now=self.current_time)
        sibling = self._descend(self.root, carried, hops_left=max_hops)
        if sibling is not None:
            # The root itself split: grow the tree by one level.
            old_root_entry = self._entry_for_node(self.root)
            self.root = ClusTreeNode(level=self.root.level + 1, entries=[old_root_entry, sibling])

    def _choose_entry(self, node: ClusTreeNode, point_mean: np.ndarray) -> Optional[ClusTreeEntry]:
        candidates = node.non_empty_entries()
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.distance_to(point_mean))

    def _entry_for_node(self, node: ClusTreeNode) -> ClusTreeEntry:
        """Directory entry summarising ``node`` (summaries + buffers of its entries)."""
        entry = ClusTreeEntry.empty(self.dimension, self.decay_rate, child=node)
        for member in node.entries:
            if not member.summary.is_empty:
                entry.summary.absorb(member.summary, self.current_time)
            if member.child is not None and not member.buffer.is_empty:
                entry.summary.absorb(member.buffer, self.current_time)
        return entry

    def _refresh_entry(self, entry: ClusTreeEntry) -> None:
        """Recompute an entry's summary from its child node (after a child split)."""
        assert entry.child is not None
        fresh = self._entry_for_node(entry.child)
        # Objects parked at this entry itself are still part of its subtree count.
        if not entry.buffer.is_empty:
            fresh.summary.absorb(entry.buffer, self.current_time)
        entry.summary = fresh.summary

    def _descend(
        self,
        node: ClusTreeNode,
        carried: DecayedClusterFeature,
        hops_left: Optional[int],
    ) -> Optional[ClusTreeEntry]:
        """Insert ``carried`` below ``node``; returns a sibling entry if ``node`` split."""
        now = self.current_time
        mean = carried.mean()

        if node.is_leaf:
            return self._insert_into_leaf(node, carried)

        entry = self._choose_entry(node, mean)
        if entry is None or entry.child is None:
            # Defensive: an inner node without usable directory entries parks the object.
            target = entry or self._get_or_create_entry(node)
            target.summary.absorb(carried, now)
            target.buffer.absorb(carried, now)
            self._parked += 1
            return None

        # The carried object (and any hitchhiker) now belongs to this subtree.
        entry.summary.absorb(carried, now)

        if hops_left is not None and hops_left <= 0:
            # Out of time: park the object in the entry's buffer.
            entry.buffer.absorb(carried, now)
            self._parked += 1
            return None

        # Take along a previously parked aggregate (hitchhiker).
        if not entry.buffer.is_empty:
            carried.absorb(entry.buffer, now)
            entry.buffer.clear(now)

        next_hops = None if hops_left is None else hops_left - 1
        child_sibling = self._descend(entry.child, carried, next_hops)
        if child_sibling is None:
            return None

        # The child node split: its entry summary is stale, and the sibling
        # entry joins this node (which may overflow and split in turn).
        self._refresh_entry(entry)
        node.entries.append(child_sibling)
        if len(node.entries) > self.fanout:
            return self._split_node(node)
        return None

    def _get_or_create_entry(self, node: ClusTreeNode) -> ClusTreeEntry:
        # Prefer re-using a leaf entry whose contribution decayed into insignificance
        # ("reuse node entries if their contribution is too insignificant due to their age").
        for entry in node.entries:
            if entry.child is None and (
                entry.summary.is_empty
                or entry.summary.weight(self.current_time) < self.prune_threshold
            ):
                entry.summary.clear(self.current_time)
                entry.buffer.clear(self.current_time)
                return entry
        entry = ClusTreeEntry.empty(self.dimension, self.decay_rate)
        node.entries.append(entry)
        return entry

    def _insert_into_leaf(
        self, node: ClusTreeNode, carried: DecayedClusterFeature
    ) -> Optional[ClusTreeEntry]:
        """Insert into a leaf; returns a sibling entry if the leaf split."""
        now = self.current_time
        mean = carried.mean()
        candidates = node.non_empty_entries()

        if candidates:
            closest = min(candidates, key=lambda entry: entry.distance_to(mean))
            # Merge if the object falls within the cluster's spread (one RMS radius).
            radius = max(np.sqrt(np.sum(closest.summary.variance())), 1.0)
            if closest.distance_to(mean) <= radius:
                closest.summary.absorb(carried, now)
                return None

        if len(node.entries) < self.fanout or self._has_reusable_entry(node):
            entry = self._get_or_create_entry(node)
            entry.summary.absorb(carried, now)
            return None

        # Leaf full and the object fits no existing micro-cluster: open a new
        # entry and split the overflowing leaf.
        entry = ClusTreeEntry.empty(self.dimension, self.decay_rate)
        entry.summary.absorb(carried, now)
        node.entries.append(entry)
        return self._split_node(node)

    def _has_reusable_entry(self, node: ClusTreeNode) -> bool:
        return any(
            entry.summary.is_empty
            or entry.summary.weight(self.current_time) < self.prune_threshold
            for entry in node.entries
            if entry.child is None
        )

    def _split_node(self, node: ClusTreeNode) -> ClusTreeEntry:
        """Split an overflowing node in place; returns the entry of the new sibling.

        The entries are partitioned around the two farthest entry means
        (quadratic-split seeds); ``node`` keeps the first group, the sibling
        node receives the second and its summarising entry is returned so the
        caller can hook it into the parent.
        """
        entries = list(node.entries)
        means = np.array(
            [
                entry.summary.mean() if not entry.summary.is_empty else np.zeros(self.dimension)
                for entry in entries
            ]
        )
        seed_a = 0
        seed_b = int(np.argmax(np.linalg.norm(means - means[seed_a], axis=1)))
        seed_a = int(np.argmax(np.linalg.norm(means - means[seed_b], axis=1)))
        if seed_a == seed_b:
            middle = len(entries) // 2
            group_a, group_b = entries[:middle], entries[middle:]
        else:
            group_a, group_b = [], []
            for entry, mean in zip(entries, means):
                if np.linalg.norm(mean - means[seed_a]) <= np.linalg.norm(mean - means[seed_b]):
                    group_a.append(entry)
                else:
                    group_b.append(entry)
            if not group_a or not group_b:
                middle = len(entries) // 2
                group_a, group_b = entries[:middle], entries[middle:]
        node.entries = group_a
        sibling = ClusTreeNode(level=node.level, entries=group_b)
        return self._entry_for_node(sibling)

    # -- views ----------------------------------------------------------------------------------------
    def micro_clusters(self, min_weight: float = 1e-3) -> List[MicroCluster]:
        """Current leaf-level micro-clusters (decayed to the current time).

        Buffered (parked) aggregates are included: they represent objects that
        have not reached a leaf yet but still belong to the model.
        """
        clusters: List[MicroCluster] = []

        def visit(node: ClusTreeNode) -> None:
            for entry in node.entries:
                if entry.child is None:
                    features = [entry.summary]
                else:
                    visit(entry.child)
                    features = [entry.buffer] if not entry.buffer.is_empty else []
                for feature in features:
                    aged = feature.copy()
                    aged.decay_to(self.current_time)
                    if aged.weight() >= min_weight and not aged.is_empty:
                        clusters.append(
                            MicroCluster(
                                weight=aged.weight(),
                                mean=aged.mean(),
                                variance=aged.variance(),
                            )
                        )

        visit(self.root)
        return clusters

    def total_weight(self) -> float:
        """Sum of decayed weights over all micro-clusters."""
        return float(sum(cluster.weight for cluster in self.micro_clusters(min_weight=0.0)))
