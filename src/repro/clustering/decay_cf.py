"""Time-decayed cluster features for the anytime-clustering extension.

Paper §4.2: "Exploiting their temporal multiplicity we can decrease the
influence of older data in the current representation by an exponential decay
function.  Moreover, this allows to reuse node entries if their contribution
is too insignificant due to their age."

A decayed cluster feature stores (n, LS, SS) together with the timestamp of
its last update; before any read or update the three summaries are multiplied
by ``2 ** (-decay_rate * elapsed_time)``, which is exactly the exponential
decay later used by ClusTree (Kranen et al., 2011).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..index.cluster_feature import ClusterFeature
from ..stats.gaussian import Gaussian

__all__ = ["DecayedClusterFeature"]


@dataclass
class DecayedClusterFeature:
    """Cluster feature whose weight decays exponentially with time."""

    dimension: int
    decay_rate: float = 0.01
    feature: ClusterFeature = field(default=None)  # type: ignore[assignment]
    last_update: float = 0.0

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValueError("dimension must be positive")
        if self.decay_rate < 0:
            raise ValueError("decay_rate must be non-negative")
        if self.feature is None:
            self.feature = ClusterFeature.zero(self.dimension)
        if self.feature.dimension != self.dimension:
            raise ValueError("feature dimensionality mismatch")

    # -- decay handling -------------------------------------------------------------------
    def decay_factor(self, now: float) -> float:
        """Multiplicative decay accumulated since the last update."""
        elapsed = max(0.0, now - self.last_update)
        return float(2.0 ** (-self.decay_rate * elapsed))

    def decay_to(self, now: float) -> None:
        """Age the summaries to time ``now`` (idempotent for equal timestamps)."""
        if now < self.last_update:
            raise ValueError("time must not run backwards")
        self.feature = self.feature.scaled(self.decay_factor(now))
        self.last_update = now

    # -- updates ----------------------------------------------------------------------------
    def add_point(self, point: Sequence[float] | np.ndarray, now: float, weight: float = 1.0) -> None:
        """Insert a point at time ``now`` (decaying the existing content first)."""
        self.decay_to(now)
        self.feature.add_point(np.asarray(point, dtype=float), weight=weight)

    def absorb(self, other: "DecayedClusterFeature", now: float) -> None:
        """Merge another decayed CF into this one (both aged to ``now`` first)."""
        if other.dimension != self.dimension:
            raise ValueError("cannot absorb a cluster feature of different dimension")
        self.decay_to(now)
        other_copy = other.copy()
        other_copy.decay_to(now)
        self.feature = self.feature + other_copy.feature

    def clear(self, now: Optional[float] = None) -> None:
        """Reset to the empty feature (used when a buffer is taken along)."""
        self.feature = ClusterFeature.zero(self.dimension)
        if now is not None:
            self.last_update = now

    def copy(self) -> "DecayedClusterFeature":
        return DecayedClusterFeature(
            dimension=self.dimension,
            decay_rate=self.decay_rate,
            feature=self.feature.copy(),
            last_update=self.last_update,
        )

    # -- views --------------------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.feature.is_empty

    def weight(self, now: Optional[float] = None) -> float:
        """Decayed number of represented objects at time ``now`` (or the last update)."""
        if now is None:
            return self.feature.n
        return self.feature.n * self.decay_factor(now)

    def mean(self) -> np.ndarray:
        return self.feature.mean()

    def variance(self) -> np.ndarray:
        return self.feature.variance()

    def to_gaussian(self, weight: Optional[float] = None) -> Gaussian:
        return self.feature.to_gaussian(weight=weight)
