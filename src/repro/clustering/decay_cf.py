"""Time-decayed cluster features for the anytime-clustering extension.

The implementation moved to :mod:`repro.index.decay` when the Bayes tree
itself learned the §4.2 exponential decay: one decayed-summary type now backs
both the ClusTree micro-clusters and the classifier's decayed training
statistics.  This module re-exports it so historical imports keep working.
"""

from __future__ import annotations

from ..index.decay import DecayedClusterFeature

__all__ = ["DecayedClusterFeature"]
