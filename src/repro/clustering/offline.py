"""Offline macro-clustering of micro-clusters.

Paper §4.2: "using these fine grained CF representation we can find clusters
of arbitrary shape by using density based clustering in an offline component
as in [5]" (DenStream, Cao et al., SDM 2006).  The offline component here is a
weighted DBSCAN over the micro-cluster centers: micro-clusters whose centers
are within ``epsilon`` of each other are connected, connected components whose
total weight reaches ``min_weight`` form macro-clusters, the rest is noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .clustree import MicroCluster

__all__ = ["MacroCluster", "density_cluster", "assign_to_macro_clusters", "clustering_purity"]


@dataclass
class MacroCluster:
    """A macro-cluster: member micro-clusters plus aggregate statistics."""

    members: List[MicroCluster]

    @property
    def weight(self) -> float:
        return float(sum(member.weight for member in self.members))

    @property
    def center(self) -> np.ndarray:
        weights = np.array([member.weight for member in self.members])
        means = np.array([member.mean for member in self.members])
        return (weights[:, None] * means).sum(axis=0) / weights.sum()


def density_cluster(
    micro_clusters: Sequence[MicroCluster],
    epsilon: float,
    min_weight: float = 1.0,
) -> List[MacroCluster]:
    """Weighted density-based grouping of micro-clusters (DBSCAN over centers)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    micro_clusters = list(micro_clusters)
    if not micro_clusters:
        return []
    centers = np.array([cluster.mean for cluster in micro_clusters])
    n = len(micro_clusters)

    # Union-find over epsilon-connected micro-clusters.
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for i in range(n):
        distances = np.linalg.norm(centers - centers[i], axis=1)
        for j in np.where(distances <= epsilon)[0]:
            union(i, int(j))

    groups: Dict[int, List[MicroCluster]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(micro_clusters[i])

    macro = [MacroCluster(members=members) for members in groups.values()]
    return [cluster for cluster in macro if cluster.weight >= min_weight]


def assign_to_macro_clusters(
    points: np.ndarray, clusters: Sequence[MacroCluster]
) -> np.ndarray:
    """Assign each point to the nearest macro-cluster center (-1 if none exist)."""
    points = np.asarray(points, dtype=float)
    if not clusters:
        return np.full(points.shape[0], -1, dtype=int)
    centers = np.array([cluster.center for cluster in clusters])
    assignments = np.empty(points.shape[0], dtype=int)
    for i, point in enumerate(points):
        assignments[i] = int(np.argmin(np.linalg.norm(centers - point, axis=1)))
    return assignments


def clustering_purity(assignments: Sequence[int], labels: Sequence[object]) -> float:
    """Cluster purity: fraction of points whose cluster's majority label matches theirs."""
    assignments = list(assignments)
    labels = list(labels)
    if len(assignments) != len(labels):
        raise ValueError("assignments and labels must have the same length")
    if not labels:
        raise ValueError("cannot compute purity of an empty assignment")
    by_cluster: Dict[int, List[object]] = {}
    for assignment, label in zip(assignments, labels):
        by_cluster.setdefault(assignment, []).append(label)
    correct = 0
    for members in by_cluster.values():
        counts: Dict[object, int] = {}
        for label in members:
            counts[label] = counts.get(label, 0) + 1
        correct += max(counts.values())
    return correct / len(labels)
