"""Anytime stream clustering extension (paper §4.2): decayed CFs, ClusTree, offline clustering."""

from .clustree import ClusTree, ClusTreeEntry, ClusTreeNode, MicroCluster
from .decay_cf import DecayedClusterFeature
from .offline import (
    MacroCluster,
    assign_to_macro_clusters,
    clustering_purity,
    density_cluster,
)

__all__ = [
    "ClusTree",
    "ClusTreeEntry",
    "ClusTreeNode",
    "MicroCluster",
    "DecayedClusterFeature",
    "MacroCluster",
    "assign_to_macro_clusters",
    "clustering_purity",
    "density_cluster",
]
