"""Scenario spec reproducibility, serialization and label-conservation tests."""

import numpy as np
import pytest

from repro.scenarios import (
    BUILTIN_SCENARIOS,
    NEVER_LABELED,
    SMOKE_SCENARIOS,
    ScenarioSpec,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)


def _tiny_spec(**overrides):
    base = dict(
        name="tiny",
        description="unit-test scenario",
        size=120,
        n_classes=3,
        n_features=4,
        seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestDeterminism:
    def test_same_spec_same_seed_identical_fingerprint(self):
        spec = _tiny_spec()
        assert spec.build().fingerprint() == spec.build().fingerprint()

    def test_identical_streams_bit_for_bit(self):
        spec = _tiny_spec(label_fraction=0.5, label_delay=10, arrival="poisson")
        first, second = spec.build(), spec.build()
        np.testing.assert_array_equal(first.features, second.features)
        np.testing.assert_array_equal(first.labels, second.labels)
        np.testing.assert_array_equal(first.budgets, second.budgets)
        np.testing.assert_array_equal(first.label_available_at, second.label_available_at)

    def test_different_seed_different_fingerprint(self):
        assert _tiny_spec(seed=7).build().fingerprint() != _tiny_spec(seed=8).build().fingerprint()

    def test_every_builtin_scenario_fingerprint_stable(self):
        for name in scenario_names():
            assert build_scenario(name, 0.1).fingerprint() == build_scenario(name, 0.1).fingerprint()

    def test_size_scale_changes_fingerprint(self):
        spec = _tiny_spec()
        assert spec.build(1.0).fingerprint() != spec.build(0.5).fingerprint()


class TestSerialization:
    def test_round_trip_every_builtin(self):
        for spec in BUILTIN_SCENARIOS:
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_preserves_build(self):
        spec = get_scenario("adversarial_bursts")
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.build(0.1).fingerprint() == spec.build(0.1).fingerprint()

    def test_to_dict_is_json_safe(self):
        import json

        for spec in BUILTIN_SCENARIOS:
            payload = json.loads(json.dumps(spec.to_dict()))
            assert ScenarioSpec.from_dict(payload) == spec

    def test_unknown_field_rejected(self):
        payload = _tiny_spec().to_dict()
        payload["mystery_knob"] = 3
        with pytest.raises(ValueError, match="mystery_knob"):
            ScenarioSpec.from_dict(payload)

    def test_wrong_version_rejected(self):
        payload = _tiny_spec().to_dict()
        payload["spec_version"] = 99
        with pytest.raises(ValueError, match="version"):
            ScenarioSpec.from_dict(payload)


class TestLabelSemantics:
    def test_full_labels_by_default(self):
        stream = _tiny_spec().build()
        assert stream.labeled_count == stream.size
        np.testing.assert_array_equal(stream.label_available_at, np.arange(stream.size))

    def test_label_delay_conserves_label_count(self):
        plain = _tiny_spec().build()
        delayed = _tiny_spec(label_delay=25).build()
        assert delayed.labeled_count == plain.labeled_count == delayed.size
        np.testing.assert_array_equal(
            delayed.label_available_at, np.arange(delayed.size) + 25
        )

    def test_partial_labels_conserve_count_and_never_duplicate(self):
        stream = _tiny_spec(label_fraction=0.4, label_delay=10).build()
        deliveries = stream.label_deliveries()
        assert len(deliveries) == stream.labeled_count
        assert 0 < stream.labeled_count < stream.size
        delivered_indexes = [index for _, index in deliveries]
        assert len(set(delivered_indexes)) == len(delivered_indexes)
        for available, index in deliveries:
            assert available == index + 10
        unlabeled = np.sum(stream.label_available_at == NEVER_LABELED)
        assert unlabeled + stream.labeled_count == stream.size

    def test_deliveries_sorted_by_availability(self):
        deliveries = _tiny_spec(label_fraction=0.5, label_delay=5).build().label_deliveries()
        availability = [available for available, _ in deliveries]
        assert availability == sorted(availability)


class TestStreamShape:
    def test_aligned_array_lengths(self):
        stream = _tiny_spec(arrival="poisson").build()
        n = stream.size
        assert stream.features.shape == (n, stream.n_features)
        for array in (stream.labels, stream.budgets, stream.arrival_times, stream.label_available_at):
            assert array.shape[0] == n

    def test_feature_drift_moves_the_cloud(self):
        still = _tiny_spec().build()
        drifted = _tiny_spec(feature_drift=8.0).build()
        # Same underlying data seed: the early stream barely moved, the late
        # stream has migrated far from its stationary twin.
        early = np.linalg.norm(drifted.features[:10] - still.features[:10])
        late = np.linalg.norm(drifted.features[-10:] - still.features[-10:])
        assert late > early + 1.0

    def test_bursty_budgets_collapse_inside_bursts(self):
        stream = _tiny_spec(
            arrival="bursty", burst_quiet=20, burst_length=10, burst_factor=50.0
        ).build()
        assert stream.budgets.min() < stream.budgets.max()

    def test_highdim_scenario_dimensionality(self):
        stream = build_scenario("highdim_kernels", 0.1)
        assert stream.n_features >= 100

    def test_extreme_classes_scenario_opens_many_classes(self):
        stream = build_scenario("extreme_classes", 0.5)
        assert len(np.unique(stream.labels)) > 500


class TestRegistry:
    def test_at_least_six_builtins(self):
        assert len(scenario_names()) >= 6

    def test_smoke_subset_is_registered(self):
        for name in SMOKE_SCENARIOS:
            assert get_scenario(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does-not-exist")

    def test_register_rejects_collision_unless_overwrite(self):
        spec = _tiny_spec(name="highdim_kernels")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)

    def test_register_and_build_custom(self):
        spec = _tiny_spec(name="custom-unit-test-scenario")
        try:
            register_scenario(spec)
            stream = build_scenario("custom-unit-test-scenario", 0.5)
            assert stream.spec == spec
        finally:
            from repro.scenarios import registry

            registry._REGISTRY.pop("custom-unit-test-scenario", None)


class TestValidation:
    def test_bad_generator(self):
        with pytest.raises(ValueError, match="generator"):
            _tiny_spec(generator="mystery")

    def test_bad_label_fraction(self):
        with pytest.raises(ValueError, match="label_fraction"):
            _tiny_spec(label_fraction=0.0)

    def test_curves_needs_latent_dim_within_features(self):
        with pytest.raises(ValueError, match="latent_dim"):
            _tiny_spec(generator="curves", latent_dim=10, n_features=4)

    def test_class_weights_require_curves(self):
        with pytest.raises(ValueError, match="class_weights"):
            _tiny_spec(class_weights=(0.5, 0.3, 0.2))

    def test_bursty_needs_cycle_lengths(self):
        with pytest.raises(ValueError, match="bursty"):
            _tiny_spec(arrival="bursty")
