"""Tests for the synthetic data set generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DATASET_SPECS, make_blobs, make_dataset, make_drift_stream


def test_specs_match_paper_table1():
    """The stand-ins mirror Table 1 of the paper (classes and features)."""
    assert DATASET_SPECS["pendigits"].n_classes == 10
    assert DATASET_SPECS["pendigits"].n_features == 16
    assert DATASET_SPECS["pendigits"].paper_size == 10_992
    assert DATASET_SPECS["letter"].n_classes == 26
    assert DATASET_SPECS["letter"].n_features == 16
    assert DATASET_SPECS["letter"].paper_size == 20_000
    assert DATASET_SPECS["gender"].n_classes == 2
    assert DATASET_SPECS["gender"].n_features == 9
    assert DATASET_SPECS["gender"].paper_size == 189_961
    assert DATASET_SPECS["covertype"].n_classes == 7
    assert DATASET_SPECS["covertype"].n_features == 10
    assert DATASET_SPECS["covertype"].paper_size == 581_012


@pytest.mark.parametrize("name", sorted(DATASET_SPECS))
def test_generated_dataset_shape_and_labels(name):
    spec = DATASET_SPECS[name]
    dataset = make_dataset(name, size=300, random_state=0)
    assert dataset.features.shape == (300, spec.n_features)
    assert dataset.labels.shape == (300,)
    assert dataset.n_classes == spec.n_classes
    assert set(np.unique(dataset.labels)) == set(range(spec.n_classes))
    assert dataset.size == 300
    assert dataset.n_features == spec.n_features


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError):
        make_dataset("mnist")


def test_size_must_cover_all_classes():
    with pytest.raises(ValueError):
        make_dataset("letter", size=10)


def test_generation_is_reproducible():
    a = make_dataset("pendigits", size=200, random_state=7)
    b = make_dataset("pendigits", size=200, random_state=7)
    np.testing.assert_allclose(a.features, b.features)
    np.testing.assert_array_equal(a.labels, b.labels)
    c = make_dataset("pendigits", size=200, random_state=8)
    assert not np.allclose(a.features, c.features)


def test_class_weights_bias_label_distribution():
    dataset = make_dataset("gender", size=2000, random_state=0, class_weights=[0.9, 0.1])
    fraction_class0 = np.mean(dataset.labels == 0)
    assert fraction_class0 > 0.8


def test_class_weights_validation():
    with pytest.raises(ValueError):
        make_dataset("gender", size=100, class_weights=[0.5, 0.3, 0.2])
    with pytest.raises(ValueError):
        make_dataset("gender", size=100, class_weights=[-1.0, 2.0])


def test_classes_are_separable_by_a_simple_classifier():
    """The synthetic stand-ins carry real class structure (not pure noise)."""
    from repro.baselines import GaussianNaiveBayes

    dataset = make_dataset("pendigits", size=800, random_state=1)
    rng = np.random.default_rng(2)
    train, test = dataset.split(0.75, rng)
    model = GaussianNaiveBayes().fit(train.features, train.labels)
    predictions = model.predict_batch(test.features)
    accuracy = np.mean(np.array(predictions) == test.labels)
    assert accuracy > 0.5  # far above the 10% random-guess baseline


def test_summary_row_matches_table1_columns():
    dataset = make_dataset("covertype", size=250, random_state=0)
    row = dataset.summary_row()
    assert row == {"name": "covertype", "size": 250, "classes": 7, "features": 10}


def test_split_partitions_the_dataset():
    dataset = make_dataset("gender", size=400, random_state=0)
    rng = np.random.default_rng(1)
    train, test = dataset.split(0.7, rng)
    assert train.size + test.size == 400
    assert train.size == 280
    with pytest.raises(ValueError):
        dataset.split(1.5, rng)


def test_make_blobs_structure():
    dataset = make_blobs(n_classes=3, per_class=50, n_features=4, random_state=0)
    assert dataset.features.shape == (150, 4)
    assert sorted(set(dataset.labels)) == [0, 1, 2]
    with pytest.raises(ValueError):
        make_blobs(n_classes=0, per_class=5)


def test_make_drift_stream_centers_move():
    dataset = make_drift_stream(size=2000, n_classes=1, n_features=2, drift_speed=0.05, random_state=0)
    early = dataset.features[:200].mean(axis=0)
    late = dataset.features[-200:].mean(axis=0)
    assert np.linalg.norm(late - early) > 1.0
    with pytest.raises(ValueError):
        make_drift_stream(size=0)


@settings(deadline=None, max_examples=10)
@given(st.sampled_from(sorted(DATASET_SPECS)), st.integers(0, 10_000))
def test_generated_features_are_finite(name, seed):
    spec = DATASET_SPECS[name]
    dataset = make_dataset(name, size=max(60, spec.n_classes * 2), random_state=seed)
    assert np.all(np.isfinite(dataset.features))
    assert len(np.unique(dataset.labels)) == spec.n_classes
