"""Tests for stratified k-fold splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import stratified_k_fold


def test_folds_partition_all_indices():
    labels = np.array([0] * 20 + [1] * 12 + [2] * 8)
    folds = stratified_k_fold(labels, n_folds=4, random_state=0)
    assert len(folds) == 4
    all_test = np.concatenate([fold.test_indices for fold in folds])
    assert sorted(all_test.tolist()) == list(range(40))


def test_train_and_test_are_disjoint_and_complete():
    labels = np.array([0] * 16 + [1] * 16)
    for fold in stratified_k_fold(labels, n_folds=4, random_state=1):
        assert set(fold.train_indices) & set(fold.test_indices) == set()
        assert len(fold.train_indices) + len(fold.test_indices) == 32


def test_stratification_keeps_class_proportions():
    labels = np.array([0] * 40 + [1] * 8)
    for fold in stratified_k_fold(labels, n_folds=4, random_state=2):
        test_labels = labels[fold.test_indices]
        assert np.sum(test_labels == 0) == 10
        assert np.sum(test_labels == 1) == 2


def test_every_class_present_in_every_training_fold():
    labels = np.array(list(range(5)) * 4)
    for fold in stratified_k_fold(labels, n_folds=4, random_state=3):
        assert set(labels[fold.train_indices]) == set(range(5))


def test_rejects_classes_smaller_than_fold_count():
    labels = np.array([0] * 10 + [1] * 2)
    with pytest.raises(ValueError):
        stratified_k_fold(labels, n_folds=4)


def test_rejects_bad_inputs():
    with pytest.raises(ValueError):
        stratified_k_fold(np.array([]), n_folds=4)
    with pytest.raises(ValueError):
        stratified_k_fold(np.array([0, 1, 0, 1]), n_folds=1)


def test_reproducible_with_seed():
    labels = np.array([0] * 12 + [1] * 12)
    a = stratified_k_fold(labels, n_folds=4, random_state=5)
    b = stratified_k_fold(labels, n_folds=4, random_state=5)
    for fold_a, fold_b in zip(a, b):
        np.testing.assert_array_equal(fold_a.test_indices, fold_b.test_indices)


@settings(deadline=None, max_examples=25)
@given(st.integers(0, 1000), st.integers(2, 5), st.integers(2, 6))
def test_partition_property(seed, n_folds, n_classes):
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(n_classes), n_folds + rng.integers(0, 5, size=n_classes).max())
    rng.shuffle(labels)
    folds = stratified_k_fold(labels, n_folds=n_folds, random_state=seed)
    all_test = np.concatenate([fold.test_indices for fold in folds])
    assert sorted(all_test.tolist()) == list(range(len(labels)))
