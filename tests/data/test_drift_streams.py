"""The generalised drift-stream scenario generator."""

import numpy as np
import pytest

from repro.data import make_drift_stream
from repro.data.synthetic import DRIFT_KINDS


def _class_mean(dataset, label, lo, hi):
    mask = dataset.labels[lo:hi] == label
    return dataset.features[lo:hi][mask].mean(axis=0)


def test_drift_kinds_are_exposed():
    assert set(DRIFT_KINDS) == {"none", "incremental", "sudden", "gradual", "recurring"}


def test_incremental_matches_historical_generator():
    """The default kind keeps the historical rng sequence (seeded replays)."""
    dataset = make_drift_stream(size=300, n_classes=2, n_features=2, drift_speed=0.05, random_state=0)
    rng = np.random.default_rng(0)
    centers = rng.normal(scale=4.0, size=(2, 2))
    direction = rng.normal(size=(2, 2))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    labels = rng.integers(0, 2, size=300)
    np.testing.assert_array_equal(dataset.labels, labels)
    expected_first = rng.normal(loc=(centers + 0.05 * direction)[labels[0]], scale=1.0)
    np.testing.assert_allclose(dataset.features[0], expected_first)


def test_sudden_drift_swaps_class_regions():
    dataset = make_drift_stream(size=600, drift="sudden", n_segments=2, random_state=0)
    half = 300
    pre0 = _class_mean(dataset, 0, 0, half)
    post0 = _class_mean(dataset, 0, half, 600)
    post1 = _class_mean(dataset, 1, half, 600)
    # After the change, class 0 emits from class 1's former region.
    assert np.linalg.norm(pre0 - post1) < 1.0
    assert np.linalg.norm(pre0 - post0) > 2.0


def test_gradual_drift_mixes_concepts_in_the_transition_window():
    size, half = 2000, 1000
    dataset = make_drift_stream(
        size=size, drift="gradual", n_segments=2, transition=0.5, random_state=1
    )
    pre0 = _class_mean(dataset, 0, 0, half)
    pre1 = _class_mean(dataset, 1, 0, half)
    window = dataset.features[half : half + 500]
    window_labels = dataset.labels[half : half + 500]
    zeros = window[window_labels == 0]
    # During the hand-over, class-0 items come from both regions.
    dist_old = np.linalg.norm(zeros - pre0, axis=1)
    dist_new = np.linalg.norm(zeros - pre1, axis=1)
    assert (dist_old < dist_new).any()
    assert (dist_new < dist_old).any()
    # By the end of the segment the new concept has fully taken over.
    tail = dataset.features[-200:][dataset.labels[-200:] == 0]
    assert np.linalg.norm(tail.mean(axis=0) - pre1) < 1.0


def test_recurring_drift_returns_to_the_first_concept():
    dataset = make_drift_stream(size=400, drift="recurring", recur_period=100, random_state=2)
    first = _class_mean(dataset, 0, 0, 100)
    swapped = _class_mean(dataset, 0, 100, 200)
    returned = _class_mean(dataset, 0, 200, 300)
    assert np.linalg.norm(first - returned) < 1.0
    assert np.linalg.norm(first - swapped) > 2.0


def test_none_drift_is_stationary():
    dataset = make_drift_stream(size=1200, drift="none", random_state=3)
    early = _class_mean(dataset, 0, 0, 600)
    late = _class_mean(dataset, 0, 600, 1200)
    assert np.linalg.norm(early - late) < 0.5


def test_class_schedule_windows_appearance_and_disappearance():
    dataset = make_drift_stream(
        size=400,
        n_classes=3,
        drift="none",
        class_schedule={0: (0.0, 0.5), 2: (0.5, 1.0)},
        random_state=4,
    )
    assert (dataset.labels[:200] != 2).all()
    assert (dataset.labels[200:] != 0).all()
    assert (dataset.labels == 1).any()  # unscheduled class always active


def test_validation_errors():
    with pytest.raises(ValueError):
        make_drift_stream(size=0)
    with pytest.raises(ValueError):
        make_drift_stream(size=10, drift="wobbly")
    with pytest.raises(ValueError):
        make_drift_stream(size=10, drift="sudden", n_segments=0)
    with pytest.raises(ValueError):
        make_drift_stream(size=10, drift="gradual", transition=1.5)
    with pytest.raises(ValueError):
        make_drift_stream(size=10, drift="recurring", recur_period=0)
    with pytest.raises(ValueError):
        make_drift_stream(size=10, n_classes=2, class_schedule={5: (0.0, 1.0)})
    with pytest.raises(ValueError):
        make_drift_stream(size=10, n_classes=2, class_schedule={0: (0.7, 0.2)})
    with pytest.raises(ValueError):
        make_drift_stream(
            size=10, n_classes=1, drift="none", class_schedule={0: (0.0, 0.5)}
        )
