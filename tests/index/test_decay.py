"""Index-layer exponential decay: clocks, decayed entry views, invariants."""

import numpy as np
import pytest

from repro.index import (
    ClusterFeature,
    DecayClock,
    DirectoryEntry,
    LeafEntry,
    RStarTree,
    TreeParameters,
    decay_factor,
)


def _grow(tree, rng, count, start_time=0.0, gap=1.0):
    now = start_time
    for _ in range(count):
        now += gap
        tree.clock.advance(now)
        tree.insert(rng.normal(size=tree.dimension))
    return now


class TestDecayClock:
    def test_factor_is_exact_half_per_half_life(self):
        clock = DecayClock(decay_rate=0.5)
        assert clock.factor(2.0) == pytest.approx(0.5)
        assert clock.factor(0.0) == 1.0

    def test_zero_rate_is_exactly_one(self):
        clock = DecayClock(decay_rate=0.0)
        assert clock.factor(1e9) == 1.0
        assert not clock.enabled

    def test_advance_is_monotone(self):
        clock = DecayClock(decay_rate=0.1)
        clock.advance(5.0)
        clock.advance(3.0)
        assert clock.now == 5.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            DecayClock(decay_rate=-0.1)

    def test_weight_at_uses_current_time(self):
        clock = DecayClock(decay_rate=1.0, now=3.0)
        assert clock.weight_at(2.0) == pytest.approx(0.5)


class TestDecayedEntryViews:
    def test_leaf_entry_weight_derives_from_timestamp(self):
        entry = LeafEntry(point=np.zeros(2), timestamp=1.0)
        entry.decay_to(now=3.0, rate=0.5)
        assert entry.weight == pytest.approx(0.5)
        assert entry.n_objects == pytest.approx(0.5)
        # Idempotent and drift-free: re-aging recomputes from the timestamp.
        entry.decay_to(now=3.0, rate=0.5)
        assert entry.weight == pytest.approx(0.5)

    def test_leaf_cluster_feature_is_weighted(self):
        entry = LeafEntry(point=np.array([2.0, 4.0]), timestamp=0.0)
        entry.decay_to(now=1.0, rate=1.0)
        cf = entry.cluster_feature
        assert cf.n == pytest.approx(0.5)
        np.testing.assert_allclose(cf.linear_sum, [1.0, 2.0])

    def test_directory_entry_decay_preserves_mean_and_variance(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(10, 3))
        feature = ClusterFeature.from_points(points)
        entry = DirectoryEntry(mbr=None, cluster_feature=feature, child=None, last_update=0.0)
        mean, variance = feature.mean().copy(), feature.variance().copy()
        entry.decay_to(now=7.0, rate=0.3)
        assert entry.n_objects == pytest.approx(10.0 * decay_factor(0.3, 7.0))
        np.testing.assert_allclose(entry.cluster_feature.mean(), mean)
        np.testing.assert_allclose(entry.cluster_feature.variance(), variance, atol=1e-12)

    def test_directory_entry_time_cannot_run_backwards(self):
        entry = DirectoryEntry(
            mbr=None, cluster_feature=ClusterFeature.zero(2), child=None, last_update=5.0
        )
        with pytest.raises(ValueError):
            entry.decay_to(now=4.0, rate=0.1)

    def test_scale_in_place_rejects_negative_factor(self):
        feature = ClusterFeature.from_point([1.0, 1.0])
        with pytest.raises(ValueError):
            feature.scale_in_place(-0.5)


class TestDecayedRStarTree:
    def test_decayed_inserts_keep_invariants(self):
        rng = np.random.default_rng(1)
        clock = DecayClock(decay_rate=0.05)
        tree = RStarTree(dimension=3, params=TreeParameters(), clock=clock)
        _grow(tree, rng, 120)
        tree.validate()

    def test_decay_entries_to_makes_weights_consistent(self):
        rng = np.random.default_rng(2)
        clock = DecayClock(decay_rate=0.1)
        tree = RStarTree(dimension=2, clock=clock)
        now = _grow(tree, rng, 60)
        clock.advance(now + 10.0)
        tree.decay_entries_to(clock.now)
        total = sum(entry.weight for entry in tree.iter_leaf_entries())
        # Root entries were just aged to the same time; additivity must hold.
        root_total = sum(entry.n_objects for entry in tree.root.entries)
        assert root_total == pytest.approx(total, rel=1e-9)
        # Every leaf weight equals the closed-form decay of its timestamp.
        for entry in tree.iter_leaf_entries():
            assert entry.weight == pytest.approx(
                decay_factor(0.1, clock.now - entry.timestamp)
            )

    def test_zero_rate_clock_changes_nothing(self):
        rng = np.random.default_rng(3)
        plain = RStarTree(dimension=2)
        clocked = RStarTree(dimension=2, clock=DecayClock(decay_rate=0.0))
        points = rng.normal(size=(80, 2))
        for i, point in enumerate(points):
            clocked.clock.advance(float(i))
            plain.insert(point)
            clocked.insert(point)
        clocked.decay_entries_to(clocked.clock.now)
        for a, b in zip(plain.iter_leaf_entries(), clocked.iter_leaf_entries()):
            assert b.weight == 1.0
            np.testing.assert_array_equal(a.point, b.point)
        a_cf = plain.root.compute_cluster_feature()
        b_cf = clocked.root.compute_cluster_feature(clock=clocked.clock)
        np.testing.assert_array_equal(a_cf.linear_sum, b_cf.linear_sum)
        assert a_cf.n == b_cf.n

    def test_rebuilt_with_preserves_entries_and_bumps_version(self):
        rng = np.random.default_rng(4)
        clock = DecayClock(decay_rate=0.05)
        tree = RStarTree(dimension=2, clock=clock)
        _grow(tree, rng, 50)
        survivors = [e for i, e in enumerate(tree.iter_leaf_entries()) if i % 2 == 0]
        rebuilt = tree.rebuilt_with(survivors)
        assert len(rebuilt) == len(survivors)
        assert rebuilt.version == tree.version + 1
        rebuilt.validate()
        assert {id(e) for e in rebuilt.iter_leaf_entries()} == {id(e) for e in survivors}
