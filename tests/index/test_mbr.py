"""Unit tests for repro.index.mbr."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import MBR


def unit_square():
    return MBR(lower=np.array([0.0, 0.0]), upper=np.array([1.0, 1.0]))


def test_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        MBR(lower=np.array([1.0, 0.0]), upper=np.array([0.0, 1.0]))


def test_rejects_mismatched_shapes():
    with pytest.raises(ValueError):
        MBR(lower=np.zeros(2), upper=np.ones(3))


def test_from_point_is_degenerate():
    rect = MBR.from_point([1.0, 2.0, 3.0])
    assert rect.area() == 0.0
    assert rect.contains_point([1.0, 2.0, 3.0])
    np.testing.assert_allclose(rect.center, [1.0, 2.0, 3.0])


def test_from_points_covers_all_points():
    points = np.array([[0.0, 5.0], [2.0, 1.0], [-1.0, 3.0]])
    rect = MBR.from_points(points)
    np.testing.assert_allclose(rect.lower, [-1.0, 1.0])
    np.testing.assert_allclose(rect.upper, [2.0, 5.0])
    for point in points:
        assert rect.contains_point(point)


def test_area_and_margin():
    rect = MBR(lower=np.array([0.0, 0.0]), upper=np.array([2.0, 3.0]))
    assert rect.area() == pytest.approx(6.0)
    assert rect.margin() == pytest.approx(5.0)


def test_union_and_enlargement():
    a = unit_square()
    b = MBR(lower=np.array([2.0, 2.0]), upper=np.array([3.0, 3.0]))
    union = a.union(b)
    np.testing.assert_allclose(union.lower, [0.0, 0.0])
    np.testing.assert_allclose(union.upper, [3.0, 3.0])
    assert a.enlargement(b) == pytest.approx(union.area() - a.area())
    assert a.enlargement(a) == pytest.approx(0.0)


def test_union_of_multiple():
    rects = [unit_square(), MBR.from_point([5.0, -1.0])]
    union = MBR.union_of(rects)
    assert union.contains(rects[0])
    assert union.contains_point([5.0, -1.0])
    with pytest.raises(ValueError):
        MBR.union_of([])


def test_intersection_area():
    a = unit_square()
    b = MBR(lower=np.array([0.5, 0.5]), upper=np.array([2.0, 2.0]))
    c = MBR(lower=np.array([5.0, 5.0]), upper=np.array([6.0, 6.0]))
    assert a.intersection_area(b) == pytest.approx(0.25)
    assert a.intersection_area(c) == 0.0
    assert a.intersection_area(a) == pytest.approx(1.0)


def test_contains_relations():
    outer = MBR(lower=np.array([0.0, 0.0]), upper=np.array([10.0, 10.0]))
    inner = unit_square()
    assert outer.contains(inner)
    assert not inner.contains(outer)
    assert outer.contains(outer)


def test_include_point_extends_bounds():
    rect = unit_square().include_point([2.0, -1.0])
    np.testing.assert_allclose(rect.lower, [0.0, -1.0])
    np.testing.assert_allclose(rect.upper, [2.0, 1.0])


def test_min_distance_zero_inside_and_euclidean_outside():
    rect = unit_square()
    assert rect.min_distance([0.5, 0.5]) == 0.0
    assert rect.min_distance([1.0, 1.0]) == 0.0
    assert rect.min_distance([2.0, 1.0]) == pytest.approx(1.0)
    assert rect.min_distance([2.0, 2.0]) == pytest.approx(np.sqrt(2.0))
    assert rect.min_distance([-3.0, 0.5]) == pytest.approx(3.0)


def test_center_distance():
    rect = unit_square()
    assert rect.center_distance([0.5, 0.5]) == pytest.approx(0.0)
    assert rect.center_distance([1.5, 0.5]) == pytest.approx(1.0)


def test_equality_is_by_value():
    assert unit_square() == unit_square()
    assert unit_square() != MBR.from_point([0.0, 0.0])


@settings(deadline=None, max_examples=50)
@given(st.integers(0, 100_000), st.integers(1, 5), st.integers(2, 20))
def test_union_contains_all_members_and_mindist_lower_bounds_center_dist(seed, dim, count):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(count, dim)) * 5
    rect = MBR.from_points(points)
    for point in points:
        assert rect.contains_point(point)
    query = rng.normal(size=dim) * 10
    assert rect.min_distance(query) <= rect.center_distance(query) + 1e-9


@settings(deadline=None, max_examples=50)
@given(st.integers(0, 100_000))
def test_union_is_commutative_and_monotone_in_area(seed):
    rng = np.random.default_rng(seed)
    a = MBR.from_points(rng.normal(size=(3, 3)))
    b = MBR.from_points(rng.normal(size=(3, 3)))
    ab = a.union(b)
    ba = b.union(a)
    assert ab == ba
    assert ab.area() >= max(a.area(), b.area()) - 1e-12
