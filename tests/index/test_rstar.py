"""Unit and property tests for the R*-tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import LeafEntry, RStarTree, TreeParameters


def build_tree(points, labels=None, params=None):
    points = np.asarray(points, dtype=float)
    tree = RStarTree(dimension=points.shape[1], params=params)
    for i, point in enumerate(points):
        tree.insert(point, label=None if labels is None else labels[i])
    return tree


class TestParameters:
    def test_defaults_are_valid(self):
        TreeParameters()

    def test_min_fanout_bounds(self):
        with pytest.raises(ValueError):
            TreeParameters(max_fanout=8, min_fanout=5)
        with pytest.raises(ValueError):
            TreeParameters(max_fanout=8, min_fanout=0)

    def test_leaf_bounds(self):
        with pytest.raises(ValueError):
            TreeParameters(leaf_capacity=8, leaf_min=5)
        with pytest.raises(ValueError):
            TreeParameters(leaf_capacity=1)

    def test_reinsert_fraction_range(self):
        with pytest.raises(ValueError):
            TreeParameters(reinsert_fraction=1.0)
        TreeParameters(reinsert_fraction=0.0)


class TestBasicInsertion:
    def test_empty_tree(self):
        tree = RStarTree(dimension=2)
        assert len(tree) == 0
        assert tree.is_empty()
        tree.validate()

    def test_rejects_bad_dimension(self):
        tree = RStarTree(dimension=2)
        with pytest.raises(ValueError):
            tree.insert(np.zeros(3))
        with pytest.raises(ValueError):
            RStarTree(dimension=0)

    def test_single_insert(self):
        tree = RStarTree(dimension=2)
        entry = tree.insert([1.0, 2.0], label="a")
        assert len(tree) == 1
        assert isinstance(entry, LeafEntry)
        assert entry.label == "a"
        tree.validate()

    def test_size_matches_number_of_inserts(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(150, 3))
        tree = build_tree(points)
        assert len(tree) == 150
        assert sum(1 for _ in tree.iter_leaf_entries()) == 150

    def test_all_points_are_retrievable(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(80, 2))
        tree = build_tree(points)
        stored = np.array(sorted([tuple(e.point) for e in tree.iter_leaf_entries()]))
        expected = np.array(sorted([tuple(p) for p in points]))
        np.testing.assert_allclose(stored, expected)

    def test_labels_preserved(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(40, 2))
        labels = [i % 3 for i in range(40)]
        tree = build_tree(points, labels)
        stored = sorted(e.label for e in tree.iter_leaf_entries())
        assert stored == sorted(labels)

    def test_extend_batch_insert(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(60, 2))
        tree = RStarTree(dimension=2)
        tree.extend(points, labels=list(range(60)))
        assert len(tree) == 60
        tree.validate()


class TestStructure:
    def test_tree_grows_in_height(self):
        rng = np.random.default_rng(4)
        params = TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
        tree = build_tree(rng.normal(size=(200, 2)), params=params)
        assert tree.height >= 3
        tree.validate()

    def test_structural_invariants_small_fanout(self):
        rng = np.random.default_rng(5)
        params = TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
        tree = build_tree(rng.normal(size=(300, 3)), params=params)
        tree.validate()

    def test_structural_invariants_without_reinsert(self):
        rng = np.random.default_rng(6)
        params = TreeParameters(
            max_fanout=5, min_fanout=2, leaf_capacity=5, leaf_min=2, reinsert_fraction=0.0
        )
        tree = build_tree(rng.normal(size=(250, 2)), params=params)
        tree.validate()

    def test_root_cluster_feature_counts_everything(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(120, 2))
        tree = build_tree(points)
        cf = tree.root.compute_cluster_feature()
        assert cf.n == pytest.approx(120)
        np.testing.assert_allclose(cf.mean(), points.mean(axis=0), atol=1e-9)
        np.testing.assert_allclose(cf.variance(), points.var(axis=0), atol=1e-9)

    def test_root_mbr_covers_all_points(self):
        rng = np.random.default_rng(8)
        points = rng.normal(size=(100, 4)) * 3
        tree = build_tree(points)
        mbr = tree.root.compute_mbr()
        for point in points:
            assert mbr.contains_point(point)

    def test_node_count_and_height_consistency(self):
        rng = np.random.default_rng(9)
        tree = build_tree(rng.normal(size=(100, 2)))
        node_levels = {node.level for node in tree.iter_nodes()}
        assert node_levels == set(range(tree.height))
        assert tree.node_count() >= tree.height

    def test_duplicate_points_are_allowed(self):
        points = np.tile(np.array([[1.0, 1.0]]), (50, 1))
        tree = build_tree(points)
        assert len(tree) == 50
        tree.validate()

    def test_collinear_points(self):
        points = np.column_stack([np.linspace(0, 1, 64), np.zeros(64)])
        tree = build_tree(points)
        tree.validate()

    def test_from_root_wraps_existing_hierarchy(self):
        rng = np.random.default_rng(10)
        source = build_tree(rng.normal(size=(50, 2)))
        wrapped = RStarTree.from_root(source.root, dimension=2, params=source.params)
        assert len(wrapped) == 50
        wrapped.validate()

    def test_from_root_counts_leaf_entries_not_weighted_cluster_features(self):
        """Regression: decayed/weighted CFs must not distort the stored size.

        ``from_root`` used to derive the size from ``round(root.n_objects)``,
        which for a subtree whose cluster features carry non-unit weights
        (e.g. after temporal decay) under- or over-counted the actually
        stored observations.
        """
        from repro.index.entry import DirectoryEntry
        from repro.index.node import Node

        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        leaf = Node(level=0, entries=[LeafEntry(point=point) for point in points])
        summary = DirectoryEntry.for_node(leaf)
        # Exponential decay halves the summaries: n drops to 2.0 although the
        # subtree still stores four observations.
        summary.cluster_feature = summary.cluster_feature.scaled(0.5)
        root = Node(level=1, entries=[summary])
        tree = RStarTree.from_root(root, dimension=2)
        assert root.n_objects == pytest.approx(2.0)
        assert len(tree) == 4


@settings(deadline=None, max_examples=12)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(1, 180),
    dim=st.integers(1, 4),
    max_fanout=st.integers(4, 10),
)
def test_property_invariants_hold_for_random_insertions(seed, count, dim, max_fanout):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(count, dim)) * rng.uniform(0.5, 5.0)
    params = TreeParameters(
        max_fanout=max_fanout,
        min_fanout=2,
        leaf_capacity=max_fanout,
        leaf_min=2,
    )
    tree = build_tree(points, params=params)
    tree.validate()
    assert len(tree) == count
    cf = tree.root.compute_cluster_feature()
    assert cf.n == pytest.approx(count)
    np.testing.assert_allclose(cf.linear_sum, points.sum(axis=0), rtol=1e-8, atol=1e-8)
