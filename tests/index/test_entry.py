"""Tests for leaf and directory entries (including variance inflation)."""

import numpy as np
import pytest

from repro.index import DirectoryEntry, LeafEntry, MBR, Node


def make_leaf_node(points, bandwidth=None):
    entries = [LeafEntry(point=np.asarray(p, float), bandwidth=bandwidth) for p in points]
    return Node(level=0, entries=entries)


class TestLeafEntry:
    def test_basic_properties(self):
        entry = LeafEntry(point=np.array([1.0, 2.0]), label="a", bandwidth=np.array([0.5, 0.5]))
        assert entry.dimension == 2
        assert entry.n_objects == 1.0
        assert entry.label == "a"
        assert entry.mbr == MBR.from_point([1.0, 2.0])
        np.testing.assert_allclose(entry.cluster_feature.mean(), [1.0, 2.0])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LeafEntry(point=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            LeafEntry(point=np.zeros(2), bandwidth=np.ones(3))

    def test_to_gaussian_requires_bandwidth(self):
        entry = LeafEntry(point=np.zeros(2))
        with pytest.raises(ValueError):
            entry.to_gaussian()
        with pytest.raises(ValueError):
            entry.density(np.zeros(2))

    def test_gaussian_kernel_variance_is_bandwidth_squared(self):
        entry = LeafEntry(point=np.zeros(2), bandwidth=np.array([0.5, 2.0]))
        gaussian = entry.to_gaussian()
        np.testing.assert_allclose(gaussian.variance, [0.25, 4.0])

    def test_epanechnikov_moment_matched_variance(self):
        entry = LeafEntry(point=np.zeros(1), bandwidth=np.array([1.0]), kernel="epanechnikov")
        gaussian = entry.to_gaussian()
        np.testing.assert_allclose(gaussian.variance, [0.2])
        # Density outside the support is exactly zero for the kernel itself.
        assert entry.density(np.array([2.0])) == 0.0


class TestDirectoryEntry:
    def test_for_node_summarises_children(self):
        node = make_leaf_node([[0.0, 0.0], [2.0, 2.0]])
        entry = DirectoryEntry.for_node(node)
        assert entry.n_objects == 2.0
        np.testing.assert_allclose(entry.cluster_feature.mean(), [1.0, 1.0])
        assert entry.mbr.contains_point([0.0, 0.0])
        assert entry.mbr.contains_point([2.0, 2.0])

    def test_refresh_follows_child_changes(self):
        node = make_leaf_node([[0.0, 0.0], [2.0, 2.0]])
        entry = DirectoryEntry.for_node(node)
        node.entries.append(LeafEntry(point=np.array([10.0, 10.0])))
        entry.refresh()
        assert entry.n_objects == 3.0
        assert entry.mbr.contains_point([10.0, 10.0])

    def test_variance_inflation_adds_kernel_variance(self):
        node = make_leaf_node([[0.0], [1.0]])
        entry = DirectoryEntry.for_node(node)
        plain = entry.to_gaussian(weight=1.0)
        inflated = entry.to_gaussian(weight=1.0, variance_inflation=np.array([0.09]))
        np.testing.assert_allclose(inflated.variance, plain.variance + 0.09)
        np.testing.assert_allclose(inflated.mean, plain.mean)

    def test_inflation_prevents_degenerate_spikes(self):
        """A single-object subtree has zero CF variance; inflation keeps it usable."""
        node = make_leaf_node([[0.0, 0.0]])
        entry = DirectoryEntry.for_node(node)
        query = np.array([0.5, 0.5])
        without = entry.density(query)
        with_inflation = entry.density(query, variance_inflation=np.array([0.25, 0.25]))
        assert without == pytest.approx(0.0, abs=1e-12)
        assert with_inflation > 0.01

    def test_density_with_inflation_matches_gaussian(self):
        node = make_leaf_node([[0.0, 0.0], [1.0, 3.0], [2.0, 1.0]])
        entry = DirectoryEntry.for_node(node)
        inflation = np.array([0.04, 0.04])
        query = np.array([1.0, 1.0])
        expected = entry.to_gaussian(weight=1.0, variance_inflation=inflation).pdf(query)
        assert entry.density(query, variance_inflation=inflation) == pytest.approx(expected)
