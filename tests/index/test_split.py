"""Unit tests for repro.index.split (R* topological split)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import LeafEntry, MBR, rstar_split


def make_entries(points):
    return [LeafEntry(point=np.asarray(p, dtype=float)) for p in points]


def test_split_requires_enough_entries():
    entries = make_entries([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
    with pytest.raises(ValueError):
        rstar_split(entries, min_entries=2)


def test_split_partitions_all_entries_exactly_once():
    rng = np.random.default_rng(0)
    entries = make_entries(rng.normal(size=(9, 2)))
    result = rstar_split(entries, min_entries=3)
    assert len(result.first) + len(result.second) == 9
    all_ids = {id(e) for e in entries}
    split_ids = {id(e) for e in result.first} | {id(e) for e in result.second}
    assert all_ids == split_ids


def test_split_respects_minimum_group_size():
    rng = np.random.default_rng(1)
    entries = make_entries(rng.normal(size=(10, 3)))
    result = rstar_split(entries, min_entries=4)
    assert len(result.first) >= 4
    assert len(result.second) >= 4


def test_split_separates_two_obvious_clusters():
    cluster_a = [[0.0, 0.0], [0.1, 0.1], [0.2, 0.0], [0.0, 0.2]]
    cluster_b = [[10.0, 10.0], [10.1, 10.1], [10.2, 10.0], [10.0, 10.2]]
    entries = make_entries(cluster_a + cluster_b)
    result = rstar_split(entries, min_entries=2)
    groups = []
    for group in (result.first, result.second):
        xs = sorted(float(e.point[0]) for e in group)
        groups.append(xs)
    # One group should hold only small coordinates, the other only large ones.
    lows = [g for g in groups if all(x < 5 for x in g)]
    highs = [g for g in groups if all(x > 5 for x in g)]
    assert len(lows) == 1 and len(highs) == 1


def test_split_groups_have_small_overlap_on_separable_data():
    rng = np.random.default_rng(2)
    left = rng.uniform(0.0, 1.0, size=(6, 2))
    right = rng.uniform(5.0, 6.0, size=(6, 2))
    entries = make_entries(np.vstack([left, right]))
    result = rstar_split(entries, min_entries=3)
    mbr_first = MBR.union_of(e.mbr for e in result.first)
    mbr_second = MBR.union_of(e.mbr for e in result.second)
    assert mbr_first.intersection_area(mbr_second) == pytest.approx(0.0, abs=1e-12)


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 100_000), st.integers(1, 4), st.integers(2, 5))
def test_split_is_a_partition_for_random_inputs(seed, dim, min_entries):
    rng = np.random.default_rng(seed)
    count = rng.integers(2 * min_entries, 4 * min_entries + 1)
    entries = make_entries(rng.normal(size=(count, dim)))
    result = rstar_split(entries, min_entries=min_entries)
    assert len(result.first) + len(result.second) == count
    assert len(result.first) >= min_entries
    assert len(result.second) >= min_entries
