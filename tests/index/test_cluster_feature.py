"""Unit tests for repro.index.cluster_feature."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import ClusterFeature


def test_zero_is_empty():
    cf = ClusterFeature.zero(3)
    assert cf.is_empty
    assert cf.dimension == 3
    with pytest.raises(ValueError):
        cf.mean()
    with pytest.raises(ValueError):
        cf.variance()


def test_from_point_moments():
    cf = ClusterFeature.from_point([1.0, 2.0])
    np.testing.assert_allclose(cf.mean(), [1.0, 2.0])
    np.testing.assert_allclose(cf.variance(), [0.0, 0.0])
    assert cf.n == 1.0


def test_from_points_matches_numpy_moments():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(100, 4))
    cf = ClusterFeature.from_points(points)
    np.testing.assert_allclose(cf.mean(), points.mean(axis=0))
    np.testing.assert_allclose(cf.variance(), points.var(axis=0), atol=1e-10)


def test_addition_equals_union_of_point_sets():
    rng = np.random.default_rng(1)
    a = rng.normal(size=(30, 3))
    b = rng.normal(size=(50, 3)) + 5.0
    combined = ClusterFeature.from_points(a) + ClusterFeature.from_points(b)
    expected = ClusterFeature.from_points(np.vstack([a, b]))
    assert combined.n == expected.n
    np.testing.assert_allclose(combined.mean(), expected.mean())
    np.testing.assert_allclose(combined.variance(), expected.variance(), atol=1e-10)


def test_addition_requires_same_dimension():
    with pytest.raises(ValueError):
        ClusterFeature.zero(2) + ClusterFeature.zero(3)


def test_sum_of_rejects_empty_sequence():
    with pytest.raises(ValueError):
        ClusterFeature.sum_of([])


def test_add_point_incremental_matches_batch():
    rng = np.random.default_rng(2)
    points = rng.normal(size=(20, 2))
    incremental = ClusterFeature.zero(2)
    for point in points:
        incremental.add_point(point)
    batch = ClusterFeature.from_points(points)
    np.testing.assert_allclose(incremental.mean(), batch.mean())
    np.testing.assert_allclose(incremental.variance(), batch.variance(), atol=1e-10)


def test_weighted_point_counts_fractionally():
    cf = ClusterFeature.from_point([2.0], weight=0.5)
    assert cf.n == 0.5
    np.testing.assert_allclose(cf.mean(), [2.0])


def test_scaled_decay_preserves_mean_and_variance():
    rng = np.random.default_rng(3)
    points = rng.normal(size=(40, 3))
    cf = ClusterFeature.from_points(points)
    decayed = cf.scaled(0.25)
    assert decayed.n == pytest.approx(10.0)
    np.testing.assert_allclose(decayed.mean(), cf.mean())
    np.testing.assert_allclose(decayed.variance(), cf.variance(), atol=1e-10)


def test_scaled_rejects_negative_factor():
    with pytest.raises(ValueError):
        ClusterFeature.from_point([0.0]).scaled(-1.0)


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        ClusterFeature(n=-1.0, linear_sum=np.zeros(2), squared_sum=np.zeros(2))


def test_to_gaussian_uses_cf_moments_and_weight():
    points = np.array([[0.0, 0.0], [2.0, 4.0]])
    cf = ClusterFeature.from_points(points)
    gaussian = cf.to_gaussian()
    np.testing.assert_allclose(gaussian.mean, [1.0, 2.0])
    np.testing.assert_allclose(gaussian.variance, [1.0, 4.0])
    assert gaussian.weight == 2.0
    assert cf.to_gaussian(weight=0.3).weight == 0.3


def test_radius_zero_for_single_point_and_positive_for_spread():
    assert ClusterFeature.from_point([1.0, 1.0]).radius() == 0.0
    spread = ClusterFeature.from_points(np.array([[0.0, 0.0], [2.0, 2.0]]))
    assert spread.radius() > 0.0


def test_variance_never_negative_despite_rounding():
    # Large offsets provoke catastrophic cancellation in SS/n - mean^2.
    points = np.full((10, 2), 1e8) + np.linspace(0, 1e-3, 10)[:, None]
    cf = ClusterFeature.from_points(points)
    assert np.all(cf.variance() >= 0)


@settings(deadline=None, max_examples=50)
@given(st.integers(0, 100_000), st.integers(1, 4), st.integers(2, 30), st.integers(2, 30))
def test_additivity_property(seed, dim, n_a, n_b):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_a, dim))
    b = rng.normal(size=(n_b, dim)) * 2 + 1
    combined = ClusterFeature.from_points(a) + ClusterFeature.from_points(b)
    expected = ClusterFeature.from_points(np.vstack([a, b]))
    assert combined.n == pytest.approx(expected.n)
    np.testing.assert_allclose(combined.linear_sum, expected.linear_sum, rtol=1e-9)
    np.testing.assert_allclose(combined.squared_sum, expected.squared_sum, rtol=1e-9)
