"""Golden-fixture tests: every reprolint rule fires, passes and suppresses.

Each fixture tree under ``fixtures/<case>/`` mirrors the real repo layout
(``src/repro/...``) so path- and import-scoped rules behave exactly as in
production.  Expected violations are declared in-place: a line carrying an
``# EXPECT: CODE[,CODE]`` marker must be flagged with exactly those codes,
every unmarked line must stay silent, and lines carrying a
``# reprolint: disable=...`` comment double as the suppression cases.
The comparison is exact in both directions, so a rule growing false
positives fails this test just as loudly as one going blind.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path
from typing import Set, Tuple

import pytest

from tools.reprolint import ALL_RULES, RULES_BY_CODE, run_paths
from tools.reprolint.engine import scope_of

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*(?P<codes>[A-Z0-9,\s]+?)\s*$")

CASES = sorted(path.name for path in FIXTURES.iterdir() if path.is_dir())


def _expected_violations(case_root: Path) -> Set[Tuple[str, int, str]]:
    expected = set()
    for path in case_root.rglob("*.py"):
        rel = scope_of(str(path.relative_to(case_root)))
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(line)
            if match is None:
                continue
            for code in match.group("codes").split(","):
                expected.add((rel, lineno, code.strip()))
    return expected


def _actual_violations(case_root: Path) -> Set[Tuple[str, int, str]]:
    violations, scanned = run_paths([case_root], ALL_RULES)
    assert scanned > 0, f"fixture tree {case_root} contained no python files"
    return {(scope_of(v.relpath), v.line, v.code) for v in violations}


@pytest.mark.parametrize("case", CASES)
def test_fixture_tree_matches_expectations(case):
    case_root = FIXTURES / case
    expected = _expected_violations(case_root)
    actual = _actual_violations(case_root)
    missing = expected - actual
    unexpected = actual - expected
    assert not missing, f"rule(s) failed to fire on marked lines: {sorted(missing)}"
    assert not unexpected, f"false positives on unmarked lines: {sorted(unexpected)}"


@pytest.mark.parametrize("code", sorted(RULES_BY_CODE))
def test_every_rule_has_flag_pass_and_disable_fixtures(code):
    """Each rule demonstrably fires, stays quiet, and honours its escape hatch."""
    case_root = FIXTURES / code.lower()
    assert case_root.is_dir(), f"no fixture tree for {code}"
    expected = _expected_violations(case_root)
    assert any(c == code for _, _, c in expected), f"no flag case for {code}"
    sources = "\n".join(p.read_text() for p in case_root.rglob("*.py"))
    assert f"reprolint: disable={code}" in sources, f"no disable-comment case for {code}"
    # Pass cases: at least one function marked good_*/justified_* conventionally.
    assert "def good_" in sources, f"no pass case for {code}"


def test_cli_reports_fixture_violations_with_nonzero_exit():
    """End-to-end CLI check on one fixture tree (format + exit status)."""
    completed = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", str(FIXTURES / "rl001")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 1
    assert "RL001" in completed.stdout
    # path:line:col: CODE message
    assert re.search(r"example\.py:\d+:\d+: RL001 ", completed.stdout)


def test_disable_comment_requires_matching_code(tmp_path):
    """A disable comment for a different rule does not suppress a violation."""
    tree = tmp_path / "src" / "repro" / "core"
    tree.mkdir(parents=True)
    source = (
        "import numpy as np\n"
        "def f(v):\n"
        "    return np.exp(v)  # reprolint: disable=RL002 -- wrong code on purpose\n"
    )
    (tree / "wrong_code.py").write_text(source)
    violations, _ = run_paths([tmp_path / "src"], ALL_RULES)
    assert [v.code for v in violations] == ["RL001"]
