"""RL005 golden fixture, driver side: a trace-hash-pinned driver module.

The module name matters, not the content: ``repro.core.classifier`` is one
of the trace-closure roots, so everything it imports (``pinned`` below) must
obey the determinism rule, while modules it does *not* import
(``repro.evaluation.unpinned``) are out of scope.
"""

from ..stream.pinned import classify_once

__all__ = ["classify_once"]
