"""RL005 golden fixture, scope control: NOT imported by any pinned driver.

The exact patterns flagged in ``repro.core.pinned`` must stay silent here —
the rule scopes itself by the import closure, not by directory.
"""

import time

import numpy as np


def wall_clock_is_fine_here() -> float:
    return time.time()


def global_rng_is_fine_here(labels):
    np.random.shuffle(labels)
    return labels
