"""RL005 golden fixture: this module is imported by the pinned driver."""

import random
import time

import numpy as np


def bad_wall_clock() -> float:
    return time.time()  # EXPECT: RL005


def bad_global_numpy_rng(labels):
    np.random.shuffle(labels)  # EXPECT: RL005
    return labels


def bad_unseeded_generator():
    return np.random.default_rng()  # EXPECT: RL005


def bad_stdlib_rng(labels):
    return random.choice(labels)  # EXPECT: RL005


def bad_set_iteration(labels):
    return [label for label in set(labels)]  # EXPECT: RL005


def bad_set_materialisation(labels):
    return list(set(labels))  # EXPECT: RL005


def good_seeded_generator(seed: int):
    return np.random.default_rng(seed)


def good_generator_parameter(rng: np.random.Generator, count: int):
    return rng.normal(size=count)


def good_sorted_set(labels):
    return [label for label in sorted(set(labels), key=repr)]


def justified_jitter():
    return time.time()  # reprolint: disable=RL005 -- fixture: log timestamp, not in the trace


def classify_once(query) -> int:
    return 0
