"""RL003 golden fixture, owner side: attaches must pair with the tracker."""

from multiprocessing import resource_tracker, shared_memory


def good_create(size: int) -> shared_memory.SharedMemory:
    # Creating with ``create=True`` is ownership, not an attach; no tracker
    # handling is required (the creator is the single unlinker).
    return shared_memory.SharedMemory(name="fixture", create=True, size=size)


def good_attach(name: str) -> shared_memory.SharedMemory:
    original = resource_tracker.register
    resource_tracker.register = lambda target, rtype: None
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


def bad_attach(name: str) -> shared_memory.SharedMemory:
    return shared_memory.SharedMemory(name=name, create=False)  # EXPECT: RL003
