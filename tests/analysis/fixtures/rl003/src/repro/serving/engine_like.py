"""RL003 golden fixture, outsider side: shm capability stays in shared_mem."""

from multiprocessing import shared_memory  # EXPECT: RL003


def bad_direct_unlink(shm) -> None:
    shm.unlink()  # EXPECT: RL003


def bad_attribute_unlink(store) -> None:
    store.segment.unlink()  # EXPECT: RL003


def bad_outsider_dispose(store) -> None:
    store.dispose()  # EXPECT: RL003


def good_unrelated_dispose(widget) -> None:
    # ``dispose`` on a non-store-like receiver is someone else's API, not a
    # segment lifecycle event; the rule must not flag it.
    widget.dispose()


def good_path_cleanup(path) -> None:
    # ``unlink`` on a non-shm-like name is filesystem cleanup, not an shm
    # lifecycle event; the rule must not flag it.
    path.unlink()


def justified_probe(name: str):
    from multiprocessing import shared_memory as sm  # reprolint: disable=RL003 -- fixture: diagnostic probe

    return sm
