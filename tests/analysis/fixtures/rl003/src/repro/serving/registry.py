"""RL003 golden fixture, disposer side: eviction may dispose via the API.

The model registry is one of exactly two modules (with the engine) allowed
to trigger segment disposal — always through ``SharedColumnStore.dispose``,
never a raw ``unlink``.
"""


def good_eviction_dispose(entry) -> None:
    # Tenant eviction unlinks the tenant's segment through the sanctioned
    # shared_mem API; allowed here by path.
    entry.store.dispose()


def bad_eviction_raw_unlink(entry) -> None:
    # Even the registry may not reach past the API to the raw handle.
    entry.shm.unlink()  # EXPECT: RL003
