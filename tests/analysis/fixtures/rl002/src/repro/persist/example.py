"""RL002 golden fixture: the pickle-free persistence contract."""

import pickle  # EXPECT: RL002
from pickle import loads  # EXPECT: RL002

import numpy as np


def bad_default_load(path: str):
    return np.load(path)  # EXPECT: RL002


def bad_pickled_load(path: str):
    return np.load(path, allow_pickle=True)  # EXPECT: RL002


def bad_pickled_save(path: str, array: np.ndarray) -> None:
    np.save(path, array, allow_pickle=True)  # EXPECT: RL002


def good_load(path: str):
    return np.load(path, allow_pickle=False)


def good_save(path: str, array: np.ndarray) -> None:
    np.save(path, array, allow_pickle=False)


def justified_legacy_reader(path: str):
    return np.load(path)  # reprolint: disable=RL002 -- fixture: hypothetical migration shim
