"""RL004 golden fixture: decay reads thread an explicit logical clock."""

import time


def bad_wall_clock_read(entry) -> None:
    entry.decay_to(time.time())  # EXPECT: RL004


def bad_monotonic(entry) -> float:
    return time.monotonic()  # EXPECT: RL004


def bad_pinned_clock(entry) -> None:
    entry.decay_to(3.0)  # EXPECT: RL004


def bad_pinned_decay_factor(rate: float) -> float:
    return decay_factor(rate, 10.0)  # EXPECT: RL004


def decay_factor(rate: float, elapsed: float) -> float:
    """Stand-in for repro.index.decay.decay_factor."""
    return 1.0


def good_threaded_clock(entry, now: float) -> None:
    entry.decay_to(now)


def good_clock_attribute(entry, clock) -> None:
    entry.decay_to(clock.now)


def justified_epoch_reset(entry) -> None:
    entry.decay_to(0.0)  # reprolint: disable=RL004 -- fixture: epoch zero is the defined origin
