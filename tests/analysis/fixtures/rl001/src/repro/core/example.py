"""RL001 golden fixture: probability-space math outside ``stats/``.

Every line carrying an ``# EXPECT: CODE`` marker must be flagged with that
code; every other line must stay silent.  The aliased-import case pins that
renaming numpy does not dodge the rule.
"""

import math

import numpy as np
import numpy as xp

from repro.stats.gaussian import log_gaussian_pdf, logsumexp, safe_exp


def bad_exp(log_density: float) -> float:
    return np.exp(log_density)  # EXPECT: RL001


def bad_math_exp(log_density: float) -> float:
    return math.exp(log_density)  # EXPECT: RL001


def bad_aliased_exp(log_density: float) -> float:
    return xp.exp(log_density)  # EXPECT: RL001


def bad_pdf_product(x, mean, var) -> float:
    return gaussian_pdf(x, mean, var) * gaussian_pdf(x, mean, var)  # EXPECT: RL001


def gaussian_pdf(x, mean, var) -> float:
    """Stand-in linear-space density used by the product case above."""
    return 0.0


def good_log_space(x, mean, var) -> float:
    return log_gaussian_pdf(x, mean, var) + log_gaussian_pdf(x, mean, var)


def good_logsumexp(values: np.ndarray) -> float:
    return float(logsumexp(values))


def good_sanctioned_helper(log_value: float) -> float:
    return safe_exp(log_value)


def justified_boundary(log_density: float) -> float:
    return np.exp(log_density)  # reprolint: disable=RL001 -- linear-space API boundary
