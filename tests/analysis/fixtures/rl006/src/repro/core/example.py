"""RL006 golden fixture: batch hot paths stay vectorised."""

import numpy as np


def predict_batch(model, queries: np.ndarray) -> list:
    results = []
    for query in queries:  # EXPECT: RL006
        results.append(model.classify_anytime(query))
    return results


def score_batch(model, queries: np.ndarray) -> list:
    out = []
    for index in range(len(queries)):  # EXPECT: RL006
        out.append(model.density(queries[index]))
    return out


def good_vectorised_batch(model, queries: np.ndarray) -> np.ndarray:
    return model.log_density_batch(queries)


def good_bookkeeping_batch(model, queries: np.ndarray) -> list:
    scores = model.log_density_batch(queries)
    results = []
    for query, score in zip(queries, scores):
        results.append((query, float(score)))
    return results


def scalar_loop_outside_hot_path(model, queries: np.ndarray) -> list:
    # Not a hot-path function name: the scalar reference loop is the whole
    # point of e.g. ``pdq_scalar``-style equivalence tests.
    return [model.density(query) for query in queries]


def justified_fallback_batch(model, queries: np.ndarray) -> list:
    results = []
    for query in queries:  # reprolint: disable=RL006 -- fixture: documented scalar fallback
        results.append(model.classify_anytime(query))
    return results
