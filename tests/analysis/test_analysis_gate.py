"""Tier-1 enforcement of the static-analysis gate.

Mirrors ``tests/docs/test_docstring_audit.py``: the dependency-free half
(reprolint) always runs, so a PR that violates a forest invariant fails the
unit suite on any machine; the mypy half runs when mypy is installed (the CI
``typecheck`` job always has it) and skips cleanly in minimal containers.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_reprolint_clean():
    """`python -m tools.reprolint src/ tests/ benchmarks/` exits 0 on the repo."""
    completed = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src/", "tests/", "benchmarks/"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        "reprolint found invariant violations:\n" + completed.stdout + completed.stderr
    )
    assert "reprolint ok" in completed.stdout


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed in this environment (enforced by the CI typecheck job)",
)
def test_repo_typechecks_clean():
    """`mypy src/repro` exits 0 under the pyproject strict-leaning config."""
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        "mypy found typing errors:\n" + completed.stdout + completed.stderr
    )
