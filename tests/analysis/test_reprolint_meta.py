"""Meta-tests over the rule registry: documentation and CLI contracts.

The ISSUE contract is that every rule ships with an error code, a docstring
and a DESIGN.md entry — this file machine-checks the checker itself, so a
seventh rule added without documentation fails CI the same way an
undocumented public API does.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import ALL_RULES, RULES_BY_CODE

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_rule_codes_are_unique_and_well_formed():
    codes = [rule.code for rule in ALL_RULES]
    assert len(set(codes)) == len(codes)
    for code in codes:
        assert code.startswith("RL") and code[2:].isdigit() and len(code) == 5


@pytest.mark.parametrize("code", sorted(RULES_BY_CODE))
def test_every_rule_is_documented(code):
    rule = RULES_BY_CODE[code]
    doc = (rule.__doc__ or "").strip()
    assert doc, f"{code} has no docstring"
    assert doc.startswith(f"{code}:"), f"{code} docstring must lead with its code"
    assert rule.name and rule.name != "abstract-rule"
    design = (REPO_ROOT / "DESIGN.md").read_text()
    assert code in design, f"{code} is not documented in DESIGN.md's enforced-invariants section"


def test_cli_list_names_every_rule():
    completed = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "--list"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0
    for rule in ALL_RULES:
        assert rule.code in completed.stdout


@pytest.mark.parametrize("code", sorted(RULES_BY_CODE))
def test_cli_explain_prints_rule_documentation(code):
    completed = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "--explain", code],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0
    assert code in completed.stdout
    assert RULES_BY_CODE[code].name in completed.stdout


def test_cli_rejects_unknown_rule_code():
    completed = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "--explain", "RL999"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 2
    assert "unknown rule code" in completed.stderr
