"""Tests for the shared bulk-loading helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulkload import chunk_sizes, pack_entries_into_nodes, stack_levels
from repro.index import LeafEntry, TreeParameters


def test_chunk_sizes_single_chunk_when_it_fits():
    assert chunk_sizes(5, capacity=8, minimum=3) == [5]
    assert chunk_sizes(1, capacity=8, minimum=3) == [1]


def test_chunk_sizes_rebalances_small_tail():
    sizes = chunk_sizes(9, capacity=8, minimum=3)
    assert sum(sizes) == 9
    assert all(size >= 3 for size in sizes)
    assert all(size <= 8 for size in sizes)


def test_chunk_sizes_exact_multiple():
    assert chunk_sizes(16, capacity=8, minimum=3) == [8, 8]


def test_chunk_sizes_validation():
    with pytest.raises(ValueError):
        chunk_sizes(0, 8, 3)
    with pytest.raises(ValueError):
        chunk_sizes(10, 4, 5)
    with pytest.raises(ValueError):
        chunk_sizes(10, 0, 0)


@settings(deadline=None, max_examples=100)
@given(st.integers(1, 500), st.integers(2, 20))
def test_chunk_sizes_property(total, capacity):
    minimum = max(1, capacity // 2)
    sizes = chunk_sizes(total, capacity, minimum)
    assert sum(sizes) == total
    assert all(size <= capacity for size in sizes)
    if len(sizes) > 1:
        assert all(size >= minimum for size in sizes)


def test_pack_entries_into_nodes_counts():
    entries = [LeafEntry(point=np.array([float(i), 0.0])) for i in range(10)]
    nodes = pack_entries_into_nodes(entries, level=0, capacity=4, minimum=2)
    assert sum(len(node.entries) for node in nodes) == 10
    assert all(node.level == 0 for node in nodes)
    assert all(2 <= len(node.entries) <= 4 for node in nodes)


def test_stack_levels_builds_single_root():
    rng = np.random.default_rng(0)
    entries = [LeafEntry(point=p) for p in rng.normal(size=(40, 2))]
    params = TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    leaves = pack_entries_into_nodes(entries, level=0, capacity=4, minimum=2)
    root = stack_levels(leaves, params, order_nodes=lambda e: e)
    assert root.level >= 1
    assert root.n_objects == 40
    # Every leaf entry is reachable exactly once.
    assert sum(1 for _ in root.iter_leaf_entries()) == 40


def test_stack_levels_single_leaf_is_its_own_root():
    entries = [LeafEntry(point=np.array([0.0, 0.0]))]
    params = TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    leaves = pack_entries_into_nodes(entries, level=0, capacity=4, minimum=2)
    root = stack_levels(leaves, params, order_nodes=lambda e: e)
    assert root.level == 0
    assert len(root.entries) == 1
