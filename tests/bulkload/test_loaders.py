"""Behavioural tests shared by all bulk loading strategies."""

import numpy as np
import pytest

from repro.bulkload import BULK_LOADERS, make_bulk_loader
from repro.core import BayesTreeConfig, make_descent_strategy
from repro.core.frontier import pdq
from repro.index import TreeParameters
from repro.stats import silverman_bandwidth

CONFIG = BayesTreeConfig(
    tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
)

LOADER_NAMES = sorted(BULK_LOADERS)


def training_points(seed=0, count=120, dim=3):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [
            rng.normal(loc=0.0, scale=1.0, size=(count // 2, dim)),
            rng.normal(loc=5.0, scale=1.5, size=(count - count // 2, dim)),
        ]
    )


def test_registry_rejects_unknown_names():
    with pytest.raises(ValueError):
        make_bulk_loader("does-not-exist")


def test_registry_contains_all_paper_strategies():
    assert {"iterative", "hilbert", "goldberger", "em_topdown"} <= set(BULK_LOADERS)
    assert {"zcurve", "str"} <= set(BULK_LOADERS)


@pytest.mark.parametrize("name", LOADER_NAMES)
def test_loader_preserves_every_training_point(name):
    points = training_points(seed=1)
    loader = make_bulk_loader(name, config=CONFIG)
    tree = loader.build_tree(points)
    assert tree.n_objects == len(points)
    stored = np.array(sorted(tuple(e.point) for e in tree.index.iter_leaf_entries()))
    expected = np.array(sorted(tuple(p) for p in points))
    np.testing.assert_allclose(stored, expected)


@pytest.mark.parametrize("name", LOADER_NAMES)
def test_loader_sets_labels_and_bandwidths(name):
    points = training_points(seed=2, count=60)
    loader = make_bulk_loader(name, config=CONFIG)
    tree = loader.build_tree(points, label="class-a")
    assert tree.bandwidth is not None
    np.testing.assert_allclose(tree.bandwidth, silverman_bandwidth(points))
    # Leaf entries resolve the tree-shared bandwidth at evaluation time
    # instead of carrying per-entry stamped copies.
    for entry in tree.index.iter_leaf_entries():
        assert entry.label == "class-a"
        assert entry.bandwidth is None
        np.testing.assert_allclose(entry.resolve_bandwidth(tree.bandwidth), tree.bandwidth)


@pytest.mark.parametrize("name", LOADER_NAMES)
def test_loader_cluster_features_consistent(name):
    points = training_points(seed=3, count=80)
    loader = make_bulk_loader(name, config=CONFIG)
    tree = loader.build_tree(points)
    # Entry CF/MBR consistency throughout the hierarchy (fanout may be
    # relaxed and EMTopDown may be unbalanced).
    tree.validate(enforce_fanout=False, require_balance=False)
    cf = tree.root.compute_cluster_feature()
    assert cf.n == pytest.approx(len(points))
    np.testing.assert_allclose(cf.mean(), points.mean(axis=0), atol=1e-8)


@pytest.mark.parametrize("name", LOADER_NAMES)
def test_loader_full_refinement_equals_kernel_density(name):
    points = training_points(seed=4, count=60)
    loader = make_bulk_loader(name, config=CONFIG)
    tree = loader.build_tree(points)
    query = points[7] + 0.05
    frontier = tree.frontier(query)
    frontier.refine_fully(make_descent_strategy("glo"))
    expected = pdq(
        query, list(tree.index.iter_leaf_entries()), leaf_bandwidth=tree.bandwidth
    )
    assert frontier.density == pytest.approx(expected, rel=1e-9)


@pytest.mark.parametrize("name", ["hilbert", "zcurve", "str"])
def test_packing_loaders_respect_fanout_bounds(name):
    points = training_points(seed=5, count=200)
    loader = make_bulk_loader(name, config=CONFIG)
    tree = loader.build_tree(points)
    tree.validate(enforce_fanout=True, require_balance=True)


@pytest.mark.parametrize("name", LOADER_NAMES)
def test_loader_handles_tiny_training_sets(name):
    points = training_points(seed=6, count=3)
    loader = make_bulk_loader(name, config=CONFIG)
    tree = loader.build_tree(points)
    assert tree.n_objects == 3
    assert tree.full_model_density(points[0]) > 0


@pytest.mark.parametrize("name", LOADER_NAMES)
def test_loader_handles_duplicate_points(name):
    points = np.tile(np.array([[1.0, 2.0, 3.0]]), (30, 1))
    loader = make_bulk_loader(name, config=CONFIG)
    tree = loader.build_tree(points)
    assert tree.n_objects == 30
    assert np.isfinite(tree.full_model_density(points[0]))


@pytest.mark.parametrize("name", LOADER_NAMES)
def test_loader_rejects_empty_training_set(name):
    loader = make_bulk_loader(name, config=CONFIG)
    with pytest.raises(ValueError):
        loader.build_tree(np.empty((0, 2)))


def test_em_topdown_is_deterministic_given_seed():
    points = training_points(seed=7, count=80)
    tree_a = make_bulk_loader("em_topdown", config=CONFIG, random_state=42).build_tree(points)
    tree_b = make_bulk_loader("em_topdown", config=CONFIG, random_state=42).build_tree(points)
    assert tree_a.node_count() == tree_b.node_count()
    assert tree_a.height() == tree_b.height()


def test_em_topdown_leaf_capacity_respected():
    points = training_points(seed=8, count=150)
    tree = make_bulk_loader("em_topdown", config=CONFIG, random_state=0).build_tree(points)
    for node in tree.index.iter_nodes():
        if node.is_leaf:
            assert len(node.entries) <= CONFIG.tree.leaf_capacity


def test_goldberger_respects_node_capacities():
    points = training_points(seed=9, count=120)
    tree = make_bulk_loader("goldberger", config=CONFIG).build_tree(points)
    for node in tree.index.iter_nodes():
        capacity = CONFIG.tree.leaf_capacity if node.is_leaf else CONFIG.tree.max_fanout
        assert len(node.entries) <= capacity


def test_bulk_loads_produce_fewer_or_equal_nodes_than_iterative():
    """Packed trees are at least as compact as an insertion-built tree."""
    points = training_points(seed=10, count=200)
    iterative_nodes = make_bulk_loader("iterative", config=CONFIG).build_tree(points).node_count()
    hilbert_nodes = make_bulk_loader("hilbert", config=CONFIG).build_tree(points).node_count()
    assert hilbert_nodes <= iterative_nodes


def test_iterative_loader_shuffle_reproducible():
    points = training_points(seed=11, count=60)
    a = make_bulk_loader("iterative", config=CONFIG, shuffle=True, random_state=1).build_tree(points)
    b = make_bulk_loader("iterative", config=CONFIG, shuffle=True, random_state=1).build_tree(points)
    assert a.node_count() == b.node_count()
