"""Tier-1 enforcement of the public-API docstring audit.

Runs ``docs/check_docstrings.py`` — the dependency-free half of the docs
gate — so a PR that lands undocumented public API fails the unit suite, not
just the pdoc CI job.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_public_api_docstrings_are_complete():
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "docs" / "check_docstrings.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        "docstring audit failed:\n" + completed.stdout + completed.stderr
    )
    assert "docstring audit ok" in completed.stdout
