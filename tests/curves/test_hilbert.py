"""Unit tests for the Hilbert curve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import hilbert_index, hilbert_order, hilbert_values


def test_hilbert_index_is_bijective_on_small_grid():
    bits, dim = 3, 2
    size = 1 << bits
    keys = {hilbert_index((x, y), bits) for x in range(size) for y in range(size)}
    assert keys == set(range(size * size))


def test_hilbert_index_is_bijective_in_3d():
    bits, dim = 2, 3
    size = 1 << bits
    keys = {
        hilbert_index((x, y, z), bits)
        for x in range(size)
        for y in range(size)
        for z in range(size)
    }
    assert keys == set(range(size ** 3))


def test_hilbert_curve_neighbouring_indices_are_adjacent_cells():
    """Consecutive Hilbert indices differ by exactly one grid step (locality)."""
    bits = 3
    size = 1 << bits
    cells_by_index = {}
    for x in range(size):
        for y in range(size):
            cells_by_index[hilbert_index((x, y), bits)] = (x, y)
    for index in range(size * size - 1):
        x1, y1 = cells_by_index[index]
        x2, y2 = cells_by_index[index + 1]
        assert abs(x1 - x2) + abs(y1 - y2) == 1


def test_hilbert_index_input_validation():
    with pytest.raises(ValueError):
        hilbert_index((), 3)
    with pytest.raises(ValueError):
        hilbert_index((8, 0), 3)
    with pytest.raises(ValueError):
        hilbert_index((-1, 0), 3)


def test_hilbert_order_is_a_permutation():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(123, 4))
    order = hilbert_order(points, bits=6)
    assert sorted(order.tolist()) == list(range(123))


def test_hilbert_order_sorts_1d_data_monotonically():
    rng = np.random.default_rng(1)
    points = rng.uniform(size=(64, 1))
    order = hilbert_order(points, bits=10)
    sorted_points = points[order, 0]
    # Points falling into the same quantisation cell may keep their original
    # relative order, so allow inversions up to one grid cell.
    cell = 1.0 / (2**10 - 1)
    assert np.all(np.diff(sorted_points) >= -cell)


def test_hilbert_order_groups_clusters_contiguously():
    rng = np.random.default_rng(2)
    a = rng.uniform(0.0, 1.0, size=(25, 2))
    b = rng.uniform(50.0, 51.0, size=(25, 2))
    points = np.vstack([a, b])
    order = hilbert_order(points, bits=10)
    group = [0 if i < 25 else 1 for i in order]
    switches = sum(1 for i in range(1, len(group)) if group[i] != group[i - 1])
    assert switches == 1


def test_hilbert_values_distinct_for_distinct_cells():
    points = np.array([[float(x), float(y)] for x in range(8) for y in range(8)])
    keys = hilbert_values(points, bits=3)
    assert len(set(int(k) for k in keys)) == 64


def test_hilbert_locality_better_than_random_order():
    """Average coordinate jump along the Hilbert order should beat a shuffled order."""
    rng = np.random.default_rng(3)
    points = rng.uniform(size=(300, 2))
    order = hilbert_order(points, bits=8)
    hilbert_jumps = np.linalg.norm(np.diff(points[order], axis=0), axis=1).mean()
    shuffled = rng.permutation(300)
    random_jumps = np.linalg.norm(np.diff(points[shuffled], axis=0), axis=1).mean()
    assert hilbert_jumps < random_jumps


@settings(deadline=None, max_examples=30)
@given(st.integers(0, 10_000), st.integers(1, 5), st.integers(2, 40))
def test_hilbert_order_always_permutation(seed, dim, count):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(count, dim))
    order = hilbert_order(points, bits=5)
    assert sorted(order.tolist()) == list(range(count))


@settings(deadline=None, max_examples=20)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 10_000))
def test_hilbert_index_unique_per_cell_random_probe(dim, bits, seed):
    rng = np.random.default_rng(seed)
    size = 1 << bits
    cells = {tuple(rng.integers(0, size, size=dim)) for _ in range(20)}
    keys = [hilbert_index(cell, bits) for cell in cells]
    assert len(set(keys)) == len(cells)
    assert all(0 <= k < size ** dim for k in keys)
