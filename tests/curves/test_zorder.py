"""Unit tests for the Z-order curve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import quantise, z_order, z_value, z_values


def test_quantise_maps_bounding_box_corners():
    points = np.array([[0.0, 0.0], [1.0, 2.0], [0.5, 1.0]])
    grid = quantise(points, bits=4)
    np.testing.assert_array_equal(grid[0], [0, 0])
    np.testing.assert_array_equal(grid[1], [15, 15])
    np.testing.assert_array_equal(grid[2], [8, 8])


def test_quantise_constant_dimension_maps_to_zero():
    points = np.array([[1.0, 5.0], [2.0, 5.0]])
    grid = quantise(points, bits=3)
    assert set(grid[:, 1]) == {0}


def test_quantise_validates_input():
    with pytest.raises(ValueError):
        quantise(np.empty((0, 2)), bits=4)
    with pytest.raises(ValueError):
        quantise(np.zeros((3, 2)), bits=0)
    with pytest.raises(ValueError):
        quantise(np.zeros(3), bits=4)


def test_z_value_interleaves_bits():
    # 2-d, 2 bits: cell (1, 0) -> binary interleave x=01, y=00 -> 0b0010? depends
    # on order; check the known total ordering of the 2x2 grid instead.
    keys = {(x, y): z_value((x, y), bits=1) for x in (0, 1) for y in (0, 1)}
    assert sorted(keys.values()) == [0, 1, 2, 3]
    assert keys[(0, 0)] == 0
    assert keys[(1, 1)] == 3


def test_z_values_unique_for_distinct_cells():
    points = np.array([[float(x), float(y)] for x in range(4) for y in range(4)])
    keys = z_values(points, bits=2)
    assert len(set(int(k) for k in keys)) == 16


def test_z_order_sorts_1d_data_monotonically():
    rng = np.random.default_rng(0)
    points = rng.uniform(size=(50, 1))
    order = z_order(points, bits=10)
    sorted_points = points[order, 0]
    # Points falling into the same quantisation cell may keep their original
    # relative order, so allow inversions up to one grid cell.
    cell = 1.0 / (2**10 - 1)
    assert np.all(np.diff(sorted_points) >= -cell)


def test_z_order_is_a_permutation():
    rng = np.random.default_rng(1)
    points = rng.normal(size=(77, 3))
    order = z_order(points, bits=8)
    assert sorted(order.tolist()) == list(range(77))


def test_z_order_groups_nearby_points():
    # Two far-apart clusters must form contiguous runs in z-order.
    rng = np.random.default_rng(2)
    a = rng.uniform(0.0, 1.0, size=(20, 2))
    b = rng.uniform(100.0, 101.0, size=(20, 2))
    points = np.vstack([a, b])
    order = z_order(points, bits=10)
    group = [0 if i < 20 else 1 for i in order]
    switches = sum(1 for i in range(1, len(group)) if group[i] != group[i - 1])
    assert switches == 1


@settings(deadline=None, max_examples=30)
@given(st.integers(0, 10_000), st.integers(1, 4), st.integers(2, 40))
def test_z_order_always_permutation(seed, dim, count):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(count, dim))
    order = z_order(points, bits=6)
    assert sorted(order.tolist()) == list(range(count))
