"""Unit tests for repro.stats.kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    EpanechnikovKernel,
    GaussianKernel,
    make_kernel,
    silverman_bandwidth,
    silverman_bandwidth_from_stats,
)


def test_silverman_bandwidth_shrinks_with_sample_size():
    rng = np.random.default_rng(0)
    small = rng.normal(size=(50, 3))
    large = rng.normal(size=(5000, 3))
    h_small = silverman_bandwidth(small)
    h_large = silverman_bandwidth(large)
    assert np.all(h_large < h_small)


def test_silverman_bandwidth_scales_with_spread():
    rng = np.random.default_rng(1)
    base = rng.normal(size=(200, 2))
    wide = base * 10.0
    np.testing.assert_allclose(silverman_bandwidth(wide), 10 * silverman_bandwidth(base), rtol=1e-9)


def test_silverman_bandwidth_handles_constant_dimension():
    points = np.zeros((100, 2))
    points[:, 0] = np.linspace(0, 1, 100)
    h = silverman_bandwidth(points)
    assert np.all(h > 0)


def test_silverman_constant_dimension_falls_back_to_data_scale():
    """Regression: a constant feature on a tiny-scale dataset used to get a
    unit-sigma fallback — a kernel ~10⁶× wider than the data."""
    rng = np.random.default_rng(5)
    points = rng.normal(scale=1e-6, size=(400, 3))
    # Constant feature at the data's scale; a power of two keeps the column
    # mean exact so its standard deviation is exactly zero.
    points[:, 1] = 2.0**-20
    h = silverman_bandwidth(points)
    sigma = points.std(axis=0)
    mean_positive_sigma = sigma[sigma > 0].mean()
    factor = h[0] / sigma[0]
    # The constant dimension inherits the mean positive sigma, so its
    # bandwidth stays at the dataset's own scale instead of ~1.
    np.testing.assert_allclose(h[1], mean_positive_sigma * factor, rtol=1e-9)
    assert h[1] < 1e-4


def test_silverman_all_constant_dimensions_keep_unit_fallback():
    points = np.full((50, 2), 7.0)
    h = silverman_bandwidth(points)
    n, d = points.shape
    factor = (4.0 / (d + 2.0)) ** (1.0 / (d + 4.0)) * n ** (-1.0 / (d + 4.0))
    np.testing.assert_allclose(h, factor)


def test_silverman_from_stats_matches_full_scan():
    rng = np.random.default_rng(6)
    points = rng.normal(loc=3.0, scale=0.5, size=(300, 4))
    n = points.shape[0]
    linear_sum = points.sum(axis=0)
    squared_sum = (points * points).sum(axis=0)
    np.testing.assert_allclose(
        silverman_bandwidth_from_stats(n, linear_sum, squared_sum),
        silverman_bandwidth(points),
        rtol=1e-9,
    )


def test_silverman_from_stats_rejects_non_positive_count():
    with pytest.raises(ValueError):
        silverman_bandwidth_from_stats(0, np.zeros(2), np.zeros(2))


def test_silverman_rejects_empty_input():
    with pytest.raises(ValueError):
        silverman_bandwidth(np.empty((0, 2)))


def test_gaussian_kernel_is_gaussian_with_h_squared_variance():
    kernel = GaussianKernel(center=np.array([1.0, 2.0]), bandwidth=np.array([0.5, 2.0]))
    gaussian = kernel.as_gaussian()
    np.testing.assert_allclose(gaussian.variance, [0.25, 4.0])
    x = np.array([1.2, 1.5])
    assert kernel.pdf(x) == pytest.approx(gaussian.pdf(x))


def test_gaussian_kernel_accepts_scalar_bandwidth():
    kernel = GaussianKernel(center=np.zeros(3), bandwidth=np.asarray(0.7))
    np.testing.assert_allclose(kernel.bandwidth, [0.7, 0.7, 0.7])


def test_gaussian_kernel_rejects_non_positive_bandwidth():
    with pytest.raises(ValueError):
        GaussianKernel(center=np.zeros(2), bandwidth=np.array([1.0, 0.0]))


def test_epanechnikov_kernel_zero_outside_support():
    kernel = EpanechnikovKernel(center=np.zeros(2), bandwidth=np.ones(2))
    assert kernel.pdf(np.array([2.0, 0.0])) == 0.0
    assert kernel.pdf(np.array([0.5, 0.5])) > 0.0


def test_epanechnikov_kernel_integrates_to_one_1d():
    kernel = EpanechnikovKernel(center=np.array([0.0]), bandwidth=np.array([1.5]))
    xs = np.linspace(-2, 2, 4001)
    values = np.array([kernel.pdf(np.array([x])) for x in xs])
    integral = np.trapezoid(values, xs)
    assert integral == pytest.approx(1.0, abs=1e-3)


def test_gaussian_kernel_integrates_to_one_1d():
    kernel = GaussianKernel(center=np.array([0.3]), bandwidth=np.array([0.8]))
    xs = np.linspace(-5, 6, 4001)
    values = np.array([kernel.pdf(np.array([x])) for x in xs])
    integral = np.trapezoid(values, xs)
    assert integral == pytest.approx(1.0, abs=1e-3)


def test_make_kernel_dispatch():
    gaussian = make_kernel("gaussian", np.zeros(2), np.ones(2))
    epan = make_kernel("epanechnikov", np.zeros(2), np.ones(2))
    assert isinstance(gaussian, GaussianKernel)
    assert isinstance(epan, EpanechnikovKernel)
    with pytest.raises(ValueError):
        make_kernel("tophat", np.zeros(2), np.ones(2))


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 10_000), st.floats(0.1, 2.0))
def test_kernels_peak_at_center(seed, bandwidth):
    rng = np.random.default_rng(seed)
    center = rng.normal(size=2)
    for name in ("gaussian", "epanechnikov"):
        kernel = make_kernel(name, center, np.full(2, bandwidth))
        peak = kernel.pdf(center)
        away = kernel.pdf(center + bandwidth / 2)
        assert peak >= away >= 0
