"""Unit tests for repro.stats.kl."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    Gaussian,
    GaussianMixture,
    kl_gaussian,
    kl_matching_distance,
    kl_mixture_monte_carlo,
)


def test_kl_is_zero_for_identical_gaussians():
    g = Gaussian(mean=np.array([1.0, -1.0]), variance=np.array([0.5, 2.0]))
    assert kl_gaussian(g, g) == pytest.approx(0.0, abs=1e-12)


def test_kl_univariate_closed_form():
    p = Gaussian(mean=np.array([0.0]), variance=np.array([1.0]))
    q = Gaussian(mean=np.array([1.0]), variance=np.array([2.0]))
    expected = 0.5 * (np.log(2.0) + (1.0 + 1.0) / 2.0 - 1.0)
    assert kl_gaussian(p, q) == pytest.approx(expected)


def test_kl_is_asymmetric_in_general():
    p = Gaussian(mean=np.array([0.0]), variance=np.array([1.0]))
    q = Gaussian(mean=np.array([0.0]), variance=np.array([4.0]))
    assert kl_gaussian(p, q) != pytest.approx(kl_gaussian(q, p))


def test_kl_requires_matching_dimensions():
    with pytest.raises(ValueError):
        kl_gaussian(
            Gaussian(mean=np.zeros(2), variance=np.ones(2)),
            Gaussian(mean=np.zeros(3), variance=np.ones(3)),
        )


def test_kl_additive_over_independent_dimensions():
    p1 = Gaussian(mean=np.array([0.0]), variance=np.array([1.0]))
    q1 = Gaussian(mean=np.array([0.5]), variance=np.array([1.5]))
    p2 = Gaussian(mean=np.array([2.0]), variance=np.array([0.7]))
    q2 = Gaussian(mean=np.array([1.0]), variance=np.array([0.9]))
    p = Gaussian(mean=np.array([0.0, 2.0]), variance=np.array([1.0, 0.7]))
    q = Gaussian(mean=np.array([0.5, 1.0]), variance=np.array([1.5, 0.9]))
    assert kl_gaussian(p, q) == pytest.approx(kl_gaussian(p1, q1) + kl_gaussian(p2, q2))


def test_matching_distance_zero_when_coarse_contains_fine_components():
    components = [
        Gaussian(mean=np.array([0.0, 0.0]), variance=np.ones(2), weight=0.5),
        Gaussian(mean=np.array([3.0, 3.0]), variance=np.ones(2), weight=0.5),
    ]
    fine = GaussianMixture(components)
    coarse = GaussianMixture([c.with_weight(1.0) for c in components])
    assert kl_matching_distance(fine, coarse) == pytest.approx(0.0, abs=1e-12)


def test_matching_distance_decreases_with_better_approximation():
    fine = GaussianMixture(
        [
            Gaussian(mean=np.array([0.0]), variance=np.array([1.0]), weight=0.5),
            Gaussian(mean=np.array([10.0]), variance=np.array([1.0]), weight=0.5),
        ]
    )
    bad = GaussianMixture([Gaussian(mean=np.array([5.0]), variance=np.array([1.0]))])
    good = GaussianMixture(
        [
            Gaussian(mean=np.array([0.5]), variance=np.array([1.0])),
            Gaussian(mean=np.array([9.5]), variance=np.array([1.0])),
        ]
    )
    assert kl_matching_distance(fine, good) < kl_matching_distance(fine, bad)


def test_matching_distance_requires_nonempty_coarse():
    fine = GaussianMixture([Gaussian(mean=np.zeros(1), variance=np.ones(1))])
    with pytest.raises(ValueError):
        kl_matching_distance(fine, GaussianMixture([]))


def test_monte_carlo_kl_near_zero_for_identical_mixtures():
    rng = np.random.default_rng(0)
    mixture = GaussianMixture(
        [
            Gaussian(mean=np.array([0.0, 0.0]), variance=np.ones(2), weight=0.4),
            Gaussian(mean=np.array([4.0, 4.0]), variance=np.ones(2), weight=0.6),
        ]
    )
    estimate = kl_mixture_monte_carlo(mixture, mixture, rng, samples=500)
    assert estimate == pytest.approx(0.0, abs=1e-9)


def test_monte_carlo_kl_positive_for_different_mixtures():
    rng = np.random.default_rng(1)
    p = GaussianMixture([Gaussian(mean=np.array([0.0]), variance=np.array([1.0]))])
    q = GaussianMixture([Gaussian(mean=np.array([5.0]), variance=np.array([1.0]))])
    assert kl_mixture_monte_carlo(p, q, rng, samples=2000) > 1.0


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 5000), st.integers(1, 4))
def test_kl_non_negative(seed, dim):
    rng = np.random.default_rng(seed)
    p = Gaussian(mean=rng.normal(size=dim), variance=rng.uniform(0.1, 3.0, size=dim))
    q = Gaussian(mean=rng.normal(size=dim), variance=rng.uniform(0.1, 3.0, size=dim))
    assert kl_gaussian(p, q) >= -1e-10
