"""Unit tests for repro.stats.mixture."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import Gaussian, GaussianMixture


def two_component_mixture():
    return GaussianMixture(
        [
            Gaussian(mean=np.array([0.0, 0.0]), variance=np.ones(2), weight=0.3),
            Gaussian(mean=np.array([5.0, 5.0]), variance=np.ones(2) * 2.0, weight=0.7),
        ]
    )


def test_pdf_is_weighted_sum_of_components():
    mixture = two_component_mixture()
    x = np.array([1.0, -1.0])
    expected = 0.3 * mixture[0].pdf(x) + 0.7 * mixture[1].pdf(x)
    assert mixture.pdf(x) == pytest.approx(expected)


def test_log_pdf_matches_log_of_pdf():
    mixture = two_component_mixture()
    x = np.array([4.0, 4.5])
    assert mixture.log_pdf(x) == pytest.approx(math.log(mixture.pdf(x)))


def test_log_pdf_stable_far_from_all_components():
    mixture = two_component_mixture()
    x = np.array([500.0, -500.0])
    assert mixture.pdf(x) == pytest.approx(0.0)
    assert np.isfinite(mixture.log_pdf(x))


def test_empty_mixture_log_pdf_is_minus_infinity():
    assert GaussianMixture([]).log_pdf(np.zeros(2)) == -math.inf


def test_components_must_share_dimension():
    with pytest.raises(ValueError):
        GaussianMixture(
            [
                Gaussian(mean=np.zeros(2), variance=np.ones(2)),
                Gaussian(mean=np.zeros(3), variance=np.ones(3)),
            ]
        )


def test_normalised_weights_sum_to_one():
    mixture = GaussianMixture(
        [
            Gaussian(mean=np.zeros(1), variance=np.ones(1), weight=2.0),
            Gaussian(mean=np.ones(1), variance=np.ones(1), weight=6.0),
        ]
    )
    normalised = mixture.normalised()
    assert normalised.total_weight == pytest.approx(1.0)
    np.testing.assert_allclose(normalised.weights, [0.25, 0.75])


def test_responsibilities_sum_to_one_and_favor_nearest_component():
    mixture = two_component_mixture()
    r = mixture.responsibilities(np.array([5.0, 5.0]))
    assert r.sum() == pytest.approx(1.0)
    assert r[1] > r[0]


def test_from_points_creates_one_component_per_point():
    points = np.array([[0.0, 1.0], [2.0, 3.0], [4.0, 5.0]])
    mixture = GaussianMixture.from_points(points, bandwidth=np.array([1.0, 1.0]))
    assert len(mixture) == 3
    assert mixture.total_weight == pytest.approx(1.0)
    np.testing.assert_allclose(mixture[1].mean, [2.0, 3.0])
    np.testing.assert_allclose(mixture[1].variance, [1.0, 1.0])


def test_merged_matches_population_moments():
    rng = np.random.default_rng(3)
    points = rng.normal(size=(500, 3))
    mixture = GaussianMixture.from_points(points, bandwidth=None)
    merged = mixture.merged()
    np.testing.assert_allclose(merged.mean, points.mean(axis=0), atol=1e-9)
    np.testing.assert_allclose(merged.variance, points.var(axis=0), atol=1e-9)


def test_mean_is_weighted_average():
    mixture = two_component_mixture()
    np.testing.assert_allclose(mixture.mean(), 0.3 * np.zeros(2) + 0.7 * np.array([5.0, 5.0]))


def test_sampling_respects_weights():
    rng = np.random.default_rng(7)
    mixture = two_component_mixture()
    samples = mixture.sample(rng, 5000)
    distance_to_first = np.linalg.norm(samples - np.array([0.0, 0.0]), axis=1)
    distance_to_second = np.linalg.norm(samples - np.array([5.0, 5.0]), axis=1)
    fraction_second = np.mean(distance_to_second < distance_to_first)
    assert fraction_second == pytest.approx(0.7, abs=0.05)


def test_mixture_1d_integrates_to_one():
    mixture = GaussianMixture(
        [
            Gaussian(mean=np.array([-1.0]), variance=np.array([0.5]), weight=0.4),
            Gaussian(mean=np.array([2.0]), variance=np.array([1.0]), weight=0.6),
        ]
    )
    xs = np.linspace(-8, 9, 6001)
    values = np.array([mixture.pdf(np.array([x])) for x in xs])
    assert np.trapezoid(values, xs) == pytest.approx(1.0, abs=1e-3)


@settings(deadline=None, max_examples=30)
@given(st.integers(0, 10_000), st.integers(1, 6))
def test_merged_preserves_total_weight_and_nonnegative_variance(seed, k):
    rng = np.random.default_rng(seed)
    components = [
        Gaussian(
            mean=rng.normal(size=2),
            variance=rng.uniform(0.1, 2.0, size=2),
            weight=float(rng.uniform(0.1, 1.0)),
        )
        for _ in range(k)
    ]
    mixture = GaussianMixture(components)
    merged = mixture.merged()
    assert merged.weight == pytest.approx(mixture.total_weight)
    assert np.all(merged.variance >= 0)
