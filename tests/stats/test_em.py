"""Unit tests for repro.stats.em."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import fit_gmm, hard_assignments, kmeans_plus_plus_centers


def two_blob_data(rng, n_per_blob=200, separation=10.0):
    a = rng.normal(loc=0.0, scale=1.0, size=(n_per_blob, 2))
    b = rng.normal(loc=separation, scale=1.0, size=(n_per_blob, 2))
    return np.vstack([a, b])


def test_kmeans_pp_returns_requested_number_of_centers():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(100, 3))
    centers = kmeans_plus_plus_centers(points, 5, rng)
    assert centers.shape == (5, 3)


def test_kmeans_pp_caps_at_number_of_points():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(3, 2))
    centers = kmeans_plus_plus_centers(points, 10, rng)
    assert centers.shape == (3, 2)


def test_kmeans_pp_handles_duplicate_points():
    rng = np.random.default_rng(0)
    points = np.zeros((10, 2))
    centers = kmeans_plus_plus_centers(points, 3, rng)
    assert centers.shape == (3, 2)
    np.testing.assert_allclose(centers, 0.0)


def test_kmeans_pp_rejects_empty_and_nonpositive_k():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        kmeans_plus_plus_centers(np.empty((0, 2)), 2, rng)
    with pytest.raises(ValueError):
        kmeans_plus_plus_centers(np.zeros((5, 2)), 0, rng)


def test_em_separates_well_separated_blobs():
    rng = np.random.default_rng(1)
    points = two_blob_data(rng)
    result = fit_gmm(points, 2, rng)
    assert len(result.mixture) == 2
    means = sorted(float(c.mean[0]) for c in result.mixture)
    assert means[0] == pytest.approx(0.0, abs=0.5)
    assert means[1] == pytest.approx(10.0, abs=0.5)
    np.testing.assert_allclose(result.mixture.weights, [0.5, 0.5], atol=0.05)


def test_em_hard_assignments_partition_blobs():
    rng = np.random.default_rng(2)
    points = two_blob_data(rng, n_per_blob=100)
    result = fit_gmm(points, 2, rng)
    labels = hard_assignments(result)
    first_half = labels[:100]
    second_half = labels[100:]
    # Each blob should be (almost) uniformly assigned to one component.
    assert np.mean(first_half == np.bincount(first_half).argmax()) > 0.95
    assert np.mean(second_half == np.bincount(second_half).argmax()) > 0.95
    assert np.bincount(first_half).argmax() != np.bincount(second_half).argmax()


def test_em_likelihood_improves_over_single_component():
    rng = np.random.default_rng(3)
    points = two_blob_data(rng)
    single = fit_gmm(points, 1, np.random.default_rng(3))
    double = fit_gmm(points, 2, np.random.default_rng(3))
    assert double.log_likelihood > single.log_likelihood


def test_em_single_component_matches_moments():
    rng = np.random.default_rng(4)
    points = rng.normal(loc=2.0, scale=1.5, size=(500, 3))
    result = fit_gmm(points, 1, rng)
    component = result.mixture[0]
    np.testing.assert_allclose(component.mean, points.mean(axis=0), atol=1e-6)
    np.testing.assert_allclose(component.variance, points.var(axis=0), atol=1e-6)


def test_em_k_larger_than_n_is_capped():
    rng = np.random.default_rng(5)
    points = rng.normal(size=(3, 2))
    result = fit_gmm(points, 10, rng)
    assert 1 <= len(result.mixture) <= 3


def test_em_rejects_empty_input():
    rng = np.random.default_rng(6)
    with pytest.raises(ValueError):
        fit_gmm(np.empty((0, 2)), 2, rng)


def test_em_weights_sum_to_one_and_responsibilities_are_normalised():
    rng = np.random.default_rng(7)
    points = two_blob_data(rng, n_per_blob=80)
    result = fit_gmm(points, 3, rng)
    assert result.mixture.total_weight == pytest.approx(1.0)
    np.testing.assert_allclose(result.responsibilities.sum(axis=1), 1.0, atol=1e-9)


def test_em_handles_duplicate_points_without_nan():
    rng = np.random.default_rng(8)
    points = np.tile(np.array([[1.0, 2.0]]), (50, 1))
    result = fit_gmm(points, 2, rng)
    for component in result.mixture:
        assert np.all(np.isfinite(component.mean))
        assert np.all(np.isfinite(component.variance))


@settings(deadline=None, max_examples=15)
@given(st.integers(0, 1000), st.integers(1, 4), st.integers(20, 60))
def test_em_always_returns_valid_mixture(seed, k, n):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 2)) + rng.integers(0, 3) * 4
    result = fit_gmm(points, k, rng, max_iterations=30)
    assert 1 <= len(result.mixture) <= k
    assert result.mixture.total_weight == pytest.approx(1.0)
    assert result.responsibilities.shape == (n, len(result.mixture))
    for component in result.mixture:
        assert np.all(np.isfinite(component.mean))
        assert np.all(component.variance > 0)
