"""Unit tests for repro.stats.gaussian."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import Gaussian, gaussian_pdf, log_gaussian_pdf


def test_pdf_matches_univariate_formula():
    mean = np.array([0.0])
    variance = np.array([1.0])
    value = gaussian_pdf(np.array([0.0]), mean, variance)
    assert value == pytest.approx(1.0 / math.sqrt(2 * math.pi))


def test_pdf_matches_scipy_for_diagonal_case():
    scipy_stats = pytest.importorskip("scipy.stats")
    rng = np.random.default_rng(0)
    mean = rng.normal(size=4)
    variance = rng.uniform(0.5, 2.0, size=4)
    x = rng.normal(size=4)
    expected = scipy_stats.multivariate_normal(mean=mean, cov=np.diag(variance)).pdf(x)
    assert gaussian_pdf(x, mean, variance) == pytest.approx(expected, rel=1e-9)


def test_log_pdf_is_log_of_pdf():
    rng = np.random.default_rng(1)
    mean = rng.normal(size=3)
    variance = rng.uniform(0.1, 1.0, size=3)
    x = rng.normal(size=3)
    assert math.exp(log_gaussian_pdf(x, mean, variance)) == pytest.approx(
        gaussian_pdf(x, mean, variance)
    )


def test_zero_variance_is_clamped_not_nan():
    value = gaussian_pdf(np.array([0.0, 0.0]), np.array([0.0, 0.0]), np.array([0.0, 1.0]))
    assert np.isfinite(value)
    assert value > 0


def test_gaussian_requires_matching_shapes():
    with pytest.raises(ValueError):
        Gaussian(mean=np.zeros(3), variance=np.ones(2))


def test_gaussian_rejects_negative_variance():
    with pytest.raises(ValueError):
        Gaussian(mean=np.zeros(2), variance=np.array([1.0, -0.5]))


def test_gaussian_rejects_negative_weight():
    with pytest.raises(ValueError):
        Gaussian(mean=np.zeros(2), variance=np.ones(2), weight=-1.0)


def test_gaussian_rejects_matrix_mean():
    with pytest.raises(ValueError):
        Gaussian(mean=np.zeros((2, 2)), variance=np.ones((2, 2)))


def test_weighted_pdf_scales_linearly():
    g = Gaussian(mean=np.zeros(2), variance=np.ones(2), weight=0.25)
    x = np.array([0.3, -0.2])
    assert g.weighted_pdf(x) == pytest.approx(0.25 * g.pdf(x))


def test_with_weight_preserves_parameters():
    g = Gaussian(mean=np.array([1.0, 2.0]), variance=np.array([0.5, 0.25]), weight=1.0)
    h = g.with_weight(0.1)
    assert h.weight == 0.1
    np.testing.assert_allclose(h.mean, g.mean)
    np.testing.assert_allclose(h.variance, g.variance)


def test_from_points_uses_ml_moments():
    points = np.array([[0.0, 0.0], [2.0, 4.0]])
    g = Gaussian.from_points(points)
    np.testing.assert_allclose(g.mean, [1.0, 2.0])
    np.testing.assert_allclose(g.variance, [1.0, 4.0])


def test_from_points_rejects_empty():
    with pytest.raises(ValueError):
        Gaussian.from_points(np.empty((0, 3)))


def test_sampling_mean_converges():
    rng = np.random.default_rng(42)
    g = Gaussian(mean=np.array([1.0, -2.0]), variance=np.array([0.5, 2.0]))
    samples = g.sample(rng, 20000)
    np.testing.assert_allclose(samples.mean(axis=0), g.mean, atol=0.05)
    np.testing.assert_allclose(samples.var(axis=0), g.variance, atol=0.1)


@settings(deadline=None, max_examples=50)
@given(
    mean=st.lists(st.floats(-5, 5), min_size=1, max_size=5),
    scale=st.floats(0.1, 3.0),
    offset=st.lists(st.floats(-3, 3), min_size=1, max_size=5),
)
def test_density_is_maximal_at_the_mean(mean, scale, offset):
    dim = min(len(mean), len(offset))
    mean_vector = np.array(mean[:dim])
    offset_vector = np.array(offset[:dim])
    variance = np.full(dim, scale)
    at_mean = gaussian_pdf(mean_vector, mean_vector, variance)
    away = gaussian_pdf(mean_vector + offset_vector, mean_vector, variance)
    assert at_mean >= away


@settings(deadline=None, max_examples=50)
@given(st.integers(1, 4), st.integers(0, 1000))
def test_pdf_is_always_non_negative_and_finite(dim, seed):
    rng = np.random.default_rng(seed)
    mean = rng.normal(size=dim)
    variance = rng.uniform(0.01, 5.0, size=dim)
    x = rng.normal(size=dim) * 3
    value = gaussian_pdf(x, mean, variance)
    assert value >= 0
    assert np.isfinite(value)
