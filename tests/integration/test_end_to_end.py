"""Integration tests: full pipelines across data, bulk loading, classification and streams."""

import numpy as np
import pytest

from repro.baselines import GaussianNaiveBayes, KernelBayesClassifier
from repro.core import AnytimeBayesClassifier, BayesTreeConfig, SingleTreeAnytimeClassifier
from repro.data import make_dataset, stratified_k_fold
from repro.evaluation import (
    anytime_accuracy_curve,
    build_bulkloaded_classifier,
    accuracy,
)
from repro.index import TreeParameters
from repro.stream import ConstantArrival, DataStream, PoissonArrival, run_anytime_stream

SMALL_CONFIG = BayesTreeConfig(
    tree=TreeParameters(max_fanout=6, min_fanout=2, leaf_capacity=6, leaf_min=2)
)


@pytest.fixture(scope="module")
def gender_data():
    return make_dataset("gender", size=400, random_state=11)


@pytest.fixture(scope="module")
def pendigits_data():
    return make_dataset("pendigits", size=500, random_state=12)


class TestBulkloadedPipelines:
    @pytest.mark.parametrize("strategy", ["iterative", "hilbert", "em_topdown", "goldberger", "zcurve", "str"])
    def test_every_bulkload_produces_a_working_classifier(self, gender_data, strategy):
        folds = stratified_k_fold(gender_data.labels, n_folds=4, random_state=0)
        fold = folds[0]
        classifier = build_bulkloaded_classifier(
            gender_data.features[fold.train_indices],
            gender_data.labels[fold.train_indices],
            strategy=strategy,
            config=SMALL_CONFIG,
            random_state=0,
        )
        test = fold.test_indices[:40]
        curve = anytime_accuracy_curve(
            classifier, gender_data.features[test], gender_data.labels[test], max_nodes=20
        )
        # Far better than the 50% coin flip at every budget, and the anytime
        # property holds (no collapse with more reads).
        assert curve[0] > 0.6
        assert curve[-1] > 0.6
        assert curve[-1] >= curve[0] - 0.1

    def test_bayes_tree_beats_naive_bayes_with_enough_nodes(self, pendigits_data):
        rng = np.random.default_rng(0)
        train, test = pendigits_data.split(0.75, rng)
        naive = GaussianNaiveBayes().fit(train.features, train.labels)
        anytime = build_bulkloaded_classifier(
            train.features, train.labels, strategy="em_topdown", config=SMALL_CONFIG, random_state=0
        )
        subset = rng.choice(test.size, size=40, replace=False)
        naive_accuracy = accuracy(naive.predict_batch(test.features[subset]), test.labels[subset])
        curve = anytime_accuracy_curve(
            anytime, test.features[subset], test.labels[subset], max_nodes=40
        )
        assert curve[-1] >= naive_accuracy - 0.05
        assert curve.max() >= naive_accuracy

    def test_full_refinement_agrees_with_kernel_bayes(self, gender_data):
        rng = np.random.default_rng(1)
        train, test = gender_data.split(0.7, rng)
        kernel = KernelBayesClassifier().fit(train.features, train.labels)
        anytime = AnytimeBayesClassifier(config=SMALL_CONFIG).fit(train.features, train.labels)
        subset = rng.choice(test.size, size=30, replace=False)
        agreements = sum(
            kernel.predict(x) == anytime.predict(x) for x in test.features[subset]
        )
        assert agreements >= 27

    def test_single_tree_variant_handles_real_dataset(self, gender_data):
        rng = np.random.default_rng(2)
        train, test = gender_data.split(0.7, rng)
        classifier = SingleTreeAnytimeClassifier(config=SMALL_CONFIG).fit(train.features, train.labels)
        subset = rng.choice(test.size, size=30, replace=False)
        predictions = [classifier.predict(x, node_budget=20) for x in test.features[subset]]
        assert accuracy(predictions, test.labels[subset]) > 0.6


class TestStreamPipelines:
    def test_varying_stream_with_online_learning_end_to_end(self, gender_data):
        rng = np.random.default_rng(3)
        warmup, streaming = gender_data.split(0.3, rng)
        classifier = AnytimeBayesClassifier(config=SMALL_CONFIG).fit(warmup.features, warmup.labels)
        stream = DataStream(
            streaming,
            arrival=PoissonArrival(rate=1.0),
            nodes_per_time_unit=6.0,
            max_budget=25,
            random_state=3,
        )
        result = run_anytime_stream(classifier, stream, limit=120, online_learning=True)
        assert len(result.steps) == 120
        assert result.accuracy > 0.7
        # Online learning actually grew the model.
        assert sum(tree.n_objects for tree in classifier.trees.values()) == warmup.size + 120

    def test_constant_stream_budgets_are_respected(self, gender_data):
        rng = np.random.default_rng(4)
        train, test = gender_data.split(0.6, rng)
        classifier = AnytimeBayesClassifier(config=SMALL_CONFIG).fit(train.features, train.labels)
        stream = DataStream(
            test, arrival=ConstantArrival(gap=1.0), nodes_per_time_unit=4.0, random_state=4
        )
        result = run_anytime_stream(classifier, stream, limit=50)
        assert all(step.nodes_read <= step.item.budget for step in result.steps)
        assert result.accuracy > 0.7

    def test_larger_budgets_do_not_hurt_on_average(self, pendigits_data):
        rng = np.random.default_rng(5)
        train, test = pendigits_data.split(0.75, rng)
        classifier = AnytimeBayesClassifier(config=SMALL_CONFIG).fit(train.features, train.labels)
        subset = rng.choice(test.size, size=40, replace=False)
        curve = anytime_accuracy_curve(
            classifier, test.features[subset], test.labels[subset], max_nodes=30
        )
        assert curve[30] >= curve[0] - 0.05
