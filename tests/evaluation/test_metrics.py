"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation import accuracy, anytime_curve_summary, confusion_matrix


def test_accuracy_basic():
    assert accuracy([1, 0, 1, 1], [1, 0, 0, 1]) == pytest.approx(0.75)
    assert accuracy(["a"], ["a"]) == 1.0


def test_accuracy_validates_inputs():
    with pytest.raises(ValueError):
        accuracy([1, 2], [1])
    with pytest.raises(ValueError):
        accuracy([], [])


def test_confusion_matrix_counts():
    matrix, classes = confusion_matrix([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
    assert classes == [0, 1]
    # true 0 predicted 0 once, true 0 predicted 1 once ... rows = true class.
    assert matrix[0, 0] == 1
    assert matrix[0, 1] == 1
    assert matrix[1, 1] == 2
    assert matrix[1, 0] == 1
    assert matrix.sum() == 5


def test_confusion_matrix_handles_unseen_predicted_class():
    matrix, classes = confusion_matrix(["a", "c"], ["a", "b"])
    assert set(classes) == {"a", "b", "c"}
    assert matrix.sum() == 2


def test_confusion_matrix_validates_lengths():
    with pytest.raises(ValueError):
        confusion_matrix([1], [1, 2])


def test_anytime_curve_summary():
    curve = [0.5, 0.6, 0.9, 0.8]
    summary = anytime_curve_summary(curve)
    assert summary["initial"] == 0.5
    assert summary["final"] == 0.8
    assert summary["best"] == 0.9
    assert summary["mean"] == pytest.approx(np.mean(curve))
    with pytest.raises(ValueError):
        anytime_curve_summary([])
