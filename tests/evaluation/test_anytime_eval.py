"""Tests for the anytime evaluation harness (curves, CV, experiment runner)."""

import numpy as np
import pytest

from repro.core import BayesTreeConfig
from repro.data import make_blobs, make_dataset
from repro.evaluation import (
    ExperimentConfig,
    anytime_accuracy_curve,
    build_bulkloaded_classifier,
    cross_validated_anytime_curve,
    format_curve_table,
    run_bulkload_experiment,
    run_stream_experiment,
    table1_rows,
)
from repro.index import TreeParameters

SMALL_CONFIG = BayesTreeConfig(
    tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
)


BLOB_CENTERS = np.array([[0.0, 0.0], [9.0, 9.0], [0.0, 9.0]])


def blobs(seed=0, per_class=40):
    return make_blobs(
        n_classes=3, per_class=per_class, n_features=2, random_state=seed, centers=BLOB_CENTERS
    )


def test_anytime_accuracy_curve_shape_and_range():
    dataset = blobs()
    classifier = build_bulkloaded_classifier(
        dataset.features, dataset.labels, strategy="hilbert", config=SMALL_CONFIG
    )
    test = blobs(seed=1, per_class=10)
    curve = anytime_accuracy_curve(classifier, test.features, test.labels, max_nodes=15)
    assert curve.shape == (16,)
    assert np.all((0.0 <= curve) & (curve <= 1.0))
    assert curve[-1] > 0.8  # separable blobs are classified well


def test_anytime_accuracy_curve_validates_inputs():
    dataset = blobs()
    classifier = build_bulkloaded_classifier(dataset.features, dataset.labels, config=SMALL_CONFIG)
    with pytest.raises(ValueError):
        anytime_accuracy_curve(classifier, dataset.features[:3], dataset.labels[:2], max_nodes=5)
    with pytest.raises(ValueError):
        anytime_accuracy_curve(classifier, np.empty((0, 2)), [], max_nodes=5)
    with pytest.raises(ValueError):
        anytime_accuracy_curve(classifier, dataset.features[:2], dataset.labels[:2], max_nodes=-1)


def test_build_bulkloaded_classifier_has_one_tree_per_class():
    dataset = blobs(seed=2)
    for strategy in ("iterative", "hilbert", "em_topdown"):
        classifier = build_bulkloaded_classifier(
            dataset.features, dataset.labels, strategy=strategy, config=SMALL_CONFIG, random_state=0
        )
        assert set(classifier.classes) == {0, 1, 2}
        assert sum(classifier.priors.values()) == pytest.approx(1.0)


def test_cross_validated_curve_averages_folds():
    dataset = make_dataset("gender", size=160, random_state=0)
    result = cross_validated_anytime_curve(
        dataset,
        strategy="hilbert",
        max_nodes=10,
        n_folds=4,
        config=SMALL_CONFIG,
        random_state=0,
        max_test_objects=10,
    )
    assert len(result.fold_curves) == 4
    assert result.mean_curve.shape == (11,)
    np.testing.assert_allclose(
        result.mean_curve, np.mean(np.vstack(result.fold_curves), axis=0)
    )


def test_experiment_runner_produces_all_requested_curves():
    config = ExperimentConfig(
        dataset="gender",
        size=120,
        max_nodes=8,
        n_folds=2,
        strategies=("iterative", "hilbert"),
        descents=("glo", "bft"),
        max_test_objects=8,
        random_state=0,
        tree_config=SMALL_CONFIG,
    )
    result = run_bulkload_experiment(config)
    assert set(result.curves) == {
        ("iterative", "glo"),
        ("iterative", "bft"),
        ("hilbert", "glo"),
        ("hilbert", "bft"),
    }
    summary = result.summary()
    for stats in summary.values():
        assert 0.0 <= stats["mean"] <= 1.0
    assert 0.0 <= result.mean_accuracy("hilbert", "glo") <= 1.0
    table = format_curve_table(result, nodes=(0, 4, 8))
    assert "hilbert (glo)" in table
    assert "n=8" in table


def test_run_stream_experiment_prequential_protocol():
    dataset = make_blobs(n_classes=2, per_class=90, n_features=2, random_state=3)
    config = BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )
    result = run_stream_experiment(
        dataset, warmup=20, limit=100, chunk_size=16, tree_config=config, random_state=3
    )
    assert result.objects == 100
    assert result.learned_objects == 100
    assert 0.0 <= result.accuracy <= 1.0
    assert all(0.0 <= value <= 1.0 for value in result.accuracy_by_budget.values())
    assert result.mean_nodes_read >= 0.0


def test_run_stream_experiment_validates_warmup():
    dataset = make_blobs(n_classes=2, per_class=10, n_features=2, random_state=4)
    with pytest.raises(ValueError):
        run_stream_experiment(dataset, warmup=0)
    with pytest.raises(ValueError):
        run_stream_experiment(dataset, warmup=40)


def test_table1_rows_report_paper_and_generated_sizes():
    rows = table1_rows(sizes={"pendigits": 80, "letter": 60, "gender": 50, "covertype": 70})
    by_name = {row["name"]: row for row in rows}
    assert set(by_name) == {"pendigits", "letter", "gender", "covertype"}
    assert by_name["pendigits"]["paper_size"] == 10_992
    assert by_name["pendigits"]["size"] == 80
    assert by_name["letter"]["classes"] == 26
    assert by_name["covertype"]["features"] == 10
