"""Fading-factor and sliding-window prequential accuracy."""

import numpy as np
import pytest

from repro.evaluation import fading_accuracy, sliding_window_accuracy


class TestSlidingWindow:
    def test_constant_sequence_is_constant(self):
        curve = sliding_window_accuracy(np.ones(50), window=10)
        np.testing.assert_allclose(curve, 1.0)

    def test_partial_window_prefix(self):
        curve = sliding_window_accuracy([1, 0, 1, 1], window=100)
        np.testing.assert_allclose(curve, [1.0, 0.5, 2 / 3, 0.75])

    def test_window_forgets_abruptly(self):
        outcomes = np.concatenate([np.ones(50), np.zeros(50)])
        curve = sliding_window_accuracy(outcomes, window=10)
        assert curve[49] == 1.0
        # Ten steps after the change the window holds only failures.
        assert curve[59] == 0.0

    def test_window_one_is_the_raw_sequence(self):
        outcomes = [1, 0, 1, 0, 0, 1]
        np.testing.assert_allclose(
            sliding_window_accuracy(outcomes, window=1), outcomes
        )

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_window_accuracy([1, 0], window=0)


class TestFadingAccuracy:
    def test_alpha_one_is_running_mean(self):
        outcomes = np.array([1, 0, 1, 1, 0], dtype=float)
        expected = np.cumsum(outcomes) / np.arange(1, 6)
        np.testing.assert_allclose(fading_accuracy(outcomes, 1.0), expected)

    def test_matches_closed_form(self):
        outcomes = np.array([1.0, 0.0, 1.0])
        alpha = 0.5
        # S_3 = 1 + 0.5*(0 + 0.5*1), N_3 = 1 + 0.5*(1 + 0.5*1)
        expected_last = (1 + 0.0 + 0.25) / (1 + 0.5 + 0.25)
        curve = fading_accuracy(outcomes, alpha)
        assert curve[-1] == pytest.approx(expected_last)

    def test_forgets_faster_with_smaller_alpha(self):
        outcomes = np.concatenate([np.ones(100), np.zeros(20)])
        slow = fading_accuracy(outcomes, 0.999)[-1]
        fast = fading_accuracy(outcomes, 0.8)[-1]
        assert fast < slow

    def test_bounds(self):
        rng = np.random.default_rng(0)
        outcomes = rng.integers(0, 2, size=200).astype(float)
        curve = fading_accuracy(outcomes, 0.95)
        assert np.all((curve >= 0.0) & (curve <= 1.0))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            fading_accuracy([1.0], 0.0)
        with pytest.raises(ValueError):
            fading_accuracy([1.0], 1.5)


def test_stream_run_result_exposes_prequential_curves():
    from repro.stream.anytime import StreamRunResult, StreamStepResult
    from repro.stream.stream import StreamItem

    result = StreamRunResult()
    for i, correct in enumerate([True, False, True, True]):
        item = StreamItem(index=i, features=np.zeros(2), label=0, arrival_time=float(i), budget=5)
        result.steps.append(
            StreamStepResult(item=item, prediction=0, correct=correct, nodes_read=1)
        )
    np.testing.assert_allclose(result.correct_sequence(), [1, 0, 1, 1])
    np.testing.assert_allclose(result.sliding_window_accuracy(2), [1.0, 0.5, 0.5, 1.0])
    assert result.fading_accuracy(0.9).shape == (4,)
