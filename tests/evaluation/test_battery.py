"""Scenario battery runner tests (tier-1 smoke subset)."""

import json

import pytest

from repro.evaluation import (
    BUDGET_GRID,
    CLASSIFIER_KINDS,
    format_win_loss_table,
    run_scenario_battery,
)
from repro.scenarios import SMOKE_SCENARIOS


@pytest.fixture(scope="module")
def smoke_result():
    return run_scenario_battery(SMOKE_SCENARIOS[:2], size_scale=0.1)


class TestBatteryStructure:
    def test_one_outcome_per_scenario(self, smoke_result):
        assert [o.scenario for o in smoke_result.outcomes] == list(SMOKE_SCENARIOS[:2])

    def test_every_classifier_has_a_full_curve(self, smoke_result):
        for outcome in smoke_result.outcomes:
            assert sorted(outcome.curves.keys()) == sorted(CLASSIFIER_KINDS)
            for curve in outcome.curves.values():
                assert [budget for budget, _ in curve] == list(BUDGET_GRID)
                assert all(0.0 <= acc <= 1.0 for _, acc in curve)

    def test_prequential_metrics_present_and_bounded(self, smoke_result):
        for outcome in smoke_result.outcomes:
            assert sorted(outcome.prequential.keys()) == sorted(CLASSIFIER_KINDS)
            assert all(0.0 <= value <= 1.0 for value in outcome.prequential.values())

    def test_provenance_embedded(self, smoke_result):
        for outcome in smoke_result.outcomes:
            assert outcome.spec["name"] == outcome.scenario
            assert len(outcome.fingerprint) == 64

    def test_win_cells_cover_budget_grid(self, smoke_result):
        for outcome in smoke_result.outcomes:
            assert [budget for budget, _ in outcome.win_cells()] == list(BUDGET_GRID)

    def test_to_dict_is_json_safe(self, smoke_result):
        payload = json.loads(json.dumps(smoke_result.to_dict()))
        assert payload["budgets"] == list(BUDGET_GRID)
        assert len(payload["outcomes"]) == 2
        assert 0.0 <= payload["forest_win_rate"] <= 1.0

    def test_format_win_loss_table_mentions_each_scenario(self, smoke_result):
        table = format_win_loss_table(smoke_result)
        for outcome in smoke_result.outcomes:
            assert outcome.scenario in table
        assert "forest win rate" in table


class TestBatteryDeterminism:
    def test_same_arguments_same_result(self):
        first = run_scenario_battery(SMOKE_SCENARIOS[:1], size_scale=0.1)
        second = run_scenario_battery(SMOKE_SCENARIOS[:1], size_scale=0.1)
        assert first.to_dict() == second.to_dict()


class TestBatteryValidation:
    def test_fractions_must_leave_live_region(self):
        with pytest.raises(ValueError, match="live region"):
            run_scenario_battery(
                SMOKE_SCENARIOS[:1], size_scale=0.1, warmup_fraction=0.6, holdout_fraction=0.5
            )

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario_battery(["does-not-exist"], size_scale=0.1)

    def test_outcome_lookup(self, ):
        result = run_scenario_battery(SMOKE_SCENARIOS[:1], size_scale=0.1)
        assert result.outcome(SMOKE_SCENARIOS[0]).scenario == SMOKE_SCENARIOS[0]
        with pytest.raises(KeyError):
            result.outcome("missing")
