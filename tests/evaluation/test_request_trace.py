"""RequestTrace: per-request capture and the derived serving summaries."""

import pytest

from repro.evaluation import RequestRecord, RequestTrace


def _records():
    return [
        {"index": 0, "status": "ok", "label": "a", "prediction": "a",
         "node_budget": 4, "latency_s": 0.010, "arrival_time": 0.0},
        {"index": 1, "status": "ok", "label": "b", "prediction": "a",
         "node_budget": 8, "latency_s": 0.030, "arrival_time": 1.0},
        {"index": 2, "status": "deadline", "label": "b", "arrival_time": 2.0},
        {"index": 3, "status": "rejected", "label": "a", "arrival_time": 3.0},
    ]


def test_from_records_and_summaries():
    trace = RequestTrace.from_records(_records())
    assert len(trace) == 4
    assert trace.status_counts() == {"ok": 2, "deadline": 1, "rejected": 1}
    assert len(trace.served()) == 2
    assert trace.accuracy() == pytest.approx(0.5)
    assert trace.mean_node_budget() == pytest.approx(6.0)
    latency = trace.latency_summary()
    assert latency["p50"] == pytest.approx(20.0)
    summary = trace.summary()
    assert summary["requests"] == 4 and summary["served"] == 2
    assert summary["status_counts"]["rejected"] == 1
    assert summary["latency_ms"]["mean"] == pytest.approx(20.0)


def test_incremental_recording_and_jsonable():
    trace = RequestTrace()
    trace.record(index=0, status="ok", prediction=3, node_budget=None, latency_s=0.002)
    trace.record(index=1, status="closed")
    assert [record.index for record in trace.records] == [0, 1]
    assert trace.mean_node_budget() is None  # full refinement carries no budget
    assert trace.accuracy() is None  # no labels known
    rows = trace.to_jsonable()
    assert rows[0]["prediction"] == 3 and rows[1]["status"] == "closed"
    assert isinstance(trace.records[0], RequestRecord)


def test_empty_trace_edges():
    trace = RequestTrace()
    assert trace.summary()["served"] == 0
    assert "latency_ms" not in trace.summary()
    with pytest.raises(ValueError):
        trace.latency_summary()
