"""Incremental training of the baseline classifiers, including mid-stream classes."""

import numpy as np
import pytest

from repro.baselines import AnytimeNearestNeighbor, GaussianNaiveBayes, KernelBayesClassifier


@pytest.fixture
def blobs():
    rng = np.random.default_rng(42)
    a = rng.normal(loc=[0.0, 0.0], scale=0.3, size=(30, 2))
    b = rng.normal(loc=[4.0, 4.0], scale=0.3, size=(30, 2))
    c = rng.normal(loc=[-4.0, 4.0], scale=0.3, size=(30, 2))
    return a, b, c


class TestGaussianNaiveBayesPartialFit:
    def test_unseen_class_mid_stream_does_not_raise(self, blobs):
        a, b, c = blobs
        clf = GaussianNaiveBayes().fit(np.vstack([a, b]), [0] * 30 + [1] * 30)
        clf.partial_fit(c[0], [2])
        assert 2 in clf.classes
        assert clf.predict(c[0]) == 2

    def test_single_point_class_widens_with_more_data(self, blobs):
        a, b, c = blobs
        clf = GaussianNaiveBayes().fit(np.vstack([a, b]), [0] * 30 + [1] * 30)
        clf.partial_fit(c, [2] * 30)
        predictions = clf.predict_batch(c)
        assert all(p == 2 for p in predictions)

    def test_partial_fit_matches_batch_fit(self, blobs):
        a, b, _ = blobs
        points = np.vstack([a, b])
        labels = [0] * 30 + [1] * 30
        batch = GaussianNaiveBayes().fit(points, labels)
        incremental = GaussianNaiveBayes()
        for point, label in zip(points, labels):
            incremental.partial_fit(point, [label])
        for label in (0, 1):
            np.testing.assert_allclose(batch.models[label].mean, incremental.models[label].mean)
            np.testing.assert_allclose(
                batch.models[label].variance, incremental.models[label].variance, rtol=1e-9
            )
            assert batch.priors[label] == pytest.approx(incremental.priors[label])

    def test_priors_track_stream_frequencies(self, blobs):
        a, b, _ = blobs
        clf = GaussianNaiveBayes().fit(a[:10], [0] * 10)
        clf.partial_fit(b, [1] * 30)
        assert clf.priors[1] == pytest.approx(0.75)

    def test_bootstrap_from_unfitted(self, blobs):
        a, _, _ = blobs
        clf = GaussianNaiveBayes()
        clf.partial_fit(a, [0] * 30)
        assert clf.is_fitted
        assert clf.predict(a[0]) == 0


class TestKernelBayesPartialFit:
    def test_unseen_class_mid_stream_does_not_raise(self, blobs):
        a, b, c = blobs
        clf = KernelBayesClassifier().fit(np.vstack([a, b]), [0] * 30 + [1] * 30)
        clf.partial_fit(c[0], [2])
        assert 2 in clf.classes
        clf.partial_fit(c[1:], [2] * 29)
        assert clf.predict(c[5]) == 2

    def test_unknown_label_density_is_zero(self, blobs):
        a, _, _ = blobs
        clf = KernelBayesClassifier().fit(a, [0] * 30)
        assert clf.class_density(a[0], "never-seen") == 0.0
        assert clf.class_log_density(a[0], "never-seen") == float("-inf")

    def test_log_space_survives_high_dimensions(self):
        rng = np.random.default_rng(0)
        d = 120
        a = rng.normal(loc=0.0, scale=0.5, size=(25, d))
        b = rng.normal(loc=3.0, scale=0.5, size=(25, d))
        clf = KernelBayesClassifier().fit(np.vstack([a, b]), [0] * 25 + [1] * 25)
        predictions = clf.predict_batch(np.vstack([a[:5], b[:5]]))
        assert predictions == [0] * 5 + [1] * 5
        scores = clf.log_posterior(a[0])
        assert all(np.isfinite(score) or score == float("-inf") for score in scores.values())

    def test_batch_predict_matches_scalar_predict(self, blobs):
        a, b, _ = blobs
        clf = KernelBayesClassifier().fit(np.vstack([a, b]), [0] * 30 + [1] * 30)
        queries = np.vstack([a[:3], b[:3]])
        assert clf.predict_batch(queries) == [clf.predict(q) for q in queries]


class TestAnytimeNearestNeighborPartialFit:
    def test_unseen_class_mid_stream_does_not_raise(self, blobs):
        a, b, c = blobs
        clf = AnytimeNearestNeighbor(k=3, random_state=0).fit(
            np.vstack([a, b]), [0] * 30 + [1] * 30
        )
        clf.partial_fit(c, [2] * 30)
        assert clf.predict(c[0]) == 2

    def test_appends_preserve_existing_prefix(self, blobs):
        a, b, c = blobs
        clf = AnytimeNearestNeighbor(k=3, random_state=0).fit(
            np.vstack([a, b]), [0] * 30 + [1] * 30
        )
        prefix = clf.points[:10].copy()
        clf.partial_fit(c[0], [2])
        np.testing.assert_array_equal(clf.points[:10], prefix)
        assert clf.points.shape[0] == 61

    def test_bootstrap_from_unfitted(self, blobs):
        a, _, _ = blobs
        clf = AnytimeNearestNeighbor(k=1)
        clf.partial_fit(a, [0] * 30)
        assert clf.is_fitted
        assert clf.predict(a[0]) == 0
