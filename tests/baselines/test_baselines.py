"""Tests for the baseline classifiers."""

import numpy as np
import pytest

from repro.baselines import AnytimeNearestNeighbor, GaussianNaiveBayes, KernelBayesClassifier
from repro.data import make_blobs


BLOB_CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [0.0, 8.0]])


def blob_data(seed=0, per_class=60):
    dataset = make_blobs(
        n_classes=3, per_class=per_class, n_features=2, random_state=seed, centers=BLOB_CENTERS
    )
    return dataset.features, dataset.labels


class TestGaussianNaiveBayes:
    def test_high_accuracy_on_separable_blobs(self):
        X, y = blob_data(seed=0)
        model = GaussianNaiveBayes().fit(X, y)
        test_X, test_y = blob_data(seed=1, per_class=20)
        predictions = model.predict_batch(test_X)
        assert np.mean(np.array(predictions) == test_y) > 0.95

    def test_priors_reflect_class_frequencies(self):
        X = np.vstack([np.zeros((30, 2)), np.ones((10, 2)) * 5])
        y = [0] * 30 + [1] * 10
        model = GaussianNaiveBayes().fit(X, y)
        assert model.priors[0] == pytest.approx(0.75)
        assert model.priors[1] == pytest.approx(0.25)

    def test_validates_inputs_and_fit_state(self):
        model = GaussianNaiveBayes()
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), [0, 1])
        with pytest.raises(ValueError):
            model.predict(np.zeros(2))

    def test_log_posterior_prefers_own_class_center(self):
        X, y = blob_data(seed=2)
        model = GaussianNaiveBayes().fit(X, y)
        center_class0 = X[np.array(y) == 0].mean(axis=0)
        scores = model.log_posterior(center_class0)
        assert max(scores, key=scores.get) == 0


class TestKernelBayesClassifier:
    def test_high_accuracy_on_separable_blobs(self):
        X, y = blob_data(seed=3)
        model = KernelBayesClassifier().fit(X, y)
        test_X, test_y = blob_data(seed=4, per_class=15)
        predictions = model.predict_batch(test_X)
        assert np.mean(np.array(predictions) == test_y) > 0.95

    def test_posterior_unnormalised_weights_by_prior(self):
        X = np.vstack([np.zeros((40, 1)), np.full((10, 1), 0.5)])
        y = [0] * 40 + [1] * 10
        model = KernelBayesClassifier().fit(X, y)
        posterior = model.posterior(np.array([0.25]))
        assert set(posterior) == {0, 1}
        assert all(v >= 0 for v in posterior.values())

    def test_epanechnikov_kernel_supported(self):
        X, y = blob_data(seed=5)
        model = KernelBayesClassifier(kernel="epanechnikov").fit(X, y)
        prediction = model.predict(X[0])
        assert prediction in {0, 1, 2}

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            KernelBayesClassifier(bandwidth_scale=0.0)
        model = KernelBayesClassifier()
        with pytest.raises(ValueError):
            model.predict(np.zeros(2))

    def test_matches_fully_refined_bayes_tree(self):
        """The Bayes tree at full refinement equals the kernel Bayes classifier."""
        from repro.core import AnytimeBayesClassifier, BayesTreeConfig
        from repro.index import TreeParameters

        X, y = blob_data(seed=6, per_class=30)
        kernel_model = KernelBayesClassifier().fit(X, y)
        tree_model = AnytimeBayesClassifier(
            config=BayesTreeConfig(
                tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
            )
        ).fit(X, y)
        rng = np.random.default_rng(7)
        queries = rng.normal(scale=6.0, size=(25, 2))
        agreements = sum(kernel_model.predict(q) == tree_model.predict(q) for q in queries)
        assert agreements >= 24


class TestAnytimeNearestNeighbor:
    def test_full_budget_matches_classic_knn_accuracy(self):
        X, y = blob_data(seed=8)
        model = AnytimeNearestNeighbor(k=3, random_state=0).fit(X, y)
        test_X, test_y = blob_data(seed=9, per_class=15)
        predictions = model.predict_batch(test_X)
        assert np.mean(np.array(predictions) == test_y) > 0.95

    def test_anytime_budget_improves_with_more_time(self):
        X, y = blob_data(seed=10, per_class=100)
        model = AnytimeNearestNeighbor(k=5, random_state=1).fit(X, y)
        test_X, test_y = blob_data(seed=11, per_class=30)
        small = np.mean(np.array(model.predict_batch(test_X, budget=3)) == test_y)
        large = np.mean(np.array(model.predict_batch(test_X, budget=300)) == test_y)
        assert large >= small

    def test_budget_of_zero_clamped_to_one(self):
        X, y = blob_data(seed=12)
        model = AnytimeNearestNeighbor(k=1, random_state=2).fit(X, y)
        assert model.predict_anytime(X[0], budget=0) in {0, 1, 2}

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            AnytimeNearestNeighbor(k=0)
        model = AnytimeNearestNeighbor()
        with pytest.raises(ValueError):
            model.predict_anytime(np.zeros(2), budget=5)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 2)), [0, 1])
