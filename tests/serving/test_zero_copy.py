"""Zero-copy serving: shared-memory workers, LPT packing, segment lifecycle.

Pins ISSUE 6's serving layer: shard workers attaching to one shared-memory
segment serve predictions bit-identical to the legacy per-worker object
loading, the LPT shard planner balances per-class kernel counts, snapshots
without flat members are compiled on the fly (construction and hot swap),
and the segment is unlinked exactly once — on engine close, after a swap,
and even when a worker has been killed.
"""

import os
import signal
import time
# The crash/lifecycle tests below must attach to segments *raw* (bypassing
# attach_columns) to prove that worker death never unlinks the engine's
# segment — exactly the misuse RL003 exists to keep out of src/.
from multiprocessing import shared_memory  # reprolint: disable=RL003 -- lifecycle test needs raw attach

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig
from repro.data import make_dataset
from repro.persist import load_forest, save_forest
from repro.serving import ServingEngine, plan_shard_assignment


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    dataset = make_dataset("pendigits", size=360, random_state=8)
    config = BayesTreeConfig(decay_rate=0.01, expiry_threshold=1e-4)
    classifier = AnytimeBayesClassifier(config=config)
    for i in range(300):
        classifier.partial_fit(
            dataset.features[i], dataset.labels[i], timestamp=float(i) * 0.2
        )
    path = tmp_path_factory.mktemp("zero_copy") / "forest.npz"
    save_forest(classifier, path)
    legacy = tmp_path_factory.mktemp("zero_copy") / "legacy.npz"
    save_forest(classifier, legacy, include_flat=False)
    return path, legacy, dataset.features[300:]


def _segment_is_gone(name):
    try:
        handle = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return True
    handle.close()
    return False


# -- shard planning -------------------------------------------------------------------------
def test_lpt_assignment_balances_loads():
    counts = [100, 1, 1, 1, 97, 1, 1, 96]
    bins = plan_shard_assignment(counts, 3)
    assert sorted(index for contents in bins for index in contents) == list(
        range(len(counts))
    )
    loads = [sum(counts[i] for i in contents) for contents in bins]
    # Round-robin strides would put 100+1+1 / 1+97+1 / 1+1+96 — fine here, but
    # with the heavy classes adjacent it skews badly; LPT keeps the spread
    # within the lightest class regardless of input order.
    assert max(loads) - min(loads) <= max(1, min(c for c in counts))
    heavy_shards = {
        next(s for s, contents in enumerate(bins) if i in contents)
        for i, count in enumerate(counts)
        if count > 90
    }
    assert len(heavy_shards) == 3  # one heavy class per shard
    for contents in bins:
        assert contents == sorted(contents)


def test_lpt_assignment_is_deterministic_and_total():
    counts = [5, 5, 5, 5]
    assert plan_shard_assignment(counts, 2) == plan_shard_assignment(counts, 2)
    # More shards than classes leaves trailing shards empty but loses nothing.
    bins = plan_shard_assignment([3, 2], 4)
    assert sorted(index for contents in bins for index in contents) == [0, 1]
    with pytest.raises(ValueError):
        plan_shard_assignment([1], 0)


def test_engine_assignment_covers_all_labels(snapshot):
    path, _, _ = snapshot
    with ServingEngine(path, workers=2) as engine:
        packed = engine.shard_assignment
        assert len(packed) == engine.n_shards
        flattened = [label for shard in packed for label in shard]
        assert sorted(flattened, key=repr) == engine.labels


# -- zero-copy serving ----------------------------------------------------------------------
def test_zero_copy_predictions_match_object_workers(snapshot):
    path, _, queries = snapshot
    local = load_forest(path)
    expected_full = local.predict_batch(queries)
    expected_budget = local.predict_batch(queries, node_budget=8)
    with ServingEngine(path, workers=2) as engine:
        assert engine.zero_copy
        assert engine.predict_batch(queries) == expected_full
        assert engine.predict_batch(queries, node_budget=8) == expected_budget
    with ServingEngine(path, workers=2, zero_copy=False) as engine:
        assert not engine.zero_copy
        assert engine.predict_batch(queries) == expected_full
        assert engine.predict_batch(queries, node_budget=8) == expected_budget


def test_zero_copy_fallback_serves_identically(snapshot):
    path, _, queries = snapshot
    local = load_forest(path)
    with ServingEngine(path, workers=0) as engine:
        assert not engine.is_multiprocess
        assert engine.predict_batch(queries) == local.predict_batch(queries)
        stats = engine.stats_snapshot()
        assert stats["mode"] == "zero_copy"
        assert stats["shm_name"] is None  # no workers → no segment
        assert stats["structure"]["total_kernels"] > 0


def test_stats_report_segment_warm_start_and_memory(snapshot):
    path, _, queries = snapshot
    with ServingEngine(path, workers=2) as engine:
        engine.predict_batch(queries[:8])
        stats = engine.stats_snapshot()
        assert stats["mode"] == "zero_copy"
        assert stats["shm_name"] and stats["shm_bytes"] > 0
        assert stats["warm_start_ms"] > 0
        assert len(stats["workers"]) == 2
        for profile in stats["workers"]:
            assert profile["mode"] == "flat"
            assert profile["warm_start_ms"] > 0
            assert profile["rss_kb"] > 0
            assert profile["shared_kb"] > 0
        assert len(stats["shard_classes"]) == 2
        structure = stats["structure"]
        assert structure["n_classes"] == len(engine.labels)
        assert structure["total_kernels"] > 0
        for per_class in structure["classes"].values():
            assert sum(per_class["depth_profile"]) == per_class["n_kernels"]


# -- segment lifecycle ----------------------------------------------------------------------
def test_segment_is_unlinked_on_close(snapshot):
    path, _, queries = snapshot
    engine = ServingEngine(path, workers=2)
    try:
        name = engine.stats_snapshot()["shm_name"]
        assert name is not None
        assert not _segment_is_gone(name)
        assert engine.predict_batch(queries[:4])
    finally:
        engine.close()
    assert _segment_is_gone(name)
    engine.close()  # idempotent


def test_swap_replaces_segment_and_unlinks_old(snapshot, tmp_path):
    path, _, queries = snapshot
    dataset = make_dataset("pendigits", size=400, random_state=21)
    retrained = AnytimeBayesClassifier(config=BayesTreeConfig(decay_rate=0.0))
    for i in range(340):
        retrained.partial_fit(dataset.features[i], dataset.labels[i], timestamp=float(i))
    new_path = tmp_path / "retrained.npz"
    save_forest(retrained, new_path)
    with ServingEngine(path, workers=2) as engine:
        old_name = engine.stats_snapshot()["shm_name"]
        engine.swap_snapshot(new_path)
        stats = engine.stats_snapshot()
        assert stats["swaps"] == 1
        assert stats["shm_name"] != old_name
        assert _segment_is_gone(old_name)
        assert not _segment_is_gone(stats["shm_name"])
        assert engine.predict_batch(queries) == retrained.predict_batch(queries)
    assert _segment_is_gone(stats["shm_name"])


def test_worker_crash_does_not_leak_the_segment(snapshot):
    path, _, queries = snapshot
    engine = ServingEngine(path, workers=2)
    try:
        stats = engine.stats_snapshot()
        name = stats["shm_name"]
        victim = stats["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                os.kill(victim, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
    finally:
        engine.close()
    # The dead worker never ran cleanup, yet the engine-owned unlink happened
    # exactly once — the name is free and nothing spammed the resource tracker.
    assert _segment_is_gone(name)


# -- compile-on-demand for legacy snapshots -------------------------------------------------
def test_snapshot_without_flat_members_is_compiled_engine_side(snapshot):
    path, legacy, queries = snapshot
    local = load_forest(path)
    with ServingEngine(legacy, workers=2) as engine:
        stats = engine.stats_snapshot()
        assert stats["mode"] == "zero_copy"
        assert stats["shm_name"] is not None
        assert engine.predict_batch(queries) == local.predict_batch(queries)
        assert engine.predict_batch(queries, node_budget=8) == local.predict_batch(
            queries, node_budget=8
        )


def test_swap_to_legacy_snapshot_compiles_on_swap(snapshot):
    path, legacy, queries = snapshot
    local = load_forest(path)
    with ServingEngine(path, workers=2) as engine:
        engine.swap_snapshot(legacy)
        assert engine.snapshot_path == str(legacy)
        assert engine.stats_snapshot()["shm_name"] is not None
        assert engine.predict_batch(queries) == local.predict_batch(queries)
