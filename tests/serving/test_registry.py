"""ModelRegistry lifecycle: LRU eviction, drains, cold starts, idempotence."""

import threading
import time

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier
from repro.data import make_dataset
from repro.evaluation import classification_trace_hash
from repro.persist import load_flat_forest, save_forest, save_tenant_manifest
from repro.serving import (
    ModelRegistry,
    RegistryClosedError,
    TenantNotFoundError,
    TenantPolicy,
    segment_exists,
)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    dataset = make_dataset("pendigits", size=280, random_state=21)
    classifier = AnytimeBayesClassifier()
    classifier.fit(dataset.features[:220], dataset.labels[:220])
    path = tmp_path_factory.mktemp("registry") / "forest.npz"
    save_forest(classifier, path)
    return path, dataset.features[220:252]


@pytest.fixture(scope="module")
def other_snapshot(tmp_path_factory):
    dataset = make_dataset("pendigits", size=240, random_state=5)
    classifier = AnytimeBayesClassifier()
    classifier.fit(dataset.features[:200], dataset.labels[:200])
    path = tmp_path_factory.mktemp("registry-other") / "other.npz"
    save_forest(classifier, path)
    return path


def _shm_name(registry, tenant):
    return registry.tenant_stats(tenant)["shm_name"]


def test_lru_eviction_order_and_segment_unlink(snapshot):
    path, queries = snapshot
    with ModelRegistry(capacity=2) as registry:
        registry.load("a", path)
        registry.load("b", path)
        name_a = _shm_name(registry, "a")
        registry.load("c", path)  # capacity 2: LRU tenant "a" must go
        assert registry.resident_tenants() == ["b", "c"]
        assert not segment_exists(name_a)
        assert registry.stats.evictions == 1
        # Serving "b" touches it; the next overflow must evict "c" instead.
        registry.predict_batch("b", queries[:4])
        registry.load("d", path)
        assert registry.resident_tenants() == ["b", "d"]
        # Evicted tenants stay registered for transparent reload.
        assert registry.known_tenants() == ["a", "b", "c", "d"]


def test_capacity_bytes_bound_evicts_down(snapshot):
    path, _ = snapshot
    with ModelRegistry(capacity=8) as registry:
        registry.load("a", path)
        per_tenant = registry.tenant_stats("a")["shm_bytes"]
        registry.close()
    with ModelRegistry(capacity=8, capacity_bytes=int(per_tenant * 2.5)) as registry:
        registry.load("a", path)
        registry.load("b", path)
        registry.load("c", path)  # 3 segments > bound: LRU "a" must go
        assert registry.resident_tenants() == ["b", "c"]
        assert registry.memory_bytes() <= int(per_tenant * 2.5)


def test_evict_waits_for_in_flight_rounds(snapshot):
    path, _ = snapshot
    with ModelRegistry(capacity=2) as registry:
        registry.load("a", path)
        entry = registry._acquire("a")  # pin an in-flight round by hand
        name = entry.store.name
        evictor = threading.Thread(target=registry.evict, args=("a",), daemon=True)
        evictor.start()
        time.sleep(0.15)
        # The eviction must be parked on the drain, segment still linked.
        assert evictor.is_alive()
        assert segment_exists(name)
        registry._release(entry)
        evictor.join(timeout=10)
        assert not evictor.is_alive()
        assert not segment_exists(name)
        assert registry.resident_tenants() == []


def test_cold_start_prior_fallback(snapshot):
    path, queries = snapshot
    with ModelRegistry(capacity=2, prior_snapshot=path) as registry:
        direct = load_flat_forest(path).predict_batch(queries[:6])
        served = registry.predict_batch("never-seen", queries[:6])
        assert served == direct
        assert registry.stats.cold_start_requests == 6
        assert registry.resident_tenants() == []  # the prior is not a tenant
    with ModelRegistry(capacity=2) as registry:
        with pytest.raises(TenantNotFoundError, match="never-seen"):
            registry.predict_batch("never-seen", queries[:2])


def test_double_load_is_idempotent(snapshot):
    path, _ = snapshot
    with ModelRegistry(capacity=2) as registry:
        first = registry.load("a", path)
        name = first["shm_name"]
        second = registry.load("a", path)
        assert second["shm_name"] == name  # same segment, no rebuild
        assert registry.stats.loads == 1
        assert segment_exists(name)


def test_evicted_tenant_reloads_on_demand(snapshot):
    path, queries = snapshot
    with ModelRegistry(capacity=1) as registry:
        registry.load("a", path)
        registry.load("b", path)  # evicts "a"
        assert registry.resident_tenants() == ["b"]
        predictions = registry.predict_batch("a", queries[:4])  # cold reload
        assert len(predictions) == 4
        assert registry.stats.reloads == 1
        assert registry.resident_tenants() == ["a"]


def test_swap_replaces_resident_snapshot(snapshot, other_snapshot):
    path, queries = snapshot
    with ModelRegistry(capacity=2) as registry:
        registry.load("a", path)
        old_name = _shm_name(registry, "a")
        before = registry.predict_batch("a", queries)
        registry.load("a", other_snapshot)
        assert registry.stats.swaps == 1
        assert not segment_exists(old_name)
        after = registry.predict_batch("a", queries)
        assert after == load_flat_forest(other_snapshot).predict_batch(queries)
        assert before == load_flat_forest(path).predict_batch(queries)


def test_tenant_policy_clamps_anytime_budgets(snapshot):
    path, queries = snapshot
    with ModelRegistry(capacity=2) as registry:
        registry.load("free", path)
        registry.load("capped", path, policy=TenantPolicy(max_node_budget=4))
        capped = registry.predict_batch("capped", queries, node_budget=64)
        assert capped == registry.predict_batch("free", queries, node_budget=4)
        # Full refinement is exact by definition and never clamped.
        full = registry.predict_batch("capped", queries)
        assert full == load_flat_forest(path).predict_batch(queries)


def test_per_tenant_trace_hash_matches_single_tenant(snapshot):
    path, queries = snapshot
    direct = load_flat_forest(path).classify_anytime_batch(queries, max_nodes=8)
    with ModelRegistry(capacity=2) as registry:
        registry.load("a", path)
        registry.load("b", path)
        registry.predict_batch("b", queries[:4])  # interleave other-tenant traffic
        served = registry.classify_anytime_batch("a", queries, max_nodes=8)
    assert classification_trace_hash(served) == classification_trace_hash(direct)


def test_stats_snapshot_schema(snapshot):
    path, queries = snapshot
    with ModelRegistry(capacity=2, prior_snapshot=path) as registry:
        registry.load("a", path, policy=TenantPolicy(max_node_budget=16))
        registry.predict_batch("a", queries[:4], node_budget=4)
        stats = registry.stats_snapshot()
        assert stats["schema_version"] == 3
        assert stats["capacity"] == 2
        assert stats["resident"] == 1 and stats["registered"] == 1
        assert stats["resident_bytes"] > 0
        tenant = stats["tenants"]["a"]
        assert tenant["resident"] is True
        assert tenant["requests"] == 4
        assert tenant["policy"] == {
            "max_node_budget": 16,
            "pinned": False,
            "weight": 1.0,
            "max_queue_depth": None,
            "requests_per_sec": None,
        }
        assert tenant["cold_load_ms"] > 0
        assert stats["prior"]["snapshot_path"] == str(path)


def test_shared_worker_pool_matches_in_process(snapshot):
    path, queries = snapshot
    with ModelRegistry(capacity=2) as in_process:
        in_process.load("a", path)
        expected_full = in_process.predict_batch("a", queries)
        expected_budgeted = in_process.predict_batch("a", queries, node_budget=8)
    with ModelRegistry(capacity=2, workers=2) as pooled:
        pooled.load("a", path)
        assert pooled.predict_batch("a", queries) == expected_full
        assert pooled.predict_batch("a", queries, node_budget=8) == expected_budgeted


def test_from_manifest_registers_lazily(snapshot, tmp_path):
    path, queries = snapshot
    manifest = tmp_path / "tenants.json"
    save_tenant_manifest(
        manifest,
        {
            "acme": {"snapshot": path},
            "capped": {"snapshot": path, "policy": {"max_node_budget": 4}},
        },
        prior_snapshot=path,
    )
    with ModelRegistry.from_manifest(manifest, capacity=2) as registry:
        assert registry.known_tenants() == ["acme", "capped"]
        assert registry.resident_tenants() == []  # lazy: nothing loaded yet
        assert len(registry.predict_batch("acme", queries[:4])) == 4
        assert registry.resident_tenants() == ["acme"]
        # The manifest's prior serves unknown tenants.
        assert len(registry.predict_batch("stranger", queries[:2])) == 2


def test_registry_validates_inputs(snapshot):
    path, queries = snapshot
    with pytest.raises(ValueError, match="capacity"):
        ModelRegistry(capacity=0)
    with pytest.raises(ValueError, match="max_node_budget"):
        TenantPolicy(max_node_budget=0)
    with pytest.raises(ValueError, match="unknown tenant policy"):
        TenantPolicy.from_dict({"bogus": 1})
    registry = ModelRegistry(capacity=2)
    with pytest.raises(ValueError, match="tenant"):
        registry.load("", path)
    with pytest.raises(ValueError, match="not registered"):
        registry.load("nobody")
    registry.load("a", path)
    with pytest.raises(ValueError, match="queries"):
        registry.predict_batch("a", queries[0])
    with pytest.raises(ValueError, match="budget"):
        registry.predict_batch("a", queries[:2], node_budget=0)
    registry.close()
    with pytest.raises(RegistryClosedError):
        registry.predict_batch("a", queries[:2])
