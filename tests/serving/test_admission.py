"""Property tests for the DRR admission scheduler and the quota token bucket.

The scheduler invariants are pinned over *seeded random arrival
interleavings* (stdlib ``random.Random(seed)``, no third-party property
framework): work-conservation (a round is never empty while any queue is
non-empty), bounded unfairness (a backlogged tenant's granted share stays
within one max-batch of its weight share), and strict FIFO within a tenant.
The token bucket runs against an explicit logical clock, so refill behaviour
is exact, not timing-dependent.
"""

import random

import pytest

from repro.serving import DeficitRoundRobin, TokenBucket


def _random_arrivals(rng, tenants, n_items):
    """One seeded interleaving: (tenant, sequence_number) in arrival order."""
    counters = {tenant: 0 for tenant, _weight in tenants}
    weights = dict(tenants)
    arrivals = []
    for _ in range(n_items):
        tenant = rng.choice([name for name, _weight in tenants])
        arrivals.append((tenant, counters[tenant], weights[tenant]))
        counters[tenant] += 1
    return arrivals


@pytest.mark.parametrize("seed", range(6))
def test_work_conservation_over_random_interleavings(seed):
    """take() never returns an empty round while any queue is non-empty."""
    rng = random.Random(seed)
    tenants = [("hot", 1.0), ("warm", 0.5), ("cold", 0.25)]
    scheduler = DeficitRoundRobin()
    arrivals = _random_arrivals(rng, tenants, 200)
    pending = 0
    taken_total = 0
    arrival_iter = iter(arrivals)
    exhausted = False
    while pending or not exhausted:
        # Interleave bursts of arrivals with rounds, like live admission.
        for _ in range(rng.randint(0, 8)):
            try:
                tenant, sequence, weight = next(arrival_iter)
            except StopIteration:
                exhausted = True
                break
            scheduler.enqueue(tenant, (tenant, sequence), weight=weight)
            pending += 1
        limit = rng.randint(1, 16)
        batch = scheduler.take(limit)
        if pending:
            assert batch, "idle round while queues were non-empty (not work-conserving)"
        assert len(batch) <= limit
        pending -= len(batch)
        taken_total += len(batch)
        assert len(scheduler) == pending
    assert taken_total == len(arrivals)


@pytest.mark.parametrize("seed", range(6))
def test_fifo_within_each_tenant(seed):
    """A tenant's requests come out in exactly their enqueue order."""
    rng = random.Random(100 + seed)
    tenants = [("a", 2.0), ("b", 1.0), ("c", 0.5)]
    scheduler = DeficitRoundRobin()
    for tenant, sequence, weight in _random_arrivals(rng, tenants, 300):
        scheduler.enqueue(tenant, (tenant, sequence), weight=weight)
    released = {name: [] for name, _weight in tenants}
    while len(scheduler):
        for tenant, sequence in scheduler.take(rng.randint(1, 12)):
            released[tenant].append(sequence)
    for tenant, sequences in released.items():
        assert sequences == sorted(sequences), f"tenant {tenant!r} reordered"
        assert sequences == list(range(len(sequences)))


@pytest.mark.parametrize(
    "weights", [{"a": 1.0, "b": 1.0}, {"a": 3.0, "b": 1.0}, {"a": 4.0, "b": 2.0, "c": 1.0}]
)
def test_bounded_unfairness_under_saturation(weights):
    """Backlogged tenants' granted share tracks weight share within one batch.

    Every tenant keeps a standing backlog (re-fed after each round), so the
    scheduler is always choosing under contention; after each round, each
    tenant's cumulative granted count must be within one ``max_batch`` —
    plus one scheduling visit's credit (``quantum * weight``), the phase
    error of measuring mid-rotation — of its weight share of the total
    granted so far.
    """
    max_batch = 16
    scheduler = DeficitRoundRobin()
    backlog = 64
    fed = {tenant: 0 for tenant in weights}

    def top_up():
        for tenant, weight in weights.items():
            while scheduler.queue_depth(tenant) < backlog:
                scheduler.enqueue(tenant, (tenant, fed[tenant]), weight=weight)
                fed[tenant] += 1

    granted = {tenant: 0 for tenant in weights}
    total_weight = sum(weights.values())
    for _round in range(200):
        top_up()
        for tenant, _sequence in scheduler.take(max_batch):
            granted[tenant] += 1
        total_granted = sum(granted.values())
        for tenant, weight in weights.items():
            expected = total_granted * weight / total_weight
            bound = max_batch + scheduler.quantum * weight
            assert abs(granted[tenant] - expected) <= bound, (
                f"round {_round}: tenant {tenant!r} granted {granted[tenant]} "
                f"vs expected {expected:.1f} (bound {bound})"
            )


def test_fractional_weight_earns_fractional_share():
    """A weight-0.5 tenant gets ~1/3 of the grants against a weight-1.0 one."""
    scheduler = DeficitRoundRobin()
    granted = {"full": 0, "half": 0}
    fed = {"full": 0, "half": 0}
    for _ in range(150):
        for tenant, weight in (("full", 1.0), ("half", 0.5)):
            while scheduler.queue_depth(tenant) < 8:
                scheduler.enqueue(tenant, (tenant, fed[tenant]), weight=weight)
                fed[tenant] += 1
        for tenant, _sequence in scheduler.take(3):
            granted[tenant] += 1
    total = sum(granted.values())
    share = granted["half"] / total
    assert 0.25 < share < 0.42  # ideal 1/3, loose band for rounding


def test_idle_tenant_does_not_accumulate_credit():
    """Deficit only builds against a backlog: an emptied queue forfeits it."""
    scheduler = DeficitRoundRobin()
    scheduler.enqueue("idle", ("idle", 0), weight=10.0)
    assert scheduler.take(16) == [("idle", 0)]
    # The tenant was absent for "a long time"; on return it competes from
    # zero credit, not from banked weight-10 quanta.
    snapshot = scheduler.tenant_snapshot("idle")
    assert snapshot["deficit"] == 0.0
    assert snapshot["queue_depth"] == 0


def test_take_limit_cuts_round_mid_tenant_without_losing_requests():
    scheduler = DeficitRoundRobin()
    for sequence in range(10):
        scheduler.enqueue("a", ("a", sequence), weight=8.0)
    first = scheduler.take(4)
    second = scheduler.take(16)
    assert [seq for _tenant, seq in first + second] == list(range(10))


def test_scheduler_counters_and_snapshots():
    scheduler = DeficitRoundRobin()
    scheduler.enqueue("a", 1, weight=2.0)
    scheduler.enqueue("b", 2)
    scheduler.record_rejection("b", "quota", count=3)
    scheduler.record_rejection("b", "queue_full")
    assert scheduler.take(10) and len(scheduler) == 0
    doc = scheduler.snapshot()
    assert doc["rounds"] == 1 and doc["queue_depth"] == 0
    a, b = doc["tenants"]["a"], doc["tenants"]["b"]
    assert a["weight"] == 2.0 and a["granted"] == 1 and a["granted_rounds"] == 1
    assert a["granted_round_share"] == 1.0
    assert b["rejected_quota"] == 3 and b["rejected_queue_full"] == 1
    # Unknown tenants snapshot as zeros instead of KeyError-ing the route.
    assert scheduler.tenant_snapshot("ghost")["enqueued"] == 0


def test_scheduler_validates_inputs():
    scheduler = DeficitRoundRobin()
    with pytest.raises(ValueError, match="quantum"):
        DeficitRoundRobin(quantum=0.0)
    with pytest.raises(ValueError, match="weight"):
        scheduler.enqueue("a", 1, weight=0.0)
    with pytest.raises(ValueError, match="limit"):
        scheduler.take(0)
    with pytest.raises(ValueError, match="rejection kind"):
        scheduler.record_rejection("a", "tuesday")


def test_drain_returns_everything_and_resets():
    scheduler = DeficitRoundRobin()
    for sequence in range(5):
        scheduler.enqueue("a", ("a", sequence))
    scheduler.enqueue("b", ("b", 0))
    drained = scheduler.drain()
    assert len(drained) == 6 and len(scheduler) == 0
    assert [seq for tenant, seq in drained if tenant == "a"] == list(range(5))
    assert scheduler.take(4) == []


# -- token bucket -----------------------------------------------------------------------------
def test_token_bucket_caps_sustained_rate():
    bucket = TokenBucket(rate_per_s=10.0)  # burst defaults to 10
    now = 0.0
    admitted = 0
    # Drain the initial burst, then offer 50 requests over 2 seconds.
    while bucket.try_acquire(now):
        admitted += 1
    assert admitted == 10
    for step in range(50):
        now = 0.04 * (step + 1)  # 25 req/s offered
        if bucket.try_acquire(now):
            admitted += 1
    # 2 seconds at 10/s refill admits ~20 more, regardless of offered rate.
    assert 28 <= admitted <= 31


def test_token_bucket_retry_after_matches_refill():
    bucket = TokenBucket(rate_per_s=2.0, burst=2.0)
    assert bucket.try_acquire(0.0) and bucket.try_acquire(0.0)
    assert not bucket.try_acquire(0.0)
    assert bucket.retry_after_s(0.0) == pytest.approx(0.5)
    # Exactly the advertised wait later, one token has refilled.
    assert bucket.try_acquire(0.5)
    assert not bucket.try_acquire(0.5)


def test_token_bucket_burst_and_validation():
    with pytest.raises(ValueError, match="rate_per_s"):
        TokenBucket(rate_per_s=0.0)
    with pytest.raises(ValueError, match="burst"):
        TokenBucket(rate_per_s=5.0, burst=0.5)
    # Sub-1/s rates still admit single requests (burst floor of 1).
    slow = TokenBucket(rate_per_s=0.1)
    assert slow.burst == 1.0
    assert slow.try_acquire(0.0)
    assert not slow.try_acquire(0.0)
    assert slow.retry_after_s(0.0) == pytest.approx(10.0)
    # Time never runs backwards inside the bucket (clamped elapsed).
    assert not slow.try_acquire(-5.0)


def test_token_bucket_multi_token_batches():
    bucket = TokenBucket(rate_per_s=4.0, burst=8.0)
    assert bucket.try_acquire(0.0, tokens=8.0)
    assert not bucket.try_acquire(0.0, tokens=1.0)
    assert bucket.retry_after_s(0.0, tokens=4.0) == pytest.approx(1.0)
    assert bucket.try_acquire(1.0, tokens=4.0)
    with pytest.raises(ValueError, match="tokens"):
        bucket.try_acquire(1.0, tokens=0.0)
    tokens, burst = bucket.snapshot(1.0)
    assert tokens == pytest.approx(0.0) and burst == 8.0
