"""v1 HTTP contract: tenant routes, legacy aliases, envelope, registry API.

The acceptance contract of the v1 redesign: the legacy unversioned routes
are *aliases* of ``/v1/tenants/{default}/...`` — for the default tenant the
two must return **byte-identical** payloads — and every error on every
endpoint speaks the one structured envelope with a stable code.
"""

import asyncio
import json

import pytest

from repro.core import AnytimeBayesClassifier
from repro.data import make_dataset
from repro.persist import save_forest
from repro.serving import (
    AsyncServingClient,
    HttpFrontend,
    ModelRegistry,
    ServingEngine,
    TenantPolicy,
)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    dataset = make_dataset("pendigits", size=280, random_state=21)
    classifier = AnytimeBayesClassifier()
    classifier.fit(dataset.features[:220], dataset.labels[:220])
    path = tmp_path_factory.mktemp("http-v1") / "forest.npz"
    save_forest(classifier, path)
    return path, dataset


async def _raw_request(host, port, method, path, payload=None):
    """One HTTP exchange; returns (status, headers dict, raw body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        lines = [f"{method} {path} HTTP/1.1", f"Content-Length: {len(body)}", "Connection: close"]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        content = await reader.readexactly(int(headers["content-length"]))
        return status, headers, content
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _request(host, port, method, path, payload=None):
    status, _, content = await _raw_request(host, port, method, path, payload)
    return status, json.loads(content)


def _serve_engine(snapshot_path, coroutine_factory, **client_kwargs):
    """Engine-backed default tenant (the pre-v1 deployment shape)."""

    async def main():
        with ServingEngine(snapshot_path, workers=0, linger_s=0.001) as engine:
            async with AsyncServingClient(engine, **client_kwargs) as client:
                async with HttpFrontend(client) as http:
                    return await coroutine_factory(engine, client, *http.address)

    return asyncio.run(main())


def _serve_registry(snapshot_path, coroutine_factory, **registry_kwargs):
    """Registry-only deployment: every tenant (default included) via registry."""

    async def main():
        registry = ModelRegistry(**registry_kwargs)
        try:
            registry.load("default", snapshot_path)
            async with AsyncServingClient(
                registry=registry, linger_s=0.001
            ) as client:
                async with HttpFrontend(client) as http:
                    return await coroutine_factory(registry, client, *http.address)
        finally:
            registry.close()

    return asyncio.run(main())


def test_legacy_aliases_are_byte_identical_to_v1(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:236]

    async def scenario(engine, client, host, port):
        body = {"features": queries.tolist(), "node_budget": 6}
        legacy = await _raw_request(host, port, "POST", "/classify_batch", body)
        versioned = await _raw_request(
            host, port, "POST", "/v1/tenants/default/classify_batch", body
        )
        full_legacy = await _raw_request(
            host, port, "POST", "/classify_batch", {"features": queries.tolist()}
        )
        full_versioned = await _raw_request(
            host, port, "POST", "/v1/tenants/default/classify_batch",
            {"features": queries.tolist()},
        )
        return legacy, versioned, full_legacy, full_versioned

    legacy, versioned, full_legacy, full_versioned = _serve_engine(path, scenario)
    assert legacy[0] == versioned[0] == 200
    assert legacy[2] == versioned[2]  # byte-identical payloads
    assert full_legacy[2] == full_versioned[2]


def test_registry_only_default_tenant_aliases(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:232]

    async def scenario(registry, client, host, port):
        body = {"features": queries.tolist(), "node_budget": 6}
        legacy = await _raw_request(host, port, "POST", "/classify_batch", body)
        versioned = await _raw_request(
            host, port, "POST", "/v1/tenants/default/classify_batch", body
        )
        health = await _request(host, port, "GET", "/healthz")
        return legacy, versioned, health

    legacy, versioned, health = _serve_registry(path, scenario, capacity=2)
    assert legacy[0] == versioned[0] == 200
    assert legacy[2] == versioned[2]
    assert health[0] == 200 and health[1]["tenants"] == 1


def test_v1_classify_routes_to_the_named_tenant(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:232]

    async def scenario(registry, client, host, port):
        single = await _request(
            host, port, "POST", "/v1/tenants/default/classify",
            {"features": queries[0].tolist(), "node_budget": 6},
        )
        direct = registry.predict_batch("default", queries[:1], node_budget=6)
        unknown = await _request(
            host, port, "POST", "/v1/tenants/ghost/classify",
            {"features": queries[0].tolist()},
        )
        return single, direct, unknown

    single, direct, unknown = _serve_registry(path, scenario, capacity=2)
    assert single[0] == 200 and single[1]["prediction"] == direct[0]
    assert unknown[0] == 404
    assert unknown[1]["error"]["code"] == "tenant_not_found"


def test_v1_registry_load_evict_and_stats(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:228]

    async def scenario(registry, client, host, port):
        loaded = await _request(
            host, port, "POST", "/v1/registry/load",
            {"tenant": "acme", "snapshot_path": str(path)},
        )
        listing = await _request(host, port, "GET", "/v1/registry")
        served = await _request(
            host, port, "POST", "/v1/tenants/acme/classify_batch",
            {"features": queries.tolist()},
        )
        tenant_stats = await _request(host, port, "GET", "/v1/tenants/acme/stats")
        evicted = await _request(
            host, port, "POST", "/v1/registry/evict", {"tenant": "acme"}
        )
        relisted = await _request(host, port, "GET", "/v1/registry")
        return loaded, listing, served, tenant_stats, evicted, relisted

    loaded, listing, served, tenant_stats, evicted, relisted = _serve_registry(
        path, scenario, capacity=4
    )
    assert loaded[0] == 200 and loaded[1]["resident"] is True
    assert loaded[1]["cold_load_ms"] > 0
    assert listing[0] == 200 and listing[1]["schema_version"] == 3
    assert set(listing[1]["tenants"]) == {"acme", "default"}
    assert served[0] == 200 and served[1]["count"] == len(queries)
    assert tenant_stats[0] == 200 and tenant_stats[1]["requests"] == len(queries)
    assert evicted[0] == 200 and evicted[1] == {"evicted": True, "tenant": "acme"}
    assert relisted[1]["tenants"]["acme"]["resident"] is False


def test_v1_swap_loads_tenant_snapshot(snapshot, tmp_path):
    path, dataset = snapshot
    queries = dataset.features[220:228]
    other = tmp_path / "other.npz"
    classifier = AnytimeBayesClassifier()
    classifier.fit(dataset.features[:200], dataset.labels[:200])
    save_forest(classifier, other)

    async def scenario(registry, client, host, port):
        swap = await _request(
            host, port, "POST", "/v1/tenants/acme/swap", {"snapshot_path": str(other)}
        )
        served = await _request(
            host, port, "POST", "/v1/tenants/acme/classify_batch",
            {"features": queries.tolist()},
        )
        return swap, served

    swap, served = _serve_registry(path, scenario, capacity=4)
    assert swap[0] == 200
    assert swap[1] == {"swapped": True, "tenant": "acme", "snapshot_path": str(other)}
    assert served[0] == 200


def test_every_503_carries_retry_after(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:228]

    async def scenario(engine, client, host, port):
        tasks = [asyncio.ensure_future(client.classify(query)) for query in queries[:3]]
        await asyncio.sleep(0.02)
        rejected = await _raw_request(
            host, port, "POST", "/classify", {"features": queries[3].tolist()}
        )
        await asyncio.gather(*tasks)
        return rejected

    status, headers, content = _serve_engine(
        path, scenario, max_pending=3, linger_s=0.3
    )
    assert status == 503
    assert "retry-after" in headers
    envelope = json.loads(content)["error"]
    assert envelope["code"] == "queue_full"
    assert envelope["retry_after_ms"] >= 0


def test_quota_breach_is_an_enveloped_429_with_retry_after(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:228]

    async def scenario(engine, client, host, port):
        # Burst of 2 (rate 2/s): two instant requests pass, the third trips
        # the tenant's requests_per_sec quota.
        first = await _request(host, port, "POST", "/classify", {"features": queries[0].tolist()})
        second = await _request(host, port, "POST", "/classify", {"features": queries[1].tolist()})
        breach = await _raw_request(
            host, port, "POST", "/classify", {"features": queries[2].tolist()}
        )
        return first, second, breach

    first, second, (status, headers, content) = _serve_engine(
        path,
        scenario,
        tenant_policies={"default": TenantPolicy(requests_per_sec=2.0)},
    )
    assert first[0] == 200 and second[0] == 200
    assert status == 429
    assert "retry-after" in headers  # the 429 twin of the every-503 contract
    envelope = json.loads(content)["error"]
    assert envelope["code"] == "quota_exceeded"
    assert envelope["retry_after_ms"] > 0
    # The header is the envelope hint in whole seconds.
    assert int(headers["retry-after"]) == round(envelope["retry_after_ms"] / 1000.0)


def test_tenant_queue_depth_bound_is_a_per_tenant_503(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:228]

    async def scenario(engine, client, host, port):
        # Long linger parks the first two requests in the tenant queue; the
        # third breaches max_queue_depth=2 while the global bound (1024) is
        # nowhere near full.
        tasks = [asyncio.ensure_future(client.classify(query)) for query in queries[:2]]
        await asyncio.sleep(0.02)
        rejected = await _raw_request(
            host, port, "POST", "/classify", {"features": queries[2].tolist()}
        )
        await asyncio.gather(*tasks)
        return rejected

    status, headers, content = _serve_engine(
        path,
        scenario,
        linger_s=0.3,
        tenant_policies={"default": TenantPolicy(max_queue_depth=2)},
    )
    assert status == 503
    assert "retry-after" in headers
    envelope = json.loads(content)["error"]
    assert envelope["code"] == "queue_full"
    assert "tenant" in envelope["message"]  # names the per-tenant bound, not the global one


def test_legacy_aliases_stay_byte_identical_under_admission_policies(snapshot):
    """The DRR scheduler + quota layer must not perturb the alias contract."""
    path, dataset = snapshot
    queries = dataset.features[220:236]

    async def scenario(engine, client, host, port):
        body = {"features": queries.tolist(), "node_budget": 6}
        legacy = await _raw_request(host, port, "POST", "/classify_batch", body)
        versioned = await _raw_request(
            host, port, "POST", "/v1/tenants/default/classify_batch", body
        )
        return legacy, versioned

    legacy, versioned = _serve_engine(
        path,
        scenario,
        tenant_policies={
            "default": TenantPolicy(weight=2.0, max_queue_depth=512, requests_per_sec=10_000.0)
        },
    )
    assert legacy[0] == versioned[0] == 200
    assert legacy[2] == versioned[2]


def test_tenant_stats_nest_the_admission_view(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:228]

    async def scenario(registry, client, host, port):
        await _request(
            host, port, "POST", "/v1/tenants/default/classify_batch",
            {"features": queries.tolist()},
        )
        stats = await _request(host, port, "GET", "/v1/tenants/default/stats")
        merged = await _request(host, port, "GET", "/stats")
        return stats, merged

    stats, merged = _serve_registry(path, scenario, capacity=2)
    assert stats[0] == 200
    admission = stats[1]["admission"]
    assert admission["granted"] == len(queries)
    assert admission["queue_depth"] == 0
    assert admission["policy"] == {
        "weight": 1.0,
        "max_queue_depth": None,
        "requests_per_sec": None,
    }
    assert merged[0] == 200 and merged[1]["schema_version"] == 3
    frontend = merged[1]["frontend"]
    assert frontend["rejected_quota"] == 0
    assert frontend["admission"]["tenants"]["default"]["granted"] == len(queries)


def test_error_envelope_shape_is_uniform(snapshot):
    path, dataset = snapshot

    async def scenario(engine, client, host, port):
        not_found = await _request(host, port, "GET", "/v1/tenants/a")  # malformed route
        bad_json_raw = await _raw_request(host, port, "POST", "/v1/tenants/default/classify")
        no_registry = await _request(host, port, "GET", "/v1/registry")
        return not_found, bad_json_raw, no_registry

    not_found, bad_json_raw, no_registry = _serve_engine(path, scenario)
    assert not_found[0] == 404 and not_found[1]["error"]["code"] == "not_found"
    status, _, content = bad_json_raw
    assert status == 400
    envelope = json.loads(content)["error"]
    assert envelope["code"] == "bad_request" and envelope["message"]
    assert no_registry[0] == 404 and no_registry[1]["error"]["code"] == "not_found"
