"""Async front-end: batching semantics, adaptive budgets and failure modes.

Everything runs on the ``workers=0`` synchronous engine so the tests pin the
front-end's own behaviour (coalescing, backpressure, deadlines, shutdown,
swap) without multiprocess noise; engine parity across worker counts is
pinned by ``tests/serving/test_engine.py``.
"""

import asyncio

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier
from repro.data import make_dataset
from repro.persist import load_forest, save_forest
from repro.serving import (
    ADAPTIVE,
    AdaptiveBudgetPolicy,
    ArrivalRateEstimator,
    AsyncServingClient,
    DeadlineExceededError,
    FrontendClosedError,
    QueueFullError,
    ServingEngine,
    drive_open_loop,
)
from repro.stream import DataStream, PoissonArrival


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    dataset = make_dataset("pendigits", size=300, random_state=11)
    classifier = AnytimeBayesClassifier()
    classifier.fit(dataset.features[:240], dataset.labels[:240])
    path = tmp_path_factory.mktemp("frontend") / "forest.npz"
    save_forest(classifier, path)
    return path, dataset


@pytest.fixture()
def engine(snapshot):
    path, _ = snapshot
    with ServingEngine(path, workers=0, linger_s=0.001) as engine:
        yield engine


def test_fixed_budget_and_full_refinement_match_engine(snapshot, engine):
    _, dataset = snapshot
    queries = dataset.features[240:272]

    async def run():
        async with AsyncServingClient(engine) as client:
            fixed = await client.classify_batch(queries, node_budget=8)
            full = await client.classify_batch(queries)
            single = await client.classify(queries[0], node_budget=8)
            return fixed, full, single

    fixed, full, single = asyncio.run(run())
    assert fixed == engine.predict_batch(queries, node_budget=8)
    assert full == engine.predict_batch(queries)
    assert single == fixed[0]


def test_detail_reports_granted_budget_and_latency(snapshot, engine):
    _, dataset = snapshot

    async def run():
        async with AsyncServingClient(engine) as client:
            fixed = await client.classify(dataset.features[250], node_budget=6, detail=True)
            full = await client.classify(dataset.features[250], detail=True)
            adaptive = await client.classify(
                dataset.features[250], node_budget=ADAPTIVE, detail=True
            )
            return fixed, full, adaptive

    fixed, full, adaptive = asyncio.run(run())
    assert fixed.node_budget == 6
    assert full.node_budget is None
    policy = AdaptiveBudgetPolicy()
    assert policy.min_budget <= adaptive.node_budget <= policy.max_budget
    assert fixed.latency_s >= 0 and full.latency_s >= 0


def test_concurrent_requests_coalesce_into_few_rounds(snapshot, engine):
    _, dataset = snapshot
    queries = dataset.features[240:280]

    async def run():
        async with AsyncServingClient(engine, max_batch=64, linger_s=0.02) as client:
            results = await asyncio.gather(
                *(client.classify(query, node_budget=5) for query in queries)
            )
            return results, client.stats.batches

    results, batches = asyncio.run(run())
    assert results == engine.predict_batch(queries, node_budget=5)
    # 40 concurrent requests must ride far fewer micro-batch rounds.
    assert batches < len(queries) / 2


def test_queue_full_rejection_is_backpressure(snapshot, engine):
    _, dataset = snapshot
    queries = dataset.features[240:248]

    async def run():
        # A long linger keeps the first requests parked in the queue.
        client = AsyncServingClient(engine, max_pending=4, max_batch=64, linger_s=0.25)
        tasks = [asyncio.ensure_future(client.classify(query)) for query in queries[:4]]
        await asyncio.sleep(0.02)  # let the tasks enqueue; linger still running
        with pytest.raises(QueueFullError):
            await client.classify(queries[4])
        assert client.stats.rejected_queue_full == 1
        # A whole batch that does not fit is rejected atomically.
        with pytest.raises(QueueFullError):
            await client.classify_batch(queries)
        parked = await asyncio.gather(*tasks)
        await client.aclose()
        return parked

    parked = asyncio.run(run())
    assert parked == engine.predict_batch(queries[:4])


def test_deadline_exceeded_rejects_and_skips_the_request(snapshot, engine):
    _, dataset = snapshot

    async def run():
        client = AsyncServingClient(engine, max_batch=64, linger_s=0.15)
        with pytest.raises(DeadlineExceededError):
            await client.classify(dataset.features[240], node_budget=4, deadline_ms=20)
        assert client.stats.rejected_deadline == 1
        # The expired request must not poison later rounds: a fresh request
        # with a generous deadline is served normally.
        result = await client.classify(dataset.features[241], node_budget=4, deadline_ms=5000)
        await client.aclose()
        assert client.stats.dropped_cancelled >= 1
        return result

    result = asyncio.run(run())
    assert result == engine.predict_batch(dataset.features[241:242], node_budget=4)[0]


def test_swap_during_in_flight_async_requests(snapshot, engine, tmp_path):
    path, dataset = snapshot
    queries = dataset.features[240:264]
    classifier = load_forest(path)
    rng = np.random.default_rng(5)
    for _ in range(80):
        classifier.partial_fit(rng.normal(size=queries.shape[1]) * 0.1, "intruder")
    swapped = tmp_path / "swapped.npz"
    save_forest(classifier, swapped)
    old = load_forest(path).predict_batch(queries)
    new = load_forest(swapped).predict_batch(queries)

    async def run():
        async with AsyncServingClient(engine, max_batch=8, linger_s=0.005) as client:
            tasks = [asyncio.ensure_future(client.classify(query)) for query in queries]
            await asyncio.sleep(0.002)
            await client.swap_snapshot(swapped)
            return await asyncio.gather(*tasks)

    results = asyncio.run(run())
    assert engine.stats.swaps == 1
    # Every request resolves, each from exactly one of the two snapshots.
    for index, prediction in enumerate(results):
        assert prediction == old[index] or prediction == new[index]


def test_clean_shutdown_drains_pending_futures(snapshot, engine):
    _, dataset = snapshot
    queries = dataset.features[240:252]

    async def run():
        client = AsyncServingClient(engine, max_batch=64, linger_s=0.3)
        tasks = [asyncio.ensure_future(client.classify(query, node_budget=3)) for query in queries]
        await asyncio.sleep(0.02)  # requests are parked in the linger window
        await client.aclose(drain=True)  # must serve them, not strand them
        results = await asyncio.gather(*tasks)
        with pytest.raises(FrontendClosedError):
            await client.classify(queries[0])
        return results

    results = asyncio.run(run())
    assert results == engine.predict_batch(queries, node_budget=3)


def test_non_drain_shutdown_fails_pending_futures(snapshot, engine):
    _, dataset = snapshot
    queries = dataset.features[240:248]

    async def run():
        client = AsyncServingClient(engine, max_batch=64, linger_s=0.3)
        tasks = [asyncio.ensure_future(client.classify(query)) for query in queries]
        await asyncio.sleep(0.02)
        await client.aclose(drain=False)
        return await asyncio.gather(*tasks, return_exceptions=True)

    outcomes = asyncio.run(run())
    assert outcomes and all(isinstance(outcome, FrontendClosedError) for outcome in outcomes)


def test_adaptive_budget_tracks_arrival_rate(snapshot, engine):
    """Open-loop load at two rates: light traffic earns deeper refinement."""
    _, dataset = snapshot
    tail = dataset.tail(240)

    async def run(speed):
        async with AsyncServingClient(engine, max_batch=32, linger_s=0.002) as client:
            stream = DataStream(tail, arrival=PoissonArrival(rate=1.0), random_state=7)
            records = await drive_open_loop(
                client, stream, speed=speed, limit=40, node_budget=ADAPTIVE
            )
            budgets = [record["node_budget"] for record in records if record["status"] == "ok"]
            return float(np.mean(budgets))

    slow = asyncio.run(run(speed=30.0))  # ~30 arrivals/s
    burst = asyncio.run(run(speed=4000.0))  # ~4000 arrivals/s
    assert slow > burst, f"expected deeper refinement under light load ({slow} vs {burst})"


def test_mixed_round_deadline_never_clamps_fixed_budgets(snapshot, engine):
    """An adaptive request with a tight deadline must not touch the fixed
    budgets coalesced into the same round — their trace identity with the
    direct engine call is part of the contract."""
    _, dataset = snapshot
    queries = dataset.features[240:252]
    engine.predict_batch(queries, node_budget=8)  # calibrate the node cost

    async def run():
        async with AsyncServingClient(engine, max_batch=64, linger_s=0.05) as client:
            fixed = [
                asyncio.ensure_future(client.classify(query, node_budget=16))
                for query in queries
            ]
            adaptive = asyncio.ensure_future(
                client.classify(queries[0], node_budget=ADAPTIVE, deadline_ms=2000, detail=True)
            )
            results = await asyncio.gather(*fixed)
            detail = await adaptive
            return results, detail

    results, detail = asyncio.run(run())
    assert results == engine.predict_batch(queries, node_budget=16)
    assert detail.node_budget >= 1


def test_adaptive_accepts_plain_string_budget(snapshot, engine):
    """A non-interned "adaptive" (e.g. parsed from JSON) means ADAPTIVE."""
    _, dataset = snapshot
    uninterned = "".join(["adap", "tive"])

    async def run():
        async with AsyncServingClient(engine) as client:
            result = await client.classify(
                dataset.features[240], node_budget=uninterned, detail=True
            )
            with pytest.raises(ValueError, match="node_budget"):
                await client.classify(dataset.features[240], node_budget="deep")
            return result

    result = asyncio.run(run())
    assert result.node_budget >= 1


def test_failed_rounds_do_not_pollute_node_cost(snapshot):
    path, dataset = snapshot
    queries = dataset.features[240:248]
    with ServingEngine(path, workers=0) as engine:
        with pytest.raises(ValueError):
            engine.predict_batch(queries, node_budget=np.asarray([1, 2]))
        assert engine.node_cost_estimate() is None  # the failed round left no sample
        engine.predict_batch(queries, node_budget=4)
        assert engine.node_cost_estimate() is not None


def test_classify_batch_admission_is_atomic(snapshot, engine):
    """Two racing blocks that fit alone but not together: one is admitted
    whole, the other rejected whole — no partially-enqueued block."""
    _, dataset = snapshot
    queries = dataset.features[240:256]

    async def run():
        client = AsyncServingClient(engine, max_pending=10, max_batch=64, linger_s=0.2)
        first = asyncio.ensure_future(client.classify_batch(queries[:8], node_budget=4))
        second = asyncio.ensure_future(client.classify_batch(queries[8:], node_budget=4))
        outcomes = await asyncio.gather(first, second, return_exceptions=True)
        await client.aclose()
        return outcomes

    outcomes = asyncio.run(run())
    rejected = [outcome for outcome in outcomes if isinstance(outcome, QueueFullError)]
    served = [outcome for outcome in outcomes if isinstance(outcome, list)]
    assert len(rejected) == 1 and len(served) == 1
    assert served[0] == engine.predict_batch(queries[:8], node_budget=4)


def test_validation_errors(snapshot, engine):
    _, dataset = snapshot

    async def run():
        async with AsyncServingClient(engine) as client:
            with pytest.raises(ValueError, match="features"):
                await client.classify(dataset.features[:4])
            with pytest.raises(ValueError, match="queries"):
                await client.classify_batch(dataset.features[240])

    asyncio.run(run())
    with pytest.raises(ValueError, match="max_pending"):
        AsyncServingClient(engine, max_pending=0)
    with pytest.raises(ValueError, match="linger_s"):
        AsyncServingClient(engine, linger_s=-1.0)


def test_arrival_rate_estimator_ewma():
    estimator = ArrivalRateEstimator(alpha=0.5, initial_gap_s=1.0)
    assert estimator.mean_gap_s == 1.0
    estimator.observe(10.0)  # first arrival: no gap yet
    assert estimator.mean_gap_s == 1.0
    estimator.observe(10.1)
    assert estimator.mean_gap_s == pytest.approx(0.55)
    estimator.observe(10.2)
    assert estimator.mean_gap_s == pytest.approx(0.325)
    assert estimator.rate_per_s == pytest.approx(1.0 / 0.325)
    estimator.reset()
    assert estimator.mean_gap_s == 1.0 and estimator.observations == 0
    with pytest.raises(ValueError):
        ArrivalRateEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        ArrivalRateEstimator(initial_gap_s=0.0)


def test_adaptive_budget_policy_clamps():
    policy = AdaptiveBudgetPolicy(min_budget=2, max_budget=32, node_cost_s=1e-3, utilisation=0.5)
    assert policy.budget(mean_gap_s=1.0) == 32  # 500 affordable -> clamped
    assert policy.budget(mean_gap_s=0.0) == 2  # burst -> floor
    assert policy.budget(mean_gap_s=0.02) == 10
    # The engine's calibrated cost wins over the static fallback.
    assert policy.budget(mean_gap_s=0.02, node_cost_hint=2e-3) == 5
    with pytest.raises(ValueError):
        AdaptiveBudgetPolicy(min_budget=0)
    with pytest.raises(ValueError):
        AdaptiveBudgetPolicy(node_cost_s=0.0)
    with pytest.raises(ValueError):
        AdaptiveBudgetPolicy(utilisation=1.5)


def test_engine_calibrates_node_cost_and_clamps_on_deadline(snapshot):
    path, dataset = snapshot
    queries = dataset.features[240:256]
    with ServingEngine(path, workers=0) as engine:
        assert engine.node_cost_estimate() is None
        engine.predict_batch(queries, node_budget=8)
        cost = engine.node_cost_estimate()
        assert cost is not None and cost > 0
        # A zero deadline clamps any budget down to a single node read.
        clamped = engine.predict_batch(queries, node_budget=500, deadline_s=0.0)
        assert clamped == engine.predict_batch(queries, node_budget=1)
        snapshot_stats = engine.stats_snapshot()
        assert snapshot_stats["batches"] == 3
        assert snapshot_stats["last_round_s"] > 0
        assert snapshot_stats["node_cost_s"] == engine.node_cost_estimate()
        assert snapshot_stats["snapshot_path"] == str(path)
