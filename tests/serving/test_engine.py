"""Serving engine: sharded results must equal the in-process classifier's.

Small forests, 2-worker pools — these tests pin correctness (bit-identical
predictions, micro-batching, hot swap, fallback) and leave throughput to
``benchmarks/test_serving_throughput.py``.
"""

import warnings

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig
from repro.data import make_dataset
from repro.persist import load_forest, save_forest
from repro.serving import ServingEngine


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    dataset = make_dataset("pendigits", size=360, random_state=8)
    config = BayesTreeConfig(decay_rate=0.01, expiry_threshold=1e-4)
    classifier = AnytimeBayesClassifier(config=config)
    for i in range(300):
        classifier.partial_fit(dataset.features[i], dataset.labels[i], timestamp=float(i) * 0.2)
    path = tmp_path_factory.mktemp("serving") / "forest.npz"
    save_forest(classifier, path)
    return path, dataset.features[300:]


@pytest.fixture(scope="module")
def expected(snapshot):
    path, queries = snapshot
    local = load_forest(path)
    return {
        "full": local.predict_batch(queries),
        "budget_8": local.predict_batch(queries, node_budget=8),
    }


def test_fallback_serves_identical_predictions(snapshot, expected):
    path, queries = snapshot
    with ServingEngine(path, workers=0) as engine:
        assert not engine.is_multiprocess
        assert engine.predict_batch(queries) == expected["full"]
        assert engine.predict_batch(queries, node_budget=8) == expected["budget_8"]
        assert engine.stats.batches == 2
        assert engine.stats.requests == 2 * len(queries)


def test_sharded_workers_serve_identical_predictions(snapshot, expected):
    path, queries = snapshot
    with ServingEngine(path, workers=2) as engine:
        assert engine.n_shards == 2
        assert engine.predict_batch(queries) == expected["full"]
        assert engine.predict_batch(queries, node_budget=8) == expected["budget_8"]
        # Per-query budgets ride one lockstep batch.
        budgets = np.asarray([4, 8, 12] * (len(queries) // 3 + 1))[: len(queries)]
        local = load_forest(path)
        assert engine.predict_batch(queries, node_budget=budgets) == local.predict_batch(
            queries, node_budget=budgets
        )


def test_more_workers_than_classes_is_clamped(snapshot, expected):
    path, queries = snapshot
    with ServingEngine(path, workers=64) as engine:
        assert engine.n_shards <= len(engine.labels)
        assert engine.predict_batch(queries[:16]) == expected["full"][:16]


def test_micro_batcher_groups_requests(snapshot, expected):
    path, queries = snapshot
    with ServingEngine(path, workers=2, max_batch=16, linger_s=0.01) as engine:
        futures = [engine.classify(query) for query in queries[:24]]
        budgeted = [engine.classify(query, node_budget=8) for query in queries[:8]]
        assert [future.result(timeout=120) for future in futures] == expected["full"][:24]
        assert [future.result(timeout=120) for future in budgeted] == expected["budget_8"][:8]
        # 32 submissions were served in far fewer dispatch rounds.
        assert engine.stats.requests == 32
        assert engine.stats.batches < 32
    with pytest.raises(RuntimeError, match="closed"):
        engine.classify(queries[0])


def test_submit_is_a_deprecated_alias_of_classify(snapshot, expected, monkeypatch):
    from repro.serving import engine as engine_module

    path, queries = snapshot
    # The warning is once-per-process (module-level guard); reset it so this
    # test sees it regardless of suite ordering.
    monkeypatch.setattr(engine_module, "_SUBMIT_DEPRECATION_WARNED", False)
    with ServingEngine(path, workers=0) as engine:
        with pytest.warns(DeprecationWarning, match="classify"):
            future = engine.submit(queries[0])
        assert future.result(timeout=120) == expected["full"][0]


def test_submit_deprecation_warns_once_per_process(snapshot, monkeypatch):
    from repro.serving import engine as engine_module

    path, queries = snapshot
    monkeypatch.setattr(engine_module, "_SUBMIT_DEPRECATION_WARNED", False)
    with ServingEngine(path, workers=0) as engine:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                engine.submit(queries[0]).result(timeout=120)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        # Five calls, one warning: the guard is a module flag, so even an
        # "always" warnings filter cannot re-arm it.
        assert len(deprecations) == 1


def test_hot_swap_switches_models_gracefully(snapshot, tmp_path):
    path, queries = snapshot
    classifier = load_forest(path)
    rng = np.random.default_rng(0)
    # Push the forest somewhere clearly different, then snapshot it.
    for _ in range(120):
        classifier.partial_fit(rng.normal(size=queries.shape[1]) * 0.1, "intruder", timestamp=90.0)
    swapped_path = tmp_path / "swapped.npz"
    save_forest(classifier, swapped_path)
    with ServingEngine(path, workers=2) as engine:
        before = engine.predict_batch(queries)
        engine.swap_snapshot(swapped_path)
        after = engine.predict_batch(queries)
        assert "intruder" in engine.labels
        assert after == load_forest(swapped_path).predict_batch(queries)
        assert engine.stats.swaps == 1
        assert before == load_forest(path).predict_batch(queries)


def test_concurrent_swaps_never_tear_a_serving_round(snapshot, tmp_path):
    """Rounds racing hot swaps must come wholly from one snapshot or the other.

    The engine guards swaps with a readers-writer protocol; without it a
    round could score half its shards on the old forest and half on the new
    one (or gather against a stale label layout and crash).  Swapping between
    two forests with *different class sets* makes any tear loud.
    """
    import threading

    path, queries = snapshot
    classifier = load_forest(path)
    rng = np.random.default_rng(3)
    for _ in range(60):
        classifier.partial_fit(rng.normal(size=queries.shape[1]) * 0.1, "intruder", timestamp=90.0)
    other_path = tmp_path / "other.npz"
    save_forest(classifier, other_path)
    expected = {
        "old": load_forest(path).predict_batch(queries),
        "new": load_forest(other_path).predict_batch(queries),
    }
    with ServingEngine(path, workers=2) as engine:
        results, errors = [], []

        def serve():
            try:
                for _ in range(12):
                    results.append(engine.predict_batch(queries))
            except Exception as error:  # noqa: BLE001 - surfaced via the errors list
                errors.append(error)

        thread = threading.Thread(target=serve)
        thread.start()
        for target in (other_path, path, other_path):
            engine.swap_snapshot(target)
        thread.join()
    assert not errors
    assert results and all(
        outcome == expected["old"] or outcome == expected["new"] for outcome in results
    )


def test_swap_validates_the_new_snapshot(snapshot, tmp_path):
    path, queries = snapshot
    other = AnytimeBayesClassifier()
    rng = np.random.default_rng(1)
    for _ in range(8):
        other.partial_fit(rng.normal(size=3), "a")  # wrong dimensionality
    wrong_dim = tmp_path / "wrong.npz"
    save_forest(other, wrong_dim)
    with ServingEngine(path, workers=0) as engine:
        with pytest.raises(ValueError, match="dimension"):
            engine.swap_snapshot(wrong_dim)
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"junk")
        from repro.persist import SnapshotError

        with pytest.raises(SnapshotError):
            engine.swap_snapshot(garbage)
        # Engine still serves from the old snapshot after rejected swaps.
        assert engine.predict_batch(queries[:8]) == load_forest(path).predict_batch(queries[:8])


def test_engine_validates_inputs(snapshot):
    path, queries = snapshot
    with ServingEngine(path, workers=0) as engine:
        with pytest.raises(ValueError, match="queries"):
            engine.predict_batch(queries[0])
        with pytest.raises(ValueError, match="features"):
            engine.classify(queries)
        with pytest.raises(ValueError, match="budget per query"):
            engine.predict_batch(queries, node_budget=np.asarray([1, 2]))
    with pytest.raises(ValueError, match="workers"):
        ServingEngine(path, workers=-1)
