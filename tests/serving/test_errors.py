"""Meta-tests of the serving error taxonomy: codes, statuses, envelopes.

These tests walk the :class:`ServingError` hierarchy reflectively instead of
naming classes one by one, so a *new* error class cannot ship half-wired: if
its code is missing from ``ERROR_CODES``, disagrees with the class's
``http_status``, collides with another class's code, or round-trips through
:func:`error_envelope` into anything but itself, a test here fails without
being edited.
"""

import pytest

from repro.persist import SnapshotError
from repro.serving import ERROR_CODES, error_envelope
from repro.serving.errors import ServingError


def _all_error_classes():
    """Every class in the ServingError hierarchy, the base included."""
    classes = []
    pending = [ServingError]
    while pending:
        cls = pending.pop()
        classes.append(cls)
        pending.extend(cls.__subclasses__())
    return classes


def _code_owning_classes():
    """The classes that *define* a code (subclasses may inherit one)."""
    return [cls for cls in _all_error_classes() if "code" in vars(cls)]


def test_every_declared_code_is_in_error_codes_with_matching_status():
    for cls in _all_error_classes():
        assert cls.code in ERROR_CODES, f"{cls.__name__} code {cls.code!r} not in ERROR_CODES"
        assert ERROR_CODES[cls.code] == cls.http_status, (
            f"{cls.__name__}: class http_status {cls.http_status} disagrees with "
            f"ERROR_CODES[{cls.code!r}] == {ERROR_CODES[cls.code]}"
        )


def test_declared_codes_are_unique_per_owning_class():
    """No two classes may claim the same wire code (inheritance is fine)."""
    owners = {}
    for cls in _code_owning_classes():
        assert cls.code not in owners, (
            f"code {cls.code!r} declared by both {owners[cls.code].__name__} "
            f"and {cls.__name__}"
        )
        owners[cls.code] = cls


def test_every_error_class_round_trips_through_the_envelope():
    for cls in _all_error_classes():
        error = cls("synthetic failure")
        status, payload = error_envelope(error)
        body = payload["error"]
        assert status == cls.http_status
        assert body["code"] == cls.code
        assert "synthetic failure" in body["message"]
        if cls.retry_after_ms is not None:
            assert body["retry_after_ms"] == cls.retry_after_ms


def test_retryable_statuses_always_carry_a_hint():
    """Every 429/503 envelope ships retry_after_ms, however it was produced."""
    for cls in _all_error_classes():
        if cls.http_status not in (429, 503):
            continue
        status, payload = error_envelope(cls("overloaded"))
        assert payload["error"]["retry_after_ms"] is not None
        assert payload["error"]["retry_after_ms"] > 0
    # Even a code override onto a retryable status gets the default hint.
    status, payload = error_envelope(RuntimeError("x"), code="queue_full", status=503)
    assert payload["error"]["retry_after_ms"] == 100


def test_non_retryable_envelopes_omit_the_hint_key():
    for cls in _all_error_classes():
        if cls.http_status in (429, 503) or cls.retry_after_ms is not None:
            continue
        _status, payload = error_envelope(cls("nope"))
        assert "retry_after_ms" not in payload["error"]


def test_instance_retry_override_reaches_the_envelope():
    for cls in _code_owning_classes():
        if cls.retry_after_ms is None:
            continue
        _status, payload = error_envelope(cls("busy", retry_after_ms=12345))
        assert payload["error"]["retry_after_ms"] == 12345


@pytest.mark.parametrize(
    "error, expected_code, expected_status",
    [
        (SnapshotError("corrupt container"), "bad_snapshot", 400),
        (ValueError("bad field"), "bad_request", 400),
        (KeyError("features"), "bad_request", 400),
        (TypeError("not a list"), "bad_request", 400),
        (RuntimeError("boom"), "internal", 500),
    ],
)
def test_exception_families_without_classes_map_by_family(error, expected_code, expected_status):
    status, payload = error_envelope(error)
    assert status == expected_status
    assert payload["error"]["code"] == expected_code
    assert ERROR_CODES[expected_code] == expected_status


def test_every_error_code_is_reachable():
    """ERROR_CODES carries no dead vocabulary: each code is producible.

    Codes with a dedicated exception class are covered by the round-trip
    test; the family codes must each have a producing path through
    :func:`error_envelope` — otherwise the documented wire vocabulary and
    the implementation have drifted apart.
    """
    produced = {cls.code for cls in _all_error_classes()}
    produced.add(error_envelope(SnapshotError("x"))[1]["error"]["code"])
    produced.add(error_envelope(ValueError("x"))[1]["error"]["code"])
    produced.add(error_envelope(RuntimeError("x"))[1]["error"]["code"])
    # not_found has no exception family: the router injects it explicitly.
    produced.add(error_envelope(Exception("no route"), code="not_found", status=404)[1]["error"]["code"])
    assert produced == set(ERROR_CODES)


def test_internal_errors_stay_diagnosable():
    _status, payload = error_envelope(ZeroDivisionError("division by zero"))
    assert payload["error"]["message"].startswith("ZeroDivisionError:")
