"""HTTP shim: wire protocol, routing and error-code mapping.

The requests are written over raw asyncio sockets (no HTTP client library),
which doubles as a test of the shim's actual wire format.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier
from repro.data import make_dataset
from repro.persist import load_forest, save_forest
from repro.serving import AsyncServingClient, HttpFrontend, ServingEngine


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    dataset = make_dataset("pendigits", size=280, random_state=21)
    classifier = AnytimeBayesClassifier()
    classifier.fit(dataset.features[:220], dataset.labels[:220])
    path = tmp_path_factory.mktemp("http") / "forest.npz"
    save_forest(classifier, path)
    return path, dataset


async def _request(host, port, method, path, payload=None, extra_headers=()):
    """One HTTP exchange over a fresh connection; returns (status, json body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        lines = [f"{method} {path} HTTP/1.1", f"Content-Length: {len(body)}", "Connection: close"]
        lines.extend(extra_headers)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        content = await reader.readexactly(int(headers["content-length"]))
        return status, json.loads(content)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _serve(snapshot_path, coroutine_factory, **client_kwargs):
    """Run a coroutine against a started engine + client + HTTP front-end."""

    async def main():
        with ServingEngine(snapshot_path, workers=0, linger_s=0.001) as engine:
            async with AsyncServingClient(engine, **client_kwargs) as client:
                async with HttpFrontend(client) as http:
                    host, port = http.address
                    return await coroutine_factory(engine, client, host, port)

    return asyncio.run(main())


def test_healthz_and_stats(snapshot):
    path, _ = snapshot

    async def scenario(engine, client, host, port):
        health = await _request(host, port, "GET", "/healthz")
        stats = await _request(host, port, "GET", "/stats")
        return health, stats

    (health_status, health), (stats_status, stats) = _serve(path, scenario)
    assert health_status == 200 and health["status"] == "ok"
    assert health["snapshot_path"] == str(path)
    assert stats_status == 200
    assert stats["engine"]["snapshot_path"] == str(path)
    assert stats["frontend"]["queue_depth"] == 0
    assert "arrival" in stats["frontend"]


def test_classify_routes_match_direct_engine(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:236]

    async def scenario(engine, client, host, port):
        single = await _request(
            host, port, "POST", "/classify",
            {"features": queries[0].tolist(), "node_budget": 6},
        )
        batch = await _request(
            host, port, "POST", "/classify_batch",
            {"features": queries.tolist(), "node_budget": 6},
        )
        full = await _request(host, port, "POST", "/classify", {"features": queries[0].tolist()})
        adaptive = await _request(
            host, port, "POST", "/classify",
            {"features": queries[0].tolist(), "node_budget": "adaptive"},
        )
        direct_fixed = engine.predict_batch(queries, node_budget=6)
        direct_full = engine.predict_batch(queries[:1])
        return single, batch, full, adaptive, direct_fixed, direct_full

    single, batch, full, adaptive, direct_fixed, direct_full = _serve(path, scenario)
    assert single[0] == 200 and single[1]["prediction"] == direct_fixed[0]
    assert single[1]["node_budget"] == 6 and single[1]["latency_ms"] >= 0
    assert batch[0] == 200 and batch[1]["predictions"] == direct_fixed
    assert batch[1]["count"] == len(queries)
    assert full[0] == 200 and full[1]["prediction"] == direct_full[0]
    assert full[1]["node_budget"] is None
    assert adaptive[0] == 200 and adaptive[1]["node_budget"] >= 1


def test_error_codes(snapshot):
    path, dataset = snapshot

    async def scenario(engine, client, host, port):
        not_found = await _request(host, port, "GET", "/nope")
        bad_json = await _request(host, port, "POST", "/classify")
        bad_budget = await _request(
            host, port, "POST", "/classify",
            {"features": dataset.features[220].tolist(), "node_budget": -3},
        )
        bad_shape = await _request(
            host, port, "POST", "/classify", {"features": [1.0, 2.0]},
        )
        timeout = await _request(
            host, port, "POST", "/classify",
            {"features": dataset.features[220].tolist(), "deadline_ms": 1},
        )
        return not_found, bad_json, bad_budget, bad_shape, timeout

    not_found, bad_json, bad_budget, bad_shape, timeout = _serve(
        path, scenario, linger_s=0.1
    )
    assert not_found[0] == 404
    assert not_found[1]["error"]["code"] == "not_found"
    assert bad_json[0] == 400 and "JSON" in bad_json[1]["error"]["message"]
    assert bad_json[1]["error"]["code"] == "bad_request"
    assert bad_budget[0] == 400
    assert bad_shape[0] == 400
    assert timeout[0] == 504
    assert timeout[1]["error"]["code"] == "deadline_exceeded"


def test_malformed_framing_gets_a_400_response(snapshot):
    """Unparseable requests must be answered on the wire, not just dropped."""
    path, _ = snapshot

    async def scenario(engine, client, host, port):
        async def raw(request: bytes) -> int:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(request)
                await writer.drain()
                status_line = await reader.readline()
                return int(status_line.split()[1])
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

        bad_line = await raw(b"GET /\r\n\r\n")
        bad_length = await raw(b"POST /classify HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
        return bad_line, bad_length

    bad_line, bad_length = _serve(path, scenario)
    assert bad_line == 400
    assert bad_length == 400


def test_queue_full_maps_to_503(snapshot):
    path, dataset = snapshot
    queries = dataset.features[220:228]

    async def scenario(engine, client, host, port):
        # Park enough requests to fill the bounded queue during the linger.
        tasks = [asyncio.ensure_future(client.classify(query)) for query in queries[:3]]
        await asyncio.sleep(0.02)
        rejected = await _request(
            host, port, "POST", "/classify", {"features": queries[3].tolist()}
        )
        await asyncio.gather(*tasks)
        return rejected

    status, body = _serve(path, scenario, max_pending=3, linger_s=0.3)
    assert status == 503
    assert body["error"]["code"] == "queue_full"
    assert "full" in body["error"]["message"]
    assert body["error"]["retry_after_ms"] >= 0


def test_swap_endpoint_switches_snapshots(snapshot, tmp_path):
    path, dataset = snapshot
    queries = dataset.features[220:232]
    classifier = load_forest(path)
    rng = np.random.default_rng(9)
    for _ in range(80):
        classifier.partial_fit(rng.normal(size=queries.shape[1]) * 0.1, "intruder")
    swapped_path = tmp_path / "swapped.npz"
    save_forest(classifier, swapped_path)

    async def scenario(engine, client, host, port):
        before = await _request(
            host, port, "POST", "/classify_batch", {"features": queries.tolist()}
        )
        swap = await _request(
            host, port, "POST", "/swap", {"snapshot_path": str(swapped_path)}
        )
        after = await _request(
            host, port, "POST", "/classify_batch", {"features": queries.tolist()}
        )
        bad_swap = await _request(
            host, port, "POST", "/swap", {"snapshot_path": str(tmp_path / "missing.npz")}
        )
        return before, swap, after, bad_swap, engine.stats.swaps

    before, swap, after, bad_swap, swaps = _serve(path, scenario)
    assert before[0] == 200 and before[1]["predictions"] == load_forest(path).predict_batch(queries)
    assert swap[0] == 200 and swap[1]["snapshot_path"] == str(swapped_path)
    assert after[0] == 200
    assert after[1]["predictions"] == load_forest(swapped_path).predict_batch(queries)
    assert bad_swap[0] in (400, 500)  # engine-side validation failure surfaces as an error
    assert swaps == 1


def test_keep_alive_serves_sequential_requests(snapshot):
    path, dataset = snapshot

    async def scenario(engine, client, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            statuses = []
            for _ in range(3):
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                statuses.append(int(status_line.split()[1]))
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                await reader.readexactly(int(headers["content-length"]))
            return statuses
        finally:
            writer.close()
            await writer.wait_closed()

    assert _serve(path, scenario) == [200, 200, 200]
