"""Tests for time-decayed cluster features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import DecayedClusterFeature


def test_starts_empty():
    cf = DecayedClusterFeature(dimension=3, decay_rate=0.1)
    assert cf.is_empty
    assert cf.weight() == 0.0


def test_validation():
    with pytest.raises(ValueError):
        DecayedClusterFeature(dimension=0)
    with pytest.raises(ValueError):
        DecayedClusterFeature(dimension=2, decay_rate=-0.1)


def test_add_point_sets_mean():
    cf = DecayedClusterFeature(dimension=2, decay_rate=0.0)
    cf.add_point([1.0, 2.0], now=0.0)
    cf.add_point([3.0, 4.0], now=1.0)
    np.testing.assert_allclose(cf.mean(), [2.0, 3.0])
    assert cf.weight() == pytest.approx(2.0)


def test_weight_halves_after_half_life():
    cf = DecayedClusterFeature(dimension=1, decay_rate=0.5)  # half-life of 2 time units
    cf.add_point([0.0], now=0.0)
    assert cf.weight(now=2.0) == pytest.approx(0.5)
    cf.decay_to(2.0)
    assert cf.weight() == pytest.approx(0.5)


def test_zero_decay_rate_never_forgets():
    cf = DecayedClusterFeature(dimension=1, decay_rate=0.0)
    cf.add_point([5.0], now=0.0)
    cf.decay_to(1000.0)
    assert cf.weight() == pytest.approx(1.0)
    np.testing.assert_allclose(cf.mean(), [5.0])


def test_decay_preserves_mean_and_variance():
    rng = np.random.default_rng(0)
    cf = DecayedClusterFeature(dimension=3, decay_rate=0.1)
    points = rng.normal(size=(20, 3))
    for point in points:
        cf.add_point(point, now=0.0)
    mean_before, var_before = cf.mean(), cf.variance()
    cf.decay_to(10.0)
    np.testing.assert_allclose(cf.mean(), mean_before)
    np.testing.assert_allclose(cf.variance(), var_before, atol=1e-9)


def test_time_cannot_run_backwards():
    cf = DecayedClusterFeature(dimension=1, decay_rate=0.1)
    cf.add_point([0.0], now=5.0)
    with pytest.raises(ValueError):
        cf.decay_to(4.0)


def test_newer_points_dominate_the_mean_under_decay():
    cf = DecayedClusterFeature(dimension=1, decay_rate=1.0)  # half-life of 1
    cf.add_point([0.0], now=0.0)
    cf.add_point([10.0], now=10.0)
    # The old point's weight decayed to ~2^-10, so the mean is almost 10.
    assert cf.mean()[0] == pytest.approx(10.0, abs=0.01)


def test_absorb_merges_and_respects_timestamps():
    a = DecayedClusterFeature(dimension=2, decay_rate=0.0)
    b = DecayedClusterFeature(dimension=2, decay_rate=0.0)
    a.add_point([0.0, 0.0], now=0.0)
    b.add_point([2.0, 2.0], now=0.0)
    a.absorb(b, now=1.0)
    assert a.weight() == pytest.approx(2.0)
    np.testing.assert_allclose(a.mean(), [1.0, 1.0])
    with pytest.raises(ValueError):
        a.absorb(DecayedClusterFeature(dimension=3), now=2.0)


def test_clear_resets_content():
    cf = DecayedClusterFeature(dimension=2, decay_rate=0.1)
    cf.add_point([1.0, 1.0], now=0.0)
    cf.clear(now=5.0)
    assert cf.is_empty
    assert cf.last_update == 5.0


def test_copy_is_independent():
    cf = DecayedClusterFeature(dimension=1, decay_rate=0.1)
    cf.add_point([1.0], now=0.0)
    duplicate = cf.copy()
    duplicate.add_point([5.0], now=1.0)
    assert cf.weight() == pytest.approx(1.0)


@settings(deadline=None, max_examples=30)
@given(st.floats(0.0, 1.0), st.floats(0.0, 20.0), st.integers(1, 20))
def test_weight_is_monotonically_non_increasing_in_time(decay_rate, elapsed, count):
    cf = DecayedClusterFeature(dimension=1, decay_rate=decay_rate)
    for _ in range(count):
        cf.add_point([0.0], now=0.0)
    assert cf.weight(now=elapsed) <= cf.weight(now=0.0) + 1e-12
    assert cf.weight(now=elapsed) >= 0.0
