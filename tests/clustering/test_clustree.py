"""Tests for the anytime clustering tree and the offline component."""

import numpy as np
import pytest

from repro.clustering import (
    ClusTree,
    assign_to_macro_clusters,
    clustering_purity,
    density_cluster,
)
from repro.data import make_blobs, make_drift_stream


def stream_blobs(seed=0, per_class=150):
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    dataset = make_blobs(n_classes=3, per_class=per_class, n_features=2, random_state=seed, centers=centers)
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.size)
    return dataset.features[order], dataset.labels[order]


class TestClusTreeBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusTree(dimension=0)
        with pytest.raises(ValueError):
            ClusTree(dimension=2, fanout=1)
        with pytest.raises(ValueError):
            ClusTree(dimension=2, decay_rate=-1.0)
        with pytest.raises(ValueError):
            ClusTree(dimension=2, prune_threshold=-1.0)

    def test_insert_rejects_wrong_dimension_and_backwards_time(self):
        tree = ClusTree(dimension=2)
        with pytest.raises(ValueError):
            tree.insert(np.zeros(3))
        tree.insert(np.zeros(2), timestamp=5.0)
        with pytest.raises(ValueError):
            tree.insert(np.zeros(2), timestamp=1.0)

    def test_insert_counts_objects(self):
        tree = ClusTree(dimension=2)
        points, _ = stream_blobs(per_class=20)
        for t, point in enumerate(points):
            tree.insert(point, timestamp=float(t))
        assert tree.n_inserted == len(points)
        assert tree.total_weight() > 0

    def test_total_weight_matches_insertions_without_decay(self):
        tree = ClusTree(dimension=2, decay_rate=0.0)
        points, _ = stream_blobs(seed=1, per_class=30)
        for t, point in enumerate(points):
            tree.insert(point, timestamp=float(t))
        assert tree.total_weight() == pytest.approx(tree.n_inserted, rel=1e-6)

    def test_tree_grows_beyond_a_single_node(self):
        tree = ClusTree(dimension=2, fanout=3, decay_rate=0.0)
        points, _ = stream_blobs(seed=2, per_class=60)
        for t, point in enumerate(points):
            tree.insert(point, timestamp=float(t))
        assert tree.height() >= 2
        assert tree.node_count() >= 3


class TestAnytimeBehaviour:
    def test_zero_hop_budget_parks_objects(self):
        tree = ClusTree(dimension=2, fanout=3, decay_rate=0.0)
        points, _ = stream_blobs(seed=3, per_class=60)
        # Grow the tree first with unconstrained insertions.
        for t, point in enumerate(points[:120]):
            tree.insert(point, timestamp=float(t))
        parked_before = tree.n_parked
        for t, point in enumerate(points[120:150]):
            tree.insert(point, timestamp=float(120 + t), max_hops=0)
        assert tree.n_parked > parked_before
        # Parked objects still count towards the model weight.
        assert tree.total_weight() == pytest.approx(150.0, rel=1e-6)

    def test_parked_objects_are_taken_along_later(self):
        tree = ClusTree(dimension=2, fanout=3, decay_rate=0.0)
        points, _ = stream_blobs(seed=4, per_class=60)
        for t, point in enumerate(points[:120]):
            tree.insert(point, timestamp=float(t))
        for t, point in enumerate(points[120:140]):
            tree.insert(point, timestamp=float(120 + t), max_hops=0)
        # Unconstrained insertions afterwards pick the buffers up as hitchhikers.
        for t, point in enumerate(points[140:180]):
            tree.insert(point, timestamp=float(140 + t))
        assert tree.total_weight() == pytest.approx(180.0, rel=1e-6)

    def test_faster_stream_means_fewer_micro_clusters(self):
        """Self-adaptation: smaller budgets produce a coarser model."""
        points, _ = stream_blobs(seed=5, per_class=100)
        slow = ClusTree(dimension=2, fanout=3, decay_rate=0.0)
        fast = ClusTree(dimension=2, fanout=3, decay_rate=0.0)
        for t, point in enumerate(points):
            slow.insert(point, timestamp=float(t))          # unlimited time
            fast.insert(point, timestamp=float(t), max_hops=1)  # very fast stream
        assert len(fast.micro_clusters()) <= len(slow.micro_clusters())

    def test_decay_forgets_old_concepts(self):
        tree = ClusTree(dimension=2, fanout=3, decay_rate=0.5)
        old = np.random.default_rng(0).normal(loc=0.0, size=(100, 2))
        new = np.random.default_rng(1).normal(loc=20.0, size=(100, 2))
        t = 0.0
        for point in old:
            tree.insert(point, timestamp=t)
            t += 1.0
        weight_after_old = tree.total_weight()
        for point in new:
            tree.insert(point, timestamp=t)
            t += 1.0
        # The old concept (inserted ~100 time units ago with half-life 2) has
        # decayed to essentially nothing: total weight ~ recent objects only.
        assert tree.total_weight() < weight_after_old + 10


class TestOfflineComponent:
    def test_micro_clusters_recover_the_three_blobs(self):
        tree = ClusTree(dimension=2, fanout=4, decay_rate=0.0)
        points, labels = stream_blobs(seed=6, per_class=100)
        for t, point in enumerate(points):
            tree.insert(point, timestamp=float(t))
        micro = tree.micro_clusters(min_weight=1.0)
        assert len(micro) >= 3
        macro = density_cluster(micro, epsilon=4.0, min_weight=5.0)
        assert len(macro) == 3
        assignments = assign_to_macro_clusters(points, macro)
        assert clustering_purity(assignments, labels) > 0.95

    def test_density_cluster_validation_and_empty_input(self):
        assert density_cluster([], epsilon=1.0) == []
        with pytest.raises(ValueError):
            density_cluster([], epsilon=0.0)

    def test_assign_without_clusters_returns_noise(self):
        assignments = assign_to_macro_clusters(np.zeros((5, 2)), [])
        assert np.all(assignments == -1)

    def test_clustering_purity_bounds_and_validation(self):
        assert clustering_purity([0, 0, 1, 1], ["a", "a", "b", "b"]) == 1.0
        assert clustering_purity([0, 0, 0, 0], ["a", "a", "b", "b"]) == 0.5
        with pytest.raises(ValueError):
            clustering_purity([0], [])
        with pytest.raises(ValueError):
            clustering_purity([], [])

    def test_purity_on_drift_stream_with_decay_beats_no_decay(self):
        """With drift, forgetting old data should not hurt the current model."""
        dataset = make_drift_stream(size=600, n_classes=2, n_features=2, drift_speed=0.05, random_state=0)
        decayed = ClusTree(dimension=2, fanout=4, decay_rate=0.2)
        for t in range(dataset.size):
            decayed.insert(dataset.features[t], timestamp=float(t))
        micro = decayed.micro_clusters(min_weight=0.5)
        assert len(micro) >= 1
        # Current model should sit near the *recent* data, not the old start.
        recent = dataset.features[-100:]
        centers = np.array([m.mean for m in micro])
        weights = np.array([m.weight for m in micro])
        model_center = (weights[:, None] * centers).sum(axis=0) / weights.sum()
        distance_to_recent = np.linalg.norm(model_center - recent.mean(axis=0))
        distance_to_old = np.linalg.norm(model_center - dataset.features[:100].mean(axis=0))
        assert distance_to_recent < distance_to_old
