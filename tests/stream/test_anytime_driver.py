"""Tests for the micro-batched test-then-train stream driver."""

import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig
from repro.data import make_blobs
from repro.index import TreeParameters
from repro.stream import ConstantArrival, DataStream, PoissonArrival, run_anytime_stream


def small_config():
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )


def make_setup(seed=0, per_class=40, arrival=None):
    dataset = make_blobs(n_classes=2, per_class=per_class, n_features=2, random_state=seed)
    classifier = AnytimeBayesClassifier(config=small_config()).fit(
        dataset.features[:20], dataset.labels[:20]
    )
    stream = DataStream(
        dataset,
        arrival=arrival or PoissonArrival(rate=1.0),
        nodes_per_time_unit=5,
        random_state=seed,
    )
    return classifier, stream


def fresh_run(seed, **kwargs):
    classifier, stream = make_setup(seed=seed)
    return classifier, run_anytime_stream(classifier, stream, **kwargs)


def test_limit_zero_classifies_and_learns_nothing():
    classifier, stream = make_setup(seed=1)
    before = sum(tree.n_objects for tree in classifier.trees.values())
    result = run_anytime_stream(classifier, stream, limit=0, online_learning=True)
    assert result.steps == []
    after = sum(tree.n_objects for tree in classifier.trees.values())
    assert after == before


def test_limit_never_consumes_extra_stream_items():
    """Regression: the limit used to pull one item past the cap and drop it."""
    classifier, stream = make_setup(seed=11)
    iterator = iter(stream.items(30))
    run_anytime_stream(classifier, iterator, limit=10)
    assert len(list(iterator)) == 20
    iterator = iter(stream.items(5))
    run_anytime_stream(classifier, iterator, limit=0)
    assert len(list(iterator)) == 5


def test_limit_one_processes_exactly_one_object():
    classifier, stream = make_setup(seed=2)
    before = sum(tree.n_objects for tree in classifier.trees.values())
    result = run_anytime_stream(classifier, stream, limit=1, online_learning=True)
    assert len(result.steps) == 1
    after = sum(tree.n_objects for tree in classifier.trees.values())
    assert after == before + 1


def test_limit_and_chunk_size_validation():
    classifier, stream = make_setup(seed=3)
    with pytest.raises(ValueError):
        run_anytime_stream(classifier, stream, limit=-1)
    with pytest.raises(ValueError):
        run_anytime_stream(classifier, stream, chunk_size=0)


def test_use_batch_requires_batch_capable_classifier():
    class ScalarOnly:
        def classify_anytime(self, x, max_nodes):  # pragma: no cover - never called
            raise AssertionError

    _, stream = make_setup(seed=4)
    with pytest.raises(ValueError):
        run_anytime_stream(ScalarOnly(), stream, use_batch=True)


@pytest.mark.parametrize("chunk_size", [1, 7, 32])
def test_batched_and_scalar_drivers_are_trace_identical(chunk_size):
    """Same chunking => identical predictions, correctness flags and node reads."""
    _, batched = fresh_run(
        5, limit=60, online_learning=True, chunk_size=chunk_size, use_batch=True
    )
    _, scalar = fresh_run(
        5, limit=60, online_learning=True, chunk_size=chunk_size, use_batch=False
    )
    assert [s.prediction for s in batched.steps] == [s.prediction for s in scalar.steps]
    assert [s.correct for s in batched.steps] == [s.correct for s in scalar.steps]
    assert [s.nodes_read for s in batched.steps] == [s.nodes_read for s in scalar.steps]
    assert batched.accuracy == scalar.accuracy


def test_default_chunk_is_classic_test_then_train():
    """chunk_size default (1) matches the fully-sequential protocol exactly."""
    _, default_run = fresh_run(6, limit=40, online_learning=True)
    _, sequential = fresh_run(6, limit=40, online_learning=True, chunk_size=1, use_batch=False)
    assert [s.prediction for s in default_run.steps] == [
        s.prediction for s in sequential.steps
    ]


def test_chunk_covering_the_whole_stream_defers_all_labels():
    """One giant chunk: every object is classified by the initial model."""
    classifier_a, deferred = fresh_run(7, limit=50, online_learning=True, chunk_size=50)
    _, frozen = fresh_run(7, limit=50, online_learning=False)
    assert [s.prediction for s in deferred.steps] == [s.prediction for s in frozen.steps]
    # ... but the deferred run still learned from all labels at the boundary.
    assert sum(tree.n_objects for tree in classifier_a.trees.values()) == 20 + 50


def test_per_item_budgets_are_respected_in_batched_chunks():
    classifier, stream = make_setup(seed=8, arrival=PoissonArrival(rate=0.7))
    result = run_anytime_stream(classifier, stream, limit=64, chunk_size=16)
    for step in result.steps:
        assert step.nodes_read <= step.item.budget


def test_constant_budget_batched_run_reports_budgets():
    classifier, stream = make_setup(seed=9, arrival=ConstantArrival(gap=1.0))
    result = run_anytime_stream(classifier, stream, limit=30, chunk_size=8)
    assert result.mean_budget == pytest.approx(5.0)
    assert len(result.steps) == 30
