"""Async load-gen adapters: pacing, block layout and limits."""

import asyncio
import time

import numpy as np
import pytest

from repro.data import make_dataset
from repro.stream import ConstantArrival, DataStream, aiter_items, aiter_query_batches


@pytest.fixture(scope="module")
def stream():
    dataset = make_dataset("pendigits", size=40, random_state=4)
    return DataStream(dataset, arrival=ConstantArrival(gap=1.0), random_state=4)


def test_aiter_items_preserves_order_and_limit(stream):
    async def run():
        return [item async for item in aiter_items(stream, speed=4000.0, limit=12)]

    items = asyncio.run(run())
    expected = stream.items(limit=12)
    assert [item.index for item in items] == [item.index for item in expected]
    assert all(np.array_equal(a.features, b.features) for a, b in zip(items, expected))


def test_aiter_items_paces_to_wall_clock(stream):
    async def run():
        count = 0
        async for _ in aiter_items(stream, speed=100.0, limit=10):
            count += 1
        return count

    start = time.perf_counter()
    count = asyncio.run(run())
    elapsed = time.perf_counter() - start
    assert count == 10
    # Ten unit gaps at 100 units/s schedule the last item at t=0.1s.
    assert elapsed >= 0.09


def test_aiter_query_batches_matches_sync_blocks(stream):
    async def run():
        return [block async for block in aiter_query_batches(stream, 8, speed=4000.0, limit=20)]

    blocks = asyncio.run(run())
    expected = list(stream.query_batches(8, limit=20))
    assert len(blocks) == len(expected)
    for block, reference in zip(blocks, expected):
        assert np.array_equal(block, reference)
    # Trailing partial block is yielded.
    assert blocks[-1].shape[0] == 4


def test_load_gen_validation(stream):
    async def bad_speed():
        async for _ in aiter_items(stream, speed=0.0):
            pass

    async def bad_batch():
        async for _ in aiter_query_batches(stream, 0):
            pass

    async def zero_limit():
        return [item async for item in aiter_items(stream, speed=1000.0, limit=0)]

    with pytest.raises(ValueError, match="speed"):
        asyncio.run(bad_speed())
    with pytest.raises(ValueError, match="batch_size"):
        asyncio.run(bad_batch())
    assert asyncio.run(zero_limit()) == []
